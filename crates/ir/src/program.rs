//! Whole-program container: classes, fields, statics, methods.

use crate::ids::{ClassId, FieldId, MethodId, SiteId, StaticId};
use crate::method::Method;

/// Value types in the IR.
///
/// Reference types carry the element/instance class purely as metadata;
/// the analyses only distinguish reference-typed slots (which need SATB
/// barriers) from integers (which never do).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// Reference to an instance of a class (or null).
    Ref(ClassId),
    /// Reference to an array of references (or null).
    RefArray(ClassId),
    /// Reference to an array of ints (or null).
    IntArray,
}

impl Ty {
    /// True for all reference-shaped types (objects and arrays).
    pub fn is_ref_like(self) -> bool {
        !matches!(self, Ty::Int)
    }
}

/// A class declaration. Classes are flat (no inheritance); every instance
/// has one slot per declared field, zeroed/null at allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Class {
    /// This class's id.
    pub id: ClassId,
    /// Human-readable name.
    pub name: String,
    /// Declared instance fields, in slot order.
    pub fields: Vec<FieldId>,
}

/// An instance field declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDecl {
    /// This field's id.
    pub id: FieldId,
    /// Declaring class.
    pub class: ClassId,
    /// Human-readable name.
    pub name: String,
    /// Field type; reference-typed fields are barrier-relevant.
    pub ty: Ty,
    /// Slot index within instances of the declaring class.
    pub offset: usize,
}

/// A static (global) field declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StaticDecl {
    /// This static's id.
    pub id: StaticId,
    /// Human-readable name.
    pub name: String,
    /// Field type.
    pub ty: Ty,
}

/// A complete program: the unit the pipeline (inline → analyze → elide)
/// and the interpreter consume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Class table, indexed by [`ClassId`].
    pub classes: Vec<Class>,
    /// Field table, indexed by [`FieldId`].
    pub fields: Vec<FieldDecl>,
    /// Static table, indexed by [`StaticId`].
    pub statics: Vec<StaticDecl>,
    /// Method table, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// Next free allocation-site id; the inliner draws fresh sites here.
    pub next_site: u32,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Returns a class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Returns a field declaration by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn field(&self, id: FieldId) -> &FieldDecl {
        &self.fields[id.index()]
    }

    /// Returns a static declaration by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn static_(&self, id: StaticId) -> &StaticDecl {
        &self.statics[id.index()]
    }

    /// Returns a method by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Returns a mutable method by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// Looks a method up by name (first match).
    pub fn method_by_name(&self, name: &str) -> Option<&Method> {
        self.methods.iter().find(|m| m.name == name)
    }

    /// Allocates a fresh allocation-site id (used by the inliner when
    /// cloning callee bodies).
    pub fn fresh_site(&mut self) -> SiteId {
        let s = SiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// True if `field` holds references (its stores need SATB barriers).
    pub fn field_is_ref(&self, field: FieldId) -> bool {
        self.field(field).ty.is_ref_like()
    }

    /// Iterates over `(MethodId, &Method)` in index order.
    pub fn iter_methods(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId::from_index(i), m))
    }

    /// Validates the whole program; see [`crate::validate`].
    pub fn validate(&self) -> Result<(), crate::validate::ValidateError> {
        crate::validate::validate_program(self)
    }

    /// Total instruction count across all methods.
    pub fn total_size(&self) -> usize {
        self.methods.iter().map(|m| m.compute_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn fresh_sites_are_distinct() {
        let mut p = Program::new();
        let a = p.fresh_site();
        let b = p.fresh_site();
        assert_ne!(a, b);
        assert_eq!(p.next_site, 2);
    }

    #[test]
    fn ref_like_types() {
        assert!(Ty::Ref(ClassId(0)).is_ref_like());
        assert!(Ty::RefArray(ClassId(0)).is_ref_like());
        assert!(Ty::IntArray.is_ref_like());
        assert!(!Ty::Int.is_ref_like());
    }

    #[test]
    fn lookup_by_name() {
        let mut pb = ProgramBuilder::new();
        let m = pb.declare_method("noop", vec![], None);
        pb.define_method(m, 0, |mb| {
            mb.return_();
        });
        let p = pb.finish();
        assert!(p.method_by_name("noop").is_some());
        assert!(p.method_by_name("missing").is_none());
    }

    #[test]
    fn field_ref_classification() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let fr = pb.field(c, "next", Ty::Ref(c));
        let fi = pb.field(c, "count", Ty::Int);
        let p = pb.finish();
        assert!(p.field_is_ref(fr));
        assert!(!p.field_is_ref(fi));
        assert_eq!(p.field(fr).offset, 0);
        assert_eq!(p.field(fi).offset, 1);
        assert_eq!(p.class(c).fields, vec![fr, fi]);
    }
}
