//! Slot-level type checking — the rest of the "bytecode verifier".
//!
//! [`crate::validate`] checks ids and stack *heights*; this module
//! checks stack and local *types*: integers and references never mix,
//! locals are written before they are read, heap operations receive
//! reference operands, and returns match signatures. Together they give
//! the analyses the invariants the paper gets from the JVM verifier.
//!
//! The type lattice is deliberately coarse — `Int` vs `Ref` — because
//! the heap checks class tags dynamically and the analyses only care
//! about reference-ness. Locals (unlike stack slots) may hold different
//! types on different paths; such a local becomes `Conflict` at the
//! join and only *using* it is an error.

use std::fmt;

use crate::ids::{BlockId, LocalId, MethodId};
use crate::insn::{Cond, Insn, Terminator};
use crate::method::Method;
use crate::program::{Program, Ty};

/// The verifier's slot types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VType {
    /// 64-bit integer.
    Int,
    /// Reference (object, array, or null).
    Ref,
    /// Local not yet written on some path.
    Uninit,
    /// Local holding different types on different paths.
    Conflict,
}

impl VType {
    fn merge(self, other: VType) -> VType {
        match (self, other) {
            (a, b) if a == b => a,
            (VType::Uninit, _) | (_, VType::Uninit) => VType::Conflict,
            _ => VType::Conflict,
        }
    }

    fn of(ty: Ty) -> VType {
        if ty.is_ref_like() {
            VType::Ref
        } else {
            VType::Int
        }
    }
}

/// A type-checking failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// Offending method.
    pub method: MethodId,
    /// Location description.
    pub at: String,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method {} at {}: {}", self.method, self.at, self.reason)
    }
}

impl std::error::Error for TypeError {}

#[derive(Clone, PartialEq, Eq)]
struct Frame {
    locals: Vec<VType>,
    stack: Vec<VType>,
}

impl Frame {
    fn merge_from(&mut self, other: &Frame) -> bool {
        let mut changed = false;
        for (a, b) in self.locals.iter_mut().zip(&other.locals) {
            let m = a.merge(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        for (a, b) in self.stack.iter_mut().zip(&other.stack) {
            let m = a.merge(*b);
            if m != *a {
                *a = m;
                changed = true;
            }
        }
        changed
    }
}

struct Checker<'p> {
    program: &'p Program,
    method: &'p Method,
}

impl Checker<'_> {
    fn err(&self, at: &str, reason: impl Into<String>) -> TypeError {
        TypeError {
            method: self.method.id,
            at: at.to_string(),
            reason: reason.into(),
        }
    }

    fn pop(&self, f: &mut Frame, at: &str, want: VType) -> Result<(), TypeError> {
        let got = f
            .stack
            .pop()
            .ok_or_else(|| self.err(at, "stack underflow"))?;
        if got != want {
            return Err(self.err(at, format!("expected {want:?} operand, found {got:?}")));
        }
        Ok(())
    }

    fn pop_any(&self, f: &mut Frame, at: &str) -> Result<VType, TypeError> {
        f.stack.pop().ok_or_else(|| self.err(at, "stack underflow"))
    }

    fn load_local(&self, f: &Frame, at: &str, l: LocalId) -> Result<VType, TypeError> {
        match f.locals[l.index()] {
            VType::Uninit => Err(self.err(at, format!("read of uninitialized local {l}"))),
            VType::Conflict => Err(self.err(
                at,
                format!("read of type-conflicting local {l} (int on one path, ref on another)"),
            )),
            t => Ok(t),
        }
    }

    fn check_insn(&self, f: &mut Frame, at: &str, insn: &Insn) -> Result<(), TypeError> {
        use VType::{Int, Ref};
        match *insn {
            Insn::Const(_) => f.stack.push(Int),
            Insn::ConstNull => f.stack.push(Ref),
            Insn::Load(l) => {
                let t = self.load_local(f, at, l)?;
                f.stack.push(t);
            }
            Insn::Store(l) => {
                let t = self.pop_any(f, at)?;
                f.locals[l.index()] = t;
            }
            Insn::IInc(l, _) => {
                if self.load_local(f, at, l)? != Int {
                    return Err(self.err(at, format!("iinc on non-int local {l}")));
                }
            }
            Insn::Dup => {
                let t = *f
                    .stack
                    .last()
                    .ok_or_else(|| self.err(at, "stack underflow"))?;
                f.stack.push(t);
            }
            Insn::DupX1 => {
                let b = self.pop_any(f, at)?;
                let a = self.pop_any(f, at)?;
                f.stack.push(b);
                f.stack.push(a);
                f.stack.push(b);
            }
            Insn::Pop => {
                self.pop_any(f, at)?;
            }
            Insn::Swap => {
                let b = self.pop_any(f, at)?;
                let a = self.pop_any(f, at)?;
                f.stack.push(b);
                f.stack.push(a);
            }
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr => {
                self.pop(f, at, Int)?;
                self.pop(f, at, Int)?;
                f.stack.push(Int);
            }
            Insn::Neg => {
                self.pop(f, at, Int)?;
                f.stack.push(Int);
            }
            Insn::GetField(fd) => {
                self.pop(f, at, Ref)?;
                f.stack.push(VType::of(self.program.field(fd).ty));
            }
            Insn::PutField(fd) => {
                let want = VType::of(self.program.field(fd).ty);
                self.pop(f, at, want)?;
                self.pop(f, at, Ref)?;
            }
            Insn::GetStatic(s) => {
                f.stack.push(VType::of(self.program.static_(s).ty));
            }
            Insn::PutStatic(s) => {
                let want = VType::of(self.program.static_(s).ty);
                self.pop(f, at, want)?;
            }
            Insn::AaLoad => {
                self.pop(f, at, Int)?;
                self.pop(f, at, Ref)?;
                f.stack.push(Ref);
            }
            Insn::AaStore => {
                self.pop(f, at, Ref)?;
                self.pop(f, at, Int)?;
                self.pop(f, at, Ref)?;
            }
            Insn::IaLoad => {
                self.pop(f, at, Int)?;
                self.pop(f, at, Ref)?;
                f.stack.push(Int);
            }
            Insn::IaStore => {
                self.pop(f, at, Int)?;
                self.pop(f, at, Int)?;
                self.pop(f, at, Ref)?;
            }
            Insn::ArrayLength => {
                self.pop(f, at, Ref)?;
                f.stack.push(Int);
            }
            Insn::New { .. } => f.stack.push(Ref),
            Insn::NewRefArray { .. } | Insn::NewIntArray { .. } => {
                self.pop(f, at, Int)?;
                f.stack.push(Ref);
            }
            Insn::Invoke(m) => {
                let sig = &self.program.method(m).sig;
                for &pty in sig.params.iter().rev() {
                    self.pop(f, at, VType::of(pty))?;
                }
                if let Some(rty) = sig.ret {
                    f.stack.push(VType::of(rty));
                }
            }
        }
        Ok(())
    }

    fn check_term(&self, f: &mut Frame, at: &str, term: &Terminator) -> Result<(), TypeError> {
        use VType::{Int, Ref};
        match term {
            Terminator::Goto(_) => Ok(()),
            Terminator::If { cond, .. } => {
                match cond {
                    Cond::ICmp(_) => {
                        self.pop(f, at, Int)?;
                        self.pop(f, at, Int)?;
                    }
                    Cond::IZero(_) => self.pop(f, at, Int)?,
                    Cond::IsNull | Cond::NonNull => self.pop(f, at, Ref)?,
                    Cond::RefEq | Cond::RefNe => {
                        self.pop(f, at, Ref)?;
                        self.pop(f, at, Ref)?;
                    }
                }
                Ok(())
            }
            Terminator::Return => Ok(()),
            Terminator::ReturnValue => {
                let want = self
                    .method
                    .sig
                    .ret
                    .map(VType::of)
                    .ok_or_else(|| self.err(at, "value return in void method"))?;
                self.pop(f, at, want)
            }
        }
    }
}

/// Type-checks one method.
///
/// # Errors
///
/// Returns the first [`TypeError`] found on any reachable path.
pub fn type_check_method(program: &Program, method: &Method) -> Result<(), TypeError> {
    let checker = Checker { program, method };
    let nblocks = method.blocks.len();
    let mut entry: Vec<Option<Frame>> = vec![None; nblocks];
    let mut locals = vec![VType::Uninit; method.num_locals as usize];
    for (i, &p) in method.sig.params.iter().enumerate() {
        locals[i] = VType::of(p);
    }
    entry[0] = Some(Frame {
        locals,
        stack: Vec::new(),
    });
    let mut worklist = vec![BlockId(0)];
    let mut iterations = 0;
    while let Some(bid) = worklist.pop() {
        iterations += 1;
        assert!(iterations < nblocks * 64 + 1024, "type checker diverged");
        let mut frame = entry[bid.index()].clone().expect("worklist ⇒ state");
        let block = method.block(bid);
        for (idx, insn) in block.insns.iter().enumerate() {
            let at = format!("{bid}[{idx}]");
            checker.check_insn(&mut frame, &at, insn)?;
        }
        let at = format!("{bid}[term]");
        checker.check_term(&mut frame, &at, &block.term)?;
        for succ in block.term.successors() {
            match &mut entry[succ.index()] {
                slot @ None => {
                    *slot = Some(frame.clone());
                    worklist.push(succ);
                }
                Some(existing) => {
                    if existing.stack.len() != frame.stack.len() {
                        return Err(checker.err(&at, "stack height mismatch at join"));
                    }
                    if existing.merge_from(&frame) {
                        worklist.push(succ);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Type-checks every method of the program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found.
pub fn type_check_program(program: &Program) -> Result<(), TypeError> {
    for method in &program.methods {
        type_check_method(program, method)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::insn::CmpOp;

    #[test]
    fn well_typed_program_passes() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let fr = pb.field(c, "r", Ty::Ref(c));
        let fi = pb.field(c, "i", Ty::Int);
        pb.method("ok", vec![Ty::Ref(c), Ty::Int], Some(Ty::Int), 1, |mb| {
            let o = mb.local(0);
            let n = mb.local(1);
            let t = mb.local(2);
            mb.load(o).load(o).getfield(fr).putfield(fr);
            mb.load(o).load(n).putfield(fi);
            mb.load(o).getfield(fi).store(t);
            mb.load(t).return_value();
        });
        let p = pb.finish();
        type_check_program(&p).unwrap();
    }

    #[test]
    fn int_into_ref_field_rejected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let fr = pb.field(c, "r", Ty::Ref(c));
        pb.method("bad", vec![Ty::Ref(c)], None, 0, |mb| {
            let o = mb.local(0);
            mb.load(o).iconst(1).putfield(fr).return_();
        });
        let p = pb.finish();
        let e = type_check_program(&p).unwrap_err();
        assert!(e.reason.contains("expected Ref"), "{e}");
    }

    #[test]
    fn arithmetic_on_refs_rejected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("bad", vec![Ty::Ref(c)], Some(Ty::Int), 0, |mb| {
            let o = mb.local(0);
            mb.load(o).iconst(1).add().return_value();
        });
        let p = pb.finish();
        assert!(type_check_program(&p).is_err());
    }

    #[test]
    fn read_of_uninitialized_local_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.method("bad", vec![], Some(Ty::Int), 1, |mb| {
            let t = mb.local(0);
            mb.load(t).return_value();
        });
        let p = pb.finish();
        let e = type_check_program(&p).unwrap_err();
        assert!(e.reason.contains("uninitialized"), "{e}");
    }

    #[test]
    fn conflicting_local_use_rejected() {
        // One path stores an int, the other a ref; the join may exist,
        // but using the local afterwards is an error.
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("bad", vec![Ty::Int], Some(Ty::Int), 1, |mb| {
            let cnd = mb.local(0);
            let t = mb.local(1);
            let a = mb.new_block();
            let b = mb.new_block();
            let j = mb.new_block();
            mb.load(cnd).if_zero(CmpOp::Eq, a, b);
            mb.switch_to(a).iconst(1).store(t).goto_(j);
            mb.switch_to(b).new_object(c).store(t).goto_(j);
            mb.switch_to(j).load(t).return_value();
        });
        let p = pb.finish();
        // Depending on visit order the checker reports either the
        // conflicting-local use or the resulting return-type mismatch;
        // both reject the program.
        let e = type_check_program(&p).unwrap_err();
        assert!(
            e.reason.contains("conflicting") || e.reason.contains("expected Int"),
            "{e}"
        );
    }

    #[test]
    fn conflicting_local_without_use_is_fine() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("ok", vec![Ty::Int], Some(Ty::Int), 1, |mb| {
            let cnd = mb.local(0);
            let t = mb.local(1);
            let a = mb.new_block();
            let b = mb.new_block();
            let j = mb.new_block();
            mb.load(cnd).if_zero(CmpOp::Eq, a, b);
            mb.switch_to(a).iconst(1).store(t).goto_(j);
            mb.switch_to(b).new_object(c).store(t).goto_(j);
            mb.switch_to(j).iconst(0).return_value();
        });
        let p = pb.finish();
        type_check_program(&p).unwrap();
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("bad", vec![Ty::Ref(c)], Some(Ty::Int), 0, |mb| {
            let o = mb.local(0);
            mb.load(o).return_value();
        });
        let p = pb.finish();
        assert!(type_check_program(&p).is_err());
    }

    #[test]
    fn invoke_argument_types_checked() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let callee = pb.method("callee", vec![Ty::Ref(c), Ty::Int], None, 0, |mb| {
            mb.return_();
        });
        pb.method("bad", vec![Ty::Ref(c)], None, 0, |mb| {
            let o = mb.local(0);
            // Swapped argument order: (int, ref) instead of (ref, int).
            mb.iconst(1).load(o).invoke(callee).return_();
        });
        let p = pb.finish();
        assert!(type_check_program(&p).is_err());
    }

    #[test]
    fn branch_condition_types_checked() {
        let mut pb = ProgramBuilder::new();
        pb.method("bad", vec![Ty::Int], None, 0, |mb| {
            let n = mb.local(0);
            let a = mb.new_block();
            let b = mb.new_block();
            mb.load(n).if_null(a, b); // ifnull on an int
            mb.switch_to(a).return_();
            mb.switch_to(b).return_();
        });
        let p = pb.finish();
        assert!(type_check_program(&p).is_err());
    }

    #[test]
    fn workload_suite_is_well_typed() {
        // (Indirect: the workloads crate dev-depends on this check via
        // integration tests; here just re-check one hand-built loop.)
        let mut pb = ProgramBuilder::new();
        let c = pb.class("T");
        pb.method("loop", vec![Ty::Int], None, 2, |mb| {
            let n = mb.local(0);
            let i = mb.local(1);
            let o = mb.local(2);
            let head = mb.new_block();
            let body = mb.new_block();
            let exit = mb.new_block();
            mb.const_null().store(o).iconst(0).store(i).goto_(head);
            mb.switch_to(head)
                .load(i)
                .load(n)
                .if_icmp(CmpOp::Lt, body, exit);
            mb.switch_to(body)
                .new_object(c)
                .store(o)
                .iinc(i, 1)
                .goto_(head);
            mb.switch_to(exit).return_();
        });
        let p = pb.finish();
        type_check_program(&p).unwrap();
    }
}
