//! Human-readable printing of methods and programs.
//!
//! The output is a compact assembly-like listing used in diagnostics,
//! tests, and the harness's `--dump-ir` mode:
//!
//! ```text
//! method m0 expand(a0: T[]) -> T[] locals=3
//!   B0:
//!     load l0
//!     arraylength
//!     ...
//!     goto B1
//! ```

use std::fmt;

use crate::insn::{CmpOp, Cond, Insn, Terminator};
use crate::method::Method;
use crate::program::{Program, Ty};

/// Wraps a method together with its program for display.
pub struct MethodDisplay<'a> {
    program: &'a Program,
    method: &'a Method,
}

/// Returns a displayable wrapper for `method`.
pub fn method_display<'a>(program: &'a Program, method: &'a Method) -> MethodDisplay<'a> {
    MethodDisplay { program, method }
}

fn ty_str(program: &Program, ty: Ty) -> String {
    match ty {
        Ty::Int => "int".to_string(),
        Ty::Ref(c) => program.class(c).name.clone(),
        Ty::RefArray(c) => format!("{}[]", program.class(c).name),
        Ty::IntArray => "int[]".to_string(),
    }
}

fn cmp_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn insn_str(program: &Program, insn: &Insn) -> String {
    match *insn {
        Insn::Const(v) => format!("const {v}"),
        Insn::ConstNull => "const_null".into(),
        Insn::Load(l) => format!("load {l}"),
        Insn::Store(l) => format!("store {l}"),
        Insn::IInc(l, d) => format!("iinc {l} {d:+}"),
        Insn::Dup => "dup".into(),
        Insn::DupX1 => "dup_x1".into(),
        Insn::Pop => "pop".into(),
        Insn::Swap => "swap".into(),
        Insn::Add => "add".into(),
        Insn::Sub => "sub".into(),
        Insn::Mul => "mul".into(),
        Insn::Div => "div".into(),
        Insn::Rem => "rem".into(),
        Insn::Neg => "neg".into(),
        Insn::And => "and".into(),
        Insn::Or => "or".into(),
        Insn::Xor => "xor".into(),
        Insn::Shl => "shl".into(),
        Insn::Shr => "shr".into(),
        Insn::GetField(f) => {
            let fd = program.field(f);
            format!("getfield {}.{}", program.class(fd.class).name, fd.name)
        }
        Insn::PutField(f) => {
            let fd = program.field(f);
            format!("putfield {}.{}", program.class(fd.class).name, fd.name)
        }
        Insn::GetStatic(s) => format!("getstatic {}", program.static_(s).name),
        Insn::PutStatic(s) => format!("putstatic {}", program.static_(s).name),
        Insn::AaLoad => "aaload".into(),
        Insn::AaStore => "aastore".into(),
        Insn::IaLoad => "iaload".into(),
        Insn::IaStore => "iastore".into(),
        Insn::ArrayLength => "arraylength".into(),
        Insn::New { class, site } => {
            format!("new {} @{site}", program.class(class).name)
        }
        Insn::NewRefArray { class, site } => {
            format!("newarray {}[] @{site}", program.class(class).name)
        }
        Insn::NewIntArray { site } => format!("newarray int[] @{site}"),
        Insn::Invoke(m) => format!("invoke {}", program.method(m).name),
    }
}

fn term_str(term: &Terminator) -> String {
    match *term {
        Terminator::Goto(b) => format!("goto {b}"),
        Terminator::If { cond, then_, else_ } => {
            let c = match cond {
                Cond::ICmp(op) => format!("icmp_{}", cmp_str(op)),
                Cond::IZero(op) => format!("i{}z", cmp_str(op)),
                Cond::IsNull => "null".into(),
                Cond::NonNull => "nonnull".into(),
                Cond::RefEq => "acmp_eq".into(),
                Cond::RefNe => "acmp_ne".into(),
            };
            format!("if_{c} {then_} else {else_}")
        }
        Terminator::Return => "return".into(),
        Terminator::ReturnValue => "return_value".into(),
    }
}

impl fmt::Display for MethodDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.method;
        let params: Vec<String> = m
            .sig
            .params
            .iter()
            .enumerate()
            .map(|(i, &t)| format!("a{i}: {}", ty_str(self.program, t)))
            .collect();
        let ret = m
            .sig
            .ret
            .map(|t| format!(" -> {}", ty_str(self.program, t)))
            .unwrap_or_default();
        writeln!(
            f,
            "method {} {}({}){} locals={}{}",
            m.id,
            m.name,
            params.join(", "),
            ret,
            m.num_locals,
            if m.is_constructor { " ctor" } else { "" }
        )?;
        for (bid, block) in m.iter_blocks() {
            writeln!(f, "  {bid}:")?;
            for insn in &block.insns {
                writeln!(f, "    {}", insn_str(self.program, insn))?;
            }
            writeln!(f, "    {}", term_str(&block.term))?;
        }
        Ok(())
    }
}

/// Wraps a program for display: every class, static, and method.
pub struct ProgramDisplay<'a>(&'a Program);

/// Returns a displayable wrapper for `program`.
pub fn program_display(program: &Program) -> ProgramDisplay<'_> {
    ProgramDisplay(program)
}

impl fmt::Display for ProgramDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = self.0;
        for class in &p.classes {
            writeln!(f, "class {} {} {{", class.id, class.name)?;
            for &fid in &class.fields {
                let fd = p.field(fid);
                writeln!(f, "  {}: {}", fd.name, ty_str(p, fd.ty))?;
            }
            writeln!(f, "}}")?;
        }
        for s in &p.statics {
            writeln!(f, "static {} {}: {}", s.id, s.name, ty_str(p, s.ty))?;
        }
        for m in &p.methods {
            write!(f, "{}", method_display(p, m))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::Ty;

    #[test]
    fn method_listing_contains_names_and_blocks() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Node");
        let next = pb.field(c, "next", Ty::Ref(c));
        pb.method("link", vec![Ty::Ref(c)], None, 0, |mb| {
            mb.load(mb.local(0)).const_null().putfield(next).return_();
        });
        let p = pb.finish();
        let s = method_display(&p, &p.methods[0]).to_string();
        assert!(s.contains("method m0 link(a0: Node) locals=1"), "{s}");
        assert!(s.contains("putfield Node.next"), "{s}");
        assert!(s.contains("B0:"), "{s}");
        assert!(s.contains("return"), "{s}");
    }

    #[test]
    fn program_listing_contains_classes_and_statics() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Point");
        pb.field(c, "x", Ty::Int);
        pb.static_field("root", Ty::Ref(c));
        pb.method("noop", vec![], None, 0, |mb| {
            mb.return_();
        });
        let p = pb.finish();
        let s = program_display(&p).to_string();
        assert!(s.contains("class C0 Point"), "{s}");
        assert!(s.contains("x: int"), "{s}");
        assert!(s.contains("static g0 root: Point"), "{s}");
        assert!(s.contains("method m0 noop"), "{s}");
    }

    #[test]
    fn allocation_sites_are_printed() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("alloc", vec![], None, 0, |mb| {
            mb.iconst(4).new_ref_array(c).pop().return_();
        });
        let p = pb.finish();
        let s = method_display(&p, &p.methods[0]).to_string();
        assert!(s.contains("newarray C[] @site0"), "{s}");
    }
}
