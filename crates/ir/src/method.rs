//! Methods, signatures, and basic blocks.

use crate::ids::{BlockId, ClassId, LocalId, MethodId};
use crate::insn::{Insn, Terminator};
use crate::program::Ty;

/// A method signature: parameter types and optional return type.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct MethodSig {
    /// Parameter types; parameter `i` arrives in local slot `i`.
    pub params: Vec<Ty>,
    /// Return type, or `None` for void.
    pub ret: Option<Ty>,
}

impl MethodSig {
    /// Creates a signature.
    pub fn new(params: Vec<Ty>, ret: Option<Ty>) -> Self {
        MethodSig { params, ret }
    }

    /// Stack effect of invoking a method with this signature:
    /// `(params popped, values pushed)`.
    pub fn invoke_effect(&self) -> (usize, usize) {
        (self.params.len(), usize::from(self.ret.is_some()))
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Straight-line body.
    pub insns: Vec<Insn>,
    /// Control-flow exit.
    pub term: Terminator,
}

impl Block {
    /// Creates a block.
    pub fn new(insns: Vec<Insn>, term: Terminator) -> Self {
        Block { insns, term }
    }
}

/// A method body plus metadata.
///
/// Block 0 is always the entry block. On entry, local slots
/// `0..sig.params.len()` hold the arguments; remaining slots are
/// uninitialized and must be written before read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Method {
    /// This method's id (its index in [`Program::methods`](crate::Program)).
    pub id: MethodId,
    /// Human-readable name, used by the pretty printer and diagnostics.
    pub name: String,
    /// Signature.
    pub sig: MethodSig,
    /// Declaring class of an instance method or constructor, if any.
    pub owner: Option<ClassId>,
    /// True for constructors. Constructors take the object under
    /// construction as parameter 0 and get the paper's special initial
    /// state: `this` is unique, thread-local, and its declared fields are
    /// known null on entry.
    pub is_constructor: bool,
    /// Number of local slots, `>= sig.params.len()`.
    pub num_locals: u16,
    /// Basic blocks; [`BlockId`] indexes into this vector. Index 0 is the
    /// entry.
    pub blocks: Vec<Block>,
    /// Bytecode size used by the inliner's budget. Mirrors the paper's
    /// "inline limit parameter determines the maximum bytecode size of an
    /// inlined method". Computed as the total instruction count
    /// (including terminators).
    pub size: usize,
}

impl Method {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Returns a block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns a mutable block by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Total instruction count (bodies plus terminators); the inliner's
    /// notion of "bytecode size".
    pub fn compute_size(&self) -> usize {
        self.blocks.iter().map(|b| b.insns.len() + 1).sum()
    }

    /// Recomputes and stores [`Method::size`].
    pub fn refresh_size(&mut self) {
        self.size = self.compute_size();
    }

    /// True if `local` is a parameter slot.
    pub fn is_param(&self, local: LocalId) -> bool {
        local.index() < self.sig.params.len()
    }

    /// Iterates over every instruction as `(BlockId, index-in-block, &Insn)`.
    pub fn iter_insns(&self) -> impl Iterator<Item = (BlockId, usize, &Insn)> {
        self.iter_blocks().flat_map(|(bid, b)| {
            b.insns
                .iter()
                .enumerate()
                .map(move |(i, insn)| (bid, i, insn))
        })
    }
}

/// A stable address of one instruction inside a method: block plus index.
///
/// Used to key per-site analysis results (e.g. "the `putfield` at
/// `B3[2]` needs no barrier") and per-site dynamic statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InsnAddr {
    /// Block containing the instruction.
    pub block: BlockId,
    /// Index of the instruction within the block body.
    pub index: usize,
}

impl InsnAddr {
    /// Creates an address.
    pub fn new(block: BlockId, index: usize) -> Self {
        InsnAddr { block, index }
    }
}

impl std::fmt::Display for InsnAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.block, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Terminator;

    fn sample_method() -> Method {
        Method {
            id: MethodId(0),
            name: "sample".into(),
            sig: MethodSig::new(vec![Ty::Int], Some(Ty::Int)),
            owner: None,
            is_constructor: false,
            num_locals: 2,
            blocks: vec![
                Block::new(
                    vec![Insn::Load(LocalId(0)), Insn::Store(LocalId(1))],
                    Terminator::Goto(BlockId(1)),
                ),
                Block::new(vec![Insn::Load(LocalId(1))], Terminator::ReturnValue),
            ],
            size: 0,
        }
    }

    #[test]
    fn size_counts_insns_and_terminators() {
        let mut m = sample_method();
        assert_eq!(m.compute_size(), 5);
        m.refresh_size();
        assert_eq!(m.size, 5);
    }

    #[test]
    fn entry_is_block_zero() {
        let m = sample_method();
        assert_eq!(m.entry(), BlockId(0));
        assert_eq!(m.block(BlockId(1)).insns.len(), 1);
    }

    #[test]
    fn param_detection() {
        let m = sample_method();
        assert!(m.is_param(LocalId(0)));
        assert!(!m.is_param(LocalId(1)));
    }

    #[test]
    fn iter_insns_addresses() {
        let m = sample_method();
        let addrs: Vec<_> = m
            .iter_insns()
            .map(|(b, i, _)| InsnAddr::new(b, i))
            .collect();
        assert_eq!(addrs.len(), 3);
        assert_eq!(addrs[2], InsnAddr::new(BlockId(1), 0));
        assert_eq!(addrs[2].to_string(), "B1[0]");
    }

    #[test]
    fn invoke_effect_matches_signature() {
        let sig = MethodSig::new(vec![Ty::Int, Ty::Int], None);
        assert_eq!(sig.invoke_effect(), (2, 0));
        let sig = MethodSig::new(vec![], Some(Ty::Int));
        assert_eq!(sig.invoke_effect(), (0, 1));
    }
}
