#![warn(missing_docs)]

//! JVM-like stack bytecode IR for the write-barrier-elision reproduction.
//!
//! The CGO 2005 paper presents its analyses "over the well-known Java
//! Virtual Machine (JVM) bytecode instruction set". This crate is that
//! presentation vehicle made concrete: a small, verifiable, stack-based
//! bytecode with classes, reference/int fields, object and array
//! allocation (with explicit allocation-site identities), static fields,
//! and direct method invocation.
//!
//! The IR deliberately mirrors the instructions the paper's transfer
//! functions are defined over: `load`/`store`, `getfield`/`putfield`,
//! `getstatic`/`putstatic`, `aaload`/`aastore`, `newinstance`/`newarray`,
//! and `invoke`.
//!
//! # Example
//!
//! Build the paper's §3.1 motivating `expand` method:
//!
//! ```
//! use wbe_ir::builder::ProgramBuilder;
//! use wbe_ir::{Ty, CmpOp};
//!
//! let mut pb = ProgramBuilder::new();
//! let t = pb.class("T");
//! let expand = pb.declare_method(
//!     "expand",
//!     vec![Ty::RefArray(t)],
//!     Some(Ty::RefArray(t)),
//! );
//! pb.define_method(expand, 3, |mb| {
//!     let ta = mb.local(0);
//!     let new_ta = mb.local(1);
//!     let i = mb.local(2);
//!     let head = mb.new_block();
//!     let body = mb.new_block();
//!     let exit = mb.new_block();
//!     // new_ta = new T[ta.length * 2]; i = 0;
//!     mb.load(ta).arraylength().iconst(2).mul().new_ref_array(t).store(new_ta);
//!     mb.iconst(0).store(i).goto_(head);
//!     // while (i < ta.length)
//!     mb.switch_to(head);
//!     mb.load(i).load(ta).arraylength().if_icmp(CmpOp::Lt, body, exit);
//!     // new_ta[i] = ta[i]; i++;
//!     mb.switch_to(body);
//!     mb.load(new_ta).load(i).load(ta).load(i).aaload().aastore();
//!     mb.iinc(i, 1).goto_(head);
//!     mb.switch_to(exit);
//!     mb.load(new_ta).return_value();
//! });
//! let program = pb.finish();
//! program.validate().expect("well-formed");
//! assert_eq!(program.method(expand).blocks.len(), 4);
//! ```

pub mod builder;
pub mod cfg;
pub mod display;
pub mod ids;
pub mod insn;
pub mod method;
pub mod program;
pub mod text;
pub mod typecheck;
pub mod validate;

pub use ids::{BlockId, ClassId, FieldId, LocalId, MethodId, SiteId, StaticId};
pub use insn::{CmpOp, Cond, Insn, Terminator};
pub use method::{Block, InsnAddr, Method, MethodSig};
pub use program::{Class, FieldDecl, Program, StaticDecl, Ty};
pub use text::{parse_program, ParseError};
pub use typecheck::{type_check_method, type_check_program, TypeError, VType};
pub use validate::ValidateError;
