//! Parsing the textual IR format emitted by [`crate::display`].
//!
//! The printer and this parser round-trip: for any program `p`,
//! `parse_program(&program_display(p).to_string())` reconstructs a
//! structurally identical program (entity ids are positional in both
//! directions). The format lets programs live in `.wbe` files for the
//! CLI tool, golden tests, and bug reports.
//!
//! ```text
//! class C0 Node {
//!   next: Node
//!   weight: int
//! }
//! static g0 root: Node
//! method m0 link(a0: Node, a1: Node) locals=2
//!   B0:
//!     load l0
//!     load l1
//!     putfield Node.next
//!     return
//! ```
//!
//! One caveat: the `owner` of non-constructor instance methods is not
//! printed, so it is not reconstructed (constructors recover theirs
//! from the first parameter type, which is all the analyses need).

use std::collections::HashMap;
use std::fmt;

use crate::ids::{BlockId, ClassId, FieldId, LocalId, MethodId, SiteId, StaticId};
use crate::insn::{CmpOp, Cond, Insn, Terminator};
use crate::method::{Block, Method, MethodSig};
use crate::program::{Class, FieldDecl, Program, StaticDecl, Ty};

/// A parse failure, with a 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>, // (1-based line no, trimmed content)
    pos: usize,
    program: Program,
    class_ids: HashMap<String, ClassId>,
    field_ids: HashMap<(ClassId, String), FieldId>,
    static_ids: HashMap<String, StaticId>,
    method_ids: HashMap<String, MethodId>,
    max_site: Option<u32>,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        // `pos` points one past the line being processed.
        let idx = self
            .pos
            .saturating_sub(1)
            .min(self.lines.len().saturating_sub(1));
        let line = self.lines.get(idx).map(|(n, _)| *n).unwrap_or(0);
        ParseError {
            line,
            reason: reason.into(),
        }
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).map(|(_, s)| *s)
    }

    fn next_line(&mut self) -> Option<&'a str> {
        let l = self.peek()?;
        self.pos += 1;
        Some(l)
    }

    fn parse_ty(&self, s: &str) -> Result<Ty, ParseError> {
        let s = s.trim();
        if s == "int" {
            return Ok(Ty::Int);
        }
        if s == "int[]" {
            return Ok(Ty::IntArray);
        }
        if let Some(base) = s.strip_suffix("[]") {
            let c = self
                .class_ids
                .get(base)
                .ok_or_else(|| self.err(format!("unknown class '{base}'")))?;
            return Ok(Ty::RefArray(*c));
        }
        let c = self
            .class_ids
            .get(s)
            .ok_or_else(|| self.err(format!("unknown class '{s}'")))?;
        Ok(Ty::Ref(*c))
    }

    fn parse_local(&self, s: &str) -> Result<LocalId, ParseError> {
        s.strip_prefix('l')
            .and_then(|n| n.parse::<u16>().ok())
            .map(LocalId)
            .ok_or_else(|| self.err(format!("expected local like 'l0', found '{s}'")))
    }

    fn parse_block_ref(&self, s: &str) -> Result<BlockId, ParseError> {
        s.strip_prefix('B')
            .and_then(|n| n.parse::<u32>().ok())
            .map(BlockId)
            .ok_or_else(|| self.err(format!("expected block like 'B0', found '{s}'")))
    }

    fn parse_site(&mut self, s: &str) -> Result<SiteId, ParseError> {
        let n = s
            .strip_prefix("@site")
            .and_then(|n| n.parse::<u32>().ok())
            .ok_or_else(|| self.err(format!("expected '@siteN', found '{s}'")))?;
        self.max_site = Some(self.max_site.map_or(n, |m| m.max(n)));
        Ok(SiteId(n))
    }

    fn parse_field_ref(&self, s: &str) -> Result<FieldId, ParseError> {
        let (cls, fld) = s
            .split_once('.')
            .ok_or_else(|| self.err(format!("expected 'Class.field', found '{s}'")))?;
        let c = self
            .class_ids
            .get(cls)
            .ok_or_else(|| self.err(format!("unknown class '{cls}'")))?;
        self.field_ids
            .get(&(*c, fld.to_string()))
            .copied()
            .ok_or_else(|| self.err(format!("unknown field '{s}'")))
    }

    fn parse_cmp(&self, s: &str) -> Result<CmpOp, ParseError> {
        Ok(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return Err(self.err(format!("unknown comparison '{s}'"))),
        })
    }

    /// First pass over declarations: classes/fields/statics and method
    /// headers (bodies are parsed in the second pass so forward
    /// references resolve).
    fn scan_declarations(&mut self) -> Result<(), ParseError> {
        let mut pos = 0;
        while pos < self.lines.len() {
            self.pos = pos + 1;
            let (_, line) = self.lines[pos];
            let mut words = line.split_whitespace();
            match words.next() {
                Some("class") => {
                    let _id = words.next();
                    let name = words
                        .next()
                        .ok_or_else(|| self.err("class needs a name"))?
                        .to_string();
                    let cid = ClassId::from_index(self.program.classes.len());
                    if self.class_ids.insert(name.clone(), cid).is_some() {
                        return Err(self.err(format!("duplicate class '{name}'")));
                    }
                    self.program.classes.push(Class {
                        id: cid,
                        name,
                        fields: Vec::new(),
                    });
                    pos += 1;
                    // Field lines until the closing brace.
                    while pos < self.lines.len() {
                        let (_, fl) = self.lines[pos];
                        if fl.starts_with('}') {
                            pos += 1;
                            break;
                        }
                        let (fname, _fty) = fl
                            .split_once(':')
                            .ok_or_else(|| self.err("field needs 'name: type'"))?;
                        let fid = FieldId::from_index(self.program.fields.len());
                        let offset = self.program.classes[cid.index()].fields.len();
                        self.program.fields.push(FieldDecl {
                            id: fid,
                            class: cid,
                            name: fname.trim().to_string(),
                            ty: Ty::Int, // patched in resolve_field_types
                            offset,
                        });
                        self.program.classes[cid.index()].fields.push(fid);
                        self.field_ids.insert((cid, fname.trim().to_string()), fid);
                        pos += 1;
                    }
                }
                Some("static") => {
                    let _id = words.next();
                    let rest = line
                        .splitn(3, ' ')
                        .nth(2)
                        .ok_or_else(|| self.err("static needs 'name: type'"))?;
                    let (name, _ty) = rest
                        .split_once(':')
                        .ok_or_else(|| self.err("static needs 'name: type'"))?;
                    let sid = StaticId::from_index(self.program.statics.len());
                    self.static_ids.insert(name.trim().to_string(), sid);
                    self.program.statics.push(StaticDecl {
                        id: sid,
                        name: name.trim().to_string(),
                        ty: Ty::Int, // patched later
                    });
                    pos += 1;
                }
                Some("method") => {
                    let _id = words.next();
                    let name = line
                        .split_whitespace()
                        .nth(2)
                        .and_then(|n| n.split('(').next())
                        .ok_or_else(|| self.err("method needs a name"))?
                        .to_string();
                    let mid = MethodId::from_index(self.program.methods.len());
                    if self.method_ids.insert(name.clone(), mid).is_some() {
                        return Err(self.err(format!(
                            "duplicate method name '{name}' (the text format needs unique names)"
                        )));
                    }
                    self.program.methods.push(Method {
                        id: mid,
                        name,
                        sig: MethodSig::default(),
                        owner: None,
                        is_constructor: false,
                        num_locals: 0,
                        blocks: Vec::new(),
                        size: 0,
                    });
                    pos += 1;
                }
                _ => pos += 1,
            }
        }
        Ok(())
    }

    /// Second sweep: field and static types (classes all known now).
    fn resolve_types(&mut self) -> Result<(), ParseError> {
        let mut pos = 0;
        let mut fidx = 0usize;
        let mut sidx = 0usize;
        while pos < self.lines.len() {
            self.pos = pos + 1;
            let (_, line) = self.lines[pos];
            if line.starts_with("class ") {
                pos += 1;
                while pos < self.lines.len() {
                    let (_, fl) = self.lines[pos];
                    if fl.starts_with('}') {
                        pos += 1;
                        break;
                    }
                    let (_, fty) = fl.split_once(':').expect("checked in pass 1");
                    let ty = self.parse_ty(fty)?;
                    self.program.fields[fidx].ty = ty;
                    fidx += 1;
                    pos += 1;
                }
            } else if line.starts_with("static ") {
                let rest = line.splitn(3, ' ').nth(2).expect("checked in pass 1");
                let (_, sty) = rest.split_once(':').expect("checked in pass 1");
                let ty = self.parse_ty(sty)?;
                self.program.statics[sidx].ty = ty;
                sidx += 1;
                pos += 1;
            } else {
                pos += 1;
            }
        }
        Ok(())
    }

    fn parse_method_header(&mut self, line: &str, mid: MethodId) -> Result<(), ParseError> {
        // method mN name(a0: T, a1: U) [-> R] locals=K [ctor]
        let after = line
            .strip_prefix("method ")
            .ok_or_else(|| self.err("expected 'method'"))?;
        let open = after
            .find('(')
            .ok_or_else(|| self.err("method needs '('"))?;
        let close = after
            .rfind(')')
            .ok_or_else(|| self.err("method needs ')'"))?;
        let params_src = &after[open + 1..close];
        let tail = after[close + 1..].trim();

        let mut params = Vec::new();
        if !params_src.trim().is_empty() {
            for p in params_src.split(',') {
                let (_, ty) = p
                    .split_once(':')
                    .ok_or_else(|| self.err("parameter needs 'aN: type'"))?;
                params.push(self.parse_ty(ty)?);
            }
        }
        let (ret, tail) = if let Some(rest) = tail.strip_prefix("->") {
            let (ty_str, rest2) = rest
                .trim_start()
                .split_once(" locals=")
                .ok_or_else(|| self.err("method needs 'locals=N'"))?;
            (Some(self.parse_ty(ty_str)?), format!("locals={rest2}"))
        } else {
            (None, tail.to_string())
        };
        let tail = tail
            .strip_prefix("locals=")
            .ok_or_else(|| self.err("method needs 'locals=N'"))?;
        let mut tail_words = tail.split_whitespace();
        let num_locals: u16 = tail_words
            .next()
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| self.err("bad locals count"))?;
        let is_ctor = tail_words.next() == Some("ctor");
        let owner = if is_ctor {
            match params.first() {
                Some(Ty::Ref(c)) => Some(*c),
                _ => return Err(self.err("constructor's first parameter must be its class")),
            }
        } else {
            None
        };
        let m = &mut self.program.methods[mid.index()];
        m.sig = MethodSig::new(params, ret);
        m.num_locals = num_locals;
        m.is_constructor = is_ctor;
        m.owner = owner;
        Ok(())
    }

    fn parse_insn(&mut self, line: &str) -> Result<Option<Insn>, ParseError> {
        let mut w = line.split_whitespace();
        let op = w.next().ok_or_else(|| self.err("empty instruction"))?;
        let arg = |p: &Self, w: &mut std::str::SplitWhitespace<'_>| -> Result<String, ParseError> {
            w.next()
                .map(str::to_string)
                .ok_or_else(|| p.err(format!("'{op}' needs an operand")))
        };
        let insn = match op {
            "const" => Insn::Const(
                arg(self, &mut w)?
                    .parse()
                    .map_err(|_| self.err("bad integer constant"))?,
            ),
            "const_null" => Insn::ConstNull,
            "load" => Insn::Load(self.parse_local(&arg(self, &mut w)?)?),
            "store" => Insn::Store(self.parse_local(&arg(self, &mut w)?)?),
            "iinc" => {
                let l = self.parse_local(&arg(self, &mut w)?)?;
                let d: i64 = arg(self, &mut w)?
                    .parse()
                    .map_err(|_| self.err("bad iinc delta"))?;
                Insn::IInc(l, d)
            }
            "dup" => Insn::Dup,
            "dup_x1" => Insn::DupX1,
            "pop" => Insn::Pop,
            "swap" => Insn::Swap,
            "add" => Insn::Add,
            "sub" => Insn::Sub,
            "mul" => Insn::Mul,
            "div" => Insn::Div,
            "rem" => Insn::Rem,
            "neg" => Insn::Neg,
            "and" => Insn::And,
            "or" => Insn::Or,
            "xor" => Insn::Xor,
            "shl" => Insn::Shl,
            "shr" => Insn::Shr,
            "getfield" => Insn::GetField(self.parse_field_ref(&arg(self, &mut w)?)?),
            "putfield" => Insn::PutField(self.parse_field_ref(&arg(self, &mut w)?)?),
            "getstatic" => {
                let n = arg(self, &mut w)?;
                Insn::GetStatic(
                    *self
                        .static_ids
                        .get(&n)
                        .ok_or_else(|| self.err(format!("unknown static '{n}'")))?,
                )
            }
            "putstatic" => {
                let n = arg(self, &mut w)?;
                Insn::PutStatic(
                    *self
                        .static_ids
                        .get(&n)
                        .ok_or_else(|| self.err(format!("unknown static '{n}'")))?,
                )
            }
            "aaload" => Insn::AaLoad,
            "aastore" => Insn::AaStore,
            "iaload" => Insn::IaLoad,
            "iastore" => Insn::IaStore,
            "arraylength" => Insn::ArrayLength,
            "new" => {
                let cls = arg(self, &mut w)?;
                let c = *self
                    .class_ids
                    .get(&cls)
                    .ok_or_else(|| self.err(format!("unknown class '{cls}'")))?;
                let site = self.parse_site(&arg(self, &mut w)?)?;
                Insn::New { class: c, site }
            }
            "newarray" => {
                let elem = arg(self, &mut w)?;
                let site_tok = arg(self, &mut w)?;
                let site = self.parse_site(&site_tok)?;
                if elem == "int[]" {
                    Insn::NewIntArray { site }
                } else {
                    let base = elem
                        .strip_suffix("[]")
                        .ok_or_else(|| self.err("newarray needs 'T[]'"))?;
                    let c = *self
                        .class_ids
                        .get(base)
                        .ok_or_else(|| self.err(format!("unknown class '{base}'")))?;
                    Insn::NewRefArray { class: c, site }
                }
            }
            "invoke" => {
                let n = arg(self, &mut w)?;
                Insn::Invoke(
                    *self
                        .method_ids
                        .get(&n)
                        .ok_or_else(|| self.err(format!("unknown method '{n}'")))?,
                )
            }
            _ => return Ok(None), // not an instruction: caller tries terminator
        };
        Ok(Some(insn))
    }

    fn parse_terminator(&self, line: &str) -> Result<Option<Terminator>, ParseError> {
        let mut w = line.split_whitespace();
        let op = w.next().ok_or_else(|| self.err("empty terminator"))?;
        let t = match op {
            "goto" => Terminator::Goto(
                self.parse_block_ref(w.next().ok_or_else(|| self.err("goto needs a target"))?)?,
            ),
            "return" => Terminator::Return,
            "return_value" => Terminator::ReturnValue,
            _ if op.starts_with("if_") => {
                let cond_str = &op[3..];
                let cond = if let Some(c) = cond_str.strip_prefix("icmp_") {
                    Cond::ICmp(self.parse_cmp(c)?)
                } else if cond_str == "null" {
                    Cond::IsNull
                } else if cond_str == "nonnull" {
                    Cond::NonNull
                } else if cond_str == "acmp_eq" {
                    Cond::RefEq
                } else if cond_str == "acmp_ne" {
                    Cond::RefNe
                } else if let Some(c) = cond_str.strip_prefix('i').and_then(|c| c.strip_suffix('z'))
                {
                    Cond::IZero(self.parse_cmp(c)?)
                } else {
                    return Err(self.err(format!("unknown condition '{cond_str}'")));
                };
                let then_ = self
                    .parse_block_ref(w.next().ok_or_else(|| self.err("if needs a then-target"))?)?;
                let kw = w.next();
                if kw != Some("else") {
                    return Err(self.err("if needs 'else'"));
                }
                let else_ = self.parse_block_ref(
                    w.next()
                        .ok_or_else(|| self.err("if needs an else-target"))?,
                )?;
                Terminator::If { cond, then_, else_ }
            }
            _ => return Ok(None),
        };
        Ok(Some(t))
    }

    fn parse_bodies(&mut self) -> Result<(), ParseError> {
        self.pos = 0;
        let mut current_method: Option<MethodId> = None;
        let mut blocks: Vec<Block> = Vec::new();
        let mut insns: Vec<Insn> = Vec::new();
        let mut in_block = false;

        macro_rules! finish_method {
            ($self:ident) => {
                if let Some(mid) = current_method.take() {
                    if in_block {
                        return Err($self.err("block without terminator at method end"));
                    }
                    let m = &mut $self.program.methods[mid.index()];
                    m.blocks = std::mem::take(&mut blocks);
                    m.refresh_size();
                }
            };
        }

        while let Some(line) = self.next_line() {
            if line.starts_with("class ") || line.starts_with("static ") {
                finish_method!(self);
                // Skip class bodies.
                if line.starts_with("class ") {
                    while let Some(l) = self.peek() {
                        let done = l.starts_with('}');
                        self.pos += 1;
                        if done {
                            break;
                        }
                    }
                }
                continue;
            }
            if line.starts_with("method ") {
                finish_method!(self);
                let name = line
                    .split_whitespace()
                    .nth(2)
                    .and_then(|n| n.split('(').next())
                    .ok_or_else(|| self.err("method needs a name"))?;
                let mid = *self
                    .method_ids
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown method '{name}'")))?;
                self.parse_method_header(line, mid)?;
                current_method = Some(mid);
                continue;
            }
            if line.ends_with(':') && line.starts_with('B') {
                if in_block {
                    return Err(self.err("previous block has no terminator"));
                }
                let label = self.parse_block_ref(&line[..line.len() - 1])?;
                if label.index() != blocks.len() {
                    return Err(self.err(format!(
                        "blocks must appear in order: expected B{}, found {label}",
                        blocks.len()
                    )));
                }
                in_block = true;
                continue;
            }
            if current_method.is_none() || !in_block {
                if line.is_empty() {
                    continue;
                }
                return Err(self.err(format!("unexpected line '{line}'")));
            }
            // Instruction or terminator inside the current block.
            if let Some(t) = self.parse_terminator(line)? {
                blocks.push(Block::new(std::mem::take(&mut insns), t));
                in_block = false;
            } else if let Some(i) = self.parse_insn(line)? {
                insns.push(i);
            } else {
                return Err(self.err(format!("unknown instruction '{line}'")));
            }
        }
        finish_method!(self);
        Ok(())
    }
}

/// Parses a whole program from the textual format.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input,
/// unknown names, or out-of-order declarations.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let lines: Vec<(usize, &str)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with("//") && !l.starts_with('#'))
        .collect();
    let mut parser = Parser {
        lines,
        pos: 0,
        program: Program::new(),
        class_ids: HashMap::new(),
        field_ids: HashMap::new(),
        static_ids: HashMap::new(),
        method_ids: HashMap::new(),
        max_site: None,
    };
    parser.scan_declarations()?;
    parser.resolve_types()?;
    parser.parse_bodies()?;
    parser.program.next_site = parser.max_site.map_or(0, |m| m + 1);
    Ok(parser.program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::display::program_display;

    fn round_trip(p: &Program) -> Program {
        let text = program_display(p).to_string();
        parse_program(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"))
    }

    #[test]
    fn simple_round_trip_is_structural_identity() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Node");
        let next = pb.field(c, "next", Ty::Ref(c));
        pb.field(c, "weight", Ty::Int);
        pb.static_field("root", Ty::Ref(c));
        pb.static_field("count", Ty::Int);
        pb.method("link", vec![Ty::Ref(c), Ty::Ref(c)], None, 0, |mb| {
            let a = mb.local(0);
            let b = mb.local(1);
            mb.load(a).load(b).putfield(next).return_();
        });
        let p = pb.finish();
        let q = round_trip(&p);
        assert_eq!(p, q);
    }

    #[test]
    fn full_instruction_coverage_round_trip() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("T");
        let fr = pb.field(c, "r", Ty::Ref(c));
        let g = pb.static_field("g", Ty::Ref(c));
        let callee = pb.method("callee", vec![Ty::Int], Some(Ty::Int), 0, |mb| {
            let x = mb.local(0);
            mb.load(x).return_value();
        });
        pb.method("everything", vec![Ty::Int], Some(Ty::Int), 4, |mb| {
            let n = mb.local(0);
            let o = mb.local(1);
            let arr = mb.local(2);
            let ia = mb.local(3);
            let t = mb.local(4);
            let b1 = mb.new_block();
            let b2 = mb.new_block();
            let b3 = mb.new_block();
            // arithmetic and stack ops
            mb.iconst(3).iconst(4).add().iconst(2).sub().iconst(5).mul();
            mb.iconst(3).div().iconst(2).rem().neg();
            mb.iconst(1).and().iconst(2).or().iconst(3).xor();
            mb.iconst(1).shl().iconst(1).shr();
            mb.dup()
                .pop()
                .iconst(9)
                .swap()
                .dup_x1()
                .pop()
                .pop()
                .store(t);
            // heap ops
            mb.new_object(c).store(o);
            mb.load(o).load(o).getfield(fr).putfield(fr);
            mb.load(o).putstatic(g);
            mb.getstatic(g).pop();
            mb.iconst(4).new_ref_array(c).store(arr);
            mb.load(arr).iconst(0).const_null().aastore();
            mb.load(arr).iconst(0).aaload().pop();
            mb.iconst(4).new_int_array().store(ia);
            mb.load(ia).iconst(0).iconst(7).iastore();
            mb.load(ia).iconst(0).iaload().pop();
            mb.load(arr).arraylength().pop();
            mb.iinc(t, -3);
            // calls and branches
            mb.load(n).invoke(callee).store(t);
            mb.load(t).if_zero(CmpOp::Ge, b1, b2);
            mb.switch_to(b1).load(o).if_null(b2, b3);
            mb.switch_to(b2).iconst(0).return_value();
            mb.switch_to(b3).load(o).getstatic(g).if_acmp_eq(b2, b2);
        });
        let p = pb.finish();
        p.validate().unwrap();
        let q = round_trip(&p);
        assert_eq!(p, q);
        // And the re-printed text is identical.
        assert_eq!(
            program_display(&p).to_string(),
            program_display(&q).to_string()
        );
    }

    #[test]
    fn constructors_recover_owner_and_flag() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Point");
        let fx = pb.field(c, "x", Ty::Int);
        let ctor = pb.declare_constructor(c, vec![Ty::Int]);
        pb.define_method(ctor, 0, |mb| {
            let this = mb.local(0);
            let v = mb.local(1);
            mb.load(this).load(v).putfield(fx).return_();
        });
        let p = pb.finish();
        let q = round_trip(&p);
        assert_eq!(p, q);
        assert!(q.method(ctor).is_constructor);
        assert_eq!(q.method(ctor).owner, Some(c));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad = "method m0 f() locals=0\n  B0:\n    frobnicate\n    return\n";
        let e = parse_program(bad).unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.reason.contains("frobnicate"), "{e}");
    }

    #[test]
    fn unknown_names_are_rejected() {
        let bad = "method m0 f() locals=0\n  B0:\n    getstatic nope\n    return\n";
        assert!(parse_program(bad).is_err());
        let bad = "method m0 f() locals=0\n  B0:\n    invoke ghost\n    return\n";
        assert!(parse_program(bad).is_err());
        let bad = "method m0 f(a0: Ghost) locals=1\n  B0:\n    return\n";
        assert!(parse_program(bad).is_err());
    }

    #[test]
    fn out_of_order_blocks_rejected() {
        let bad = "method m0 f() locals=0\n  B1:\n    return\n";
        let e = parse_program(bad).unwrap_err();
        assert!(e.reason.contains("order"), "{e}");
    }

    #[test]
    fn missing_terminator_rejected() {
        let bad = "method m0 f() locals=0\n  B0:\n    const 1\n";
        let e = parse_program(bad).unwrap_err();
        assert!(e.reason.contains("terminator"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n// a comment\nmethod m0 f() locals=0\n\n  B0:\n    # another\n    return\n";
        let p = parse_program(src).unwrap();
        assert_eq!(p.methods.len(), 1);
        p.validate().unwrap();
    }

    #[test]
    fn next_site_restored_from_max() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("alloc", vec![], None, 0, |mb| {
            mb.new_object(c).pop().new_object(c).pop().return_();
        });
        let p = pb.finish();
        let q = round_trip(&p);
        assert_eq!(q.next_site, p.next_site);
    }
}
