//! Strongly-typed identifiers for IR entities.
//!
//! Every program entity (class, field, static, method, basic block, local
//! variable slot, allocation site) is referred to by a compact index
//! newtype. Indices are dense: they index directly into the owning
//! [`Program`](crate::Program) or [`Method`](crate::Method) tables.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $repr:ty, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit the id's representation.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(
                    <$repr>::try_from(index).is_ok(),
                    concat!(stringify!($name), " index out of range")
                );
                $name(index as $repr)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a class declaration in a [`Program`](crate::Program).
    ClassId,
    u32,
    "C"
);
id_type!(
    /// Identifies an instance field declaration in a [`Program`](crate::Program).
    FieldId,
    u32,
    "f"
);
id_type!(
    /// Identifies a static (global) field in a [`Program`](crate::Program).
    StaticId,
    u32,
    "g"
);
id_type!(
    /// Identifies a method in a [`Program`](crate::Program).
    MethodId,
    u32,
    "m"
);
id_type!(
    /// Identifies a basic block within a [`Method`](crate::Method).
    BlockId,
    u32,
    "B"
);
id_type!(
    /// Identifies an allocation site.
    ///
    /// Site ids are unique across a whole [`Program`](crate::Program);
    /// the inliner allocates fresh ids when it clones callee bodies so
    /// that the analysis sees distinct sites per inlined copy.
    SiteId,
    u32,
    "site"
);
id_type!(
    /// Identifies a local variable slot within a method frame.
    ///
    /// Slots `0..sig.params.len()` hold the arguments on entry (slot 0 is
    /// `this` for constructors and instance methods).
    LocalId,
    u16,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let id = BlockId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id, BlockId(7));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(SiteId(3).to_string(), "site3");
        assert_eq!(format!("{:?}", LocalId(2)), "l2");
        assert_eq!(ClassId(0).to_string(), "C0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_out_of_range_panics() {
        let _ = LocalId::from_index(1 << 20);
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(FieldId(1) < FieldId(2));
        assert_eq!(MethodId::default(), MethodId(0));
    }
}
