//! Control-flow-graph utilities over method bodies.

use crate::ids::BlockId;
use crate::method::Method;

/// Predecessor lists for every block of `method`, indexed by block.
///
/// Each list is in deterministic (block, edge) order and may contain a
/// predecessor twice if both edges of an `If` target the same block.
pub fn predecessors(method: &Method) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); method.blocks.len()];
    for (bid, block) in method.iter_blocks() {
        for succ in block.term.successors() {
            preds[succ.index()].push(bid);
        }
    }
    preds
}

/// Blocks reachable from the entry, in reverse postorder.
///
/// Reverse postorder visits a block before its successors on forward
/// edges, which makes the analysis worklist converge in few passes.
pub fn reverse_postorder(method: &Method) -> Vec<BlockId> {
    let n = method.blocks.len();
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    let mut postorder = Vec::with_capacity(n);
    // Iterative DFS storing (block, next successor index).
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
    let entry = method.entry();
    state[entry.index()] = 1;
    stack.push((entry, method.block(entry).term.successors().collect(), 0));
    while let Some((bid, succs, idx)) = stack.last_mut() {
        if let Some(&succ) = succs.get(*idx) {
            *idx += 1;
            if state[succ.index()] == 0 {
                state[succ.index()] = 1;
                stack.push((succ, method.block(succ).term.successors().collect(), 0));
            }
        } else {
            state[bid.index()] = 2;
            postorder.push(*bid);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Blocks unreachable from the entry.
pub fn unreachable_blocks(method: &Method) -> Vec<BlockId> {
    let reachable: std::collections::BTreeSet<_> = reverse_postorder(method).into_iter().collect();
    (0..method.blocks.len())
        .map(BlockId::from_index)
        .filter(|b| !reachable.contains(b))
        .collect()
}

/// True if any block's terminator can branch back to a block at the same
/// or an earlier reverse-postorder position (a quick loop detector used
/// for diagnostics only — the analyses never need loop structure, per the
/// paper).
pub fn has_back_edge(method: &Method) -> bool {
    let rpo = reverse_postorder(method);
    let mut pos = vec![usize::MAX; method.blocks.len()];
    for (i, b) in rpo.iter().enumerate() {
        pos[b.index()] = i;
    }
    for &b in &rpo {
        for succ in method.block(b).term.successors() {
            if pos[succ.index()] <= pos[b.index()] {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::insn::CmpOp;
    use crate::program::Ty;

    fn looped() -> crate::program::Program {
        let mut pb = ProgramBuilder::new();
        pb.method("loop", vec![Ty::Int], None, 0, |mb| {
            let n = mb.local(0);
            let head = mb.new_block();
            let body = mb.new_block();
            let exit = mb.new_block();
            mb.goto_(head);
            mb.switch_to(head).load(n).if_zero(CmpOp::Gt, body, exit);
            mb.switch_to(body).iinc(n, -1).goto_(head);
            mb.switch_to(exit).return_();
        });
        pb.finish()
    }

    #[test]
    fn rpo_visits_entry_first_and_all_blocks() {
        let p = looped();
        let rpo = reverse_postorder(&p.methods[0]);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn predecessors_of_loop_head() {
        let p = looped();
        let preds = predecessors(&p.methods[0]);
        // head (B1) has preds entry (B0) and body (B2).
        assert_eq!(preds[1], vec![BlockId(0), BlockId(2)]);
    }

    #[test]
    fn back_edge_detected() {
        let p = looped();
        assert!(has_back_edge(&p.methods[0]));
        let mut pb = ProgramBuilder::new();
        pb.method("straight", vec![], None, 0, |mb| {
            mb.return_();
        });
        let p2 = pb.finish();
        assert!(!has_back_edge(&p2.methods[0]));
    }

    #[test]
    fn unreachable_blocks_found() {
        let mut p = looped();
        p.methods[0].blocks.push(crate::method::Block::new(
            vec![],
            crate::insn::Terminator::Return,
        ));
        assert_eq!(unreachable_blocks(&p.methods[0]), vec![BlockId(4)]);
    }
}
