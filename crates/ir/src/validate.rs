//! Structural and stack-discipline validation.
//!
//! Plays the role the JVM bytecode verifier plays for the paper's
//! analysis: it guarantees that ids are in range and that the operand
//! stack has a single, consistent height at every program point — the
//! property that lets the abstract interpretation merge stacks
//! "elementwise" at join points (§2.2).

use std::fmt;

use crate::ids::{BlockId, LocalId, MethodId};
use crate::insn::{Insn, Terminator};
use crate::method::Method;
use crate::program::Program;

/// A validation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A method body is empty.
    EmptyMethod {
        /// Offending method.
        method: MethodId,
    },
    /// An id referenced by an instruction is out of range.
    BadId {
        /// Offending method.
        method: MethodId,
        /// Location description.
        at: String,
        /// What was out of range.
        what: String,
    },
    /// A local slot index is out of the method's declared range.
    BadLocal {
        /// Offending method.
        method: MethodId,
        /// Location description.
        at: String,
        /// The local.
        local: LocalId,
    },
    /// The operand stack would underflow.
    StackUnderflow {
        /// Offending method.
        method: MethodId,
        /// Location description.
        at: String,
    },
    /// Two paths reach a block with different stack heights.
    InconsistentStackHeight {
        /// Offending method.
        method: MethodId,
        /// Offending block.
        block: BlockId,
        /// Height seen first.
        expected: usize,
        /// Conflicting height.
        found: usize,
    },
    /// A return terminator disagrees with the method signature, or leaves
    /// operands on the stack.
    BadReturn {
        /// Offending method.
        method: MethodId,
        /// Location description.
        at: String,
        /// Explanation.
        reason: String,
    },
    /// The number of declared locals is smaller than the parameter count.
    TooFewLocals {
        /// Offending method.
        method: MethodId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::EmptyMethod { method } => {
                write!(f, "method {method} has no blocks")
            }
            ValidateError::BadId { method, at, what } => {
                write!(f, "method {method} at {at}: {what} out of range")
            }
            ValidateError::BadLocal { method, at, local } => {
                write!(f, "method {method} at {at}: local {local} out of range")
            }
            ValidateError::StackUnderflow { method, at } => {
                write!(f, "method {method} at {at}: operand stack underflow")
            }
            ValidateError::InconsistentStackHeight {
                method,
                block,
                expected,
                found,
            } => write!(
                f,
                "method {method}: block {block} entered with stack heights {expected} and {found}"
            ),
            ValidateError::BadReturn { method, at, reason } => {
                write!(f, "method {method} at {at}: {reason}")
            }
            ValidateError::TooFewLocals { method } => {
                write!(f, "method {method} declares fewer locals than parameters")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates every method of `program`; see [`validate_method`].
///
/// # Errors
///
/// Returns the first [`ValidateError`] encountered, in method order.
pub fn validate_program(program: &Program) -> Result<(), ValidateError> {
    for method in &program.methods {
        validate_method(program, method)?;
    }
    Ok(())
}

/// Validates one method: id ranges, local ranges, stack discipline, and
/// return/signature agreement.
///
/// Unreachable blocks are checked for id ranges but not for stack
/// discipline (they have no incoming height).
///
/// # Errors
///
/// Returns the first [`ValidateError`] encountered.
pub fn validate_method(program: &Program, method: &Method) -> Result<(), ValidateError> {
    let mid = method.id;
    if method.blocks.is_empty() {
        return Err(ValidateError::EmptyMethod { method: mid });
    }
    if (method.num_locals as usize) < method.sig.params.len() {
        return Err(ValidateError::TooFewLocals { method: mid });
    }

    // Range checks on every instruction, reachable or not.
    for (bid, idx, insn) in method.iter_insns() {
        let at = format!("{bid}[{idx}]");
        check_ids(program, method, insn, mid, &at)?;
    }
    for (bid, block) in method.iter_blocks() {
        for succ in block.term.successors() {
            if succ.index() >= method.blocks.len() {
                return Err(ValidateError::BadId {
                    method: mid,
                    at: format!("{bid}[term]"),
                    what: format!("branch target {succ}"),
                });
            }
        }
    }

    // Stack-height dataflow over reachable blocks.
    let mut entry_height: Vec<Option<usize>> = vec![None; method.blocks.len()];
    entry_height[0] = Some(0);
    let mut worklist = vec![BlockId(0)];
    while let Some(bid) = worklist.pop() {
        let mut height = entry_height[bid.index()].expect("worklist blocks have heights");
        let block = method.block(bid);
        for (idx, insn) in block.insns.iter().enumerate() {
            let at = format!("{bid}[{idx}]");
            let (pops, pushes) = insn.stack_effect(|m| program.method(m).sig.invoke_effect());
            if height < pops {
                return Err(ValidateError::StackUnderflow { method: mid, at });
            }
            height = height - pops + pushes;
        }
        let at = format!("{bid}[term]");
        let pops = block.term.pops();
        if height < pops {
            return Err(ValidateError::StackUnderflow { method: mid, at });
        }
        height -= pops;
        match block.term {
            Terminator::Return => {
                if method.sig.ret.is_some() {
                    return Err(ValidateError::BadReturn {
                        method: mid,
                        at,
                        reason: "void return in method with a return type".into(),
                    });
                }
                if height != 0 {
                    return Err(ValidateError::BadReturn {
                        method: mid,
                        at,
                        reason: format!("{height} operands left on stack at return"),
                    });
                }
            }
            Terminator::ReturnValue => {
                if method.sig.ret.is_none() {
                    return Err(ValidateError::BadReturn {
                        method: mid,
                        at,
                        reason: "value return in void method".into(),
                    });
                }
                if height != 0 {
                    return Err(ValidateError::BadReturn {
                        method: mid,
                        at,
                        reason: format!("{height} extra operands on stack at return"),
                    });
                }
            }
            _ => {
                for succ in block.term.successors() {
                    match entry_height[succ.index()] {
                        None => {
                            entry_height[succ.index()] = Some(height);
                            worklist.push(succ);
                        }
                        Some(expected) if expected != height => {
                            return Err(ValidateError::InconsistentStackHeight {
                                method: mid,
                                block: succ,
                                expected,
                                found: height,
                            });
                        }
                        Some(_) => {}
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_ids(
    program: &Program,
    method: &Method,
    insn: &Insn,
    mid: MethodId,
    at: &str,
) -> Result<(), ValidateError> {
    let bad = |what: String| ValidateError::BadId {
        method: mid,
        at: at.to_string(),
        what,
    };
    let check_local = |l: LocalId| {
        if l.0 >= method.num_locals {
            Err(ValidateError::BadLocal {
                method: mid,
                at: at.to_string(),
                local: l,
            })
        } else {
            Ok(())
        }
    };
    match *insn {
        Insn::Load(l) | Insn::Store(l) | Insn::IInc(l, _) => check_local(l)?,
        Insn::GetField(fi) | Insn::PutField(fi) if fi.index() >= program.fields.len() => {
            return Err(bad(format!("field {fi}")));
        }
        Insn::GetStatic(s) | Insn::PutStatic(s) if s.index() >= program.statics.len() => {
            return Err(bad(format!("static {s}")));
        }
        Insn::New { class, .. } | Insn::NewRefArray { class, .. }
            if class.index() >= program.classes.len() =>
        {
            return Err(bad(format!("class {class}")));
        }
        Insn::Invoke(m) if m.index() >= program.methods.len() => {
            return Err(bad(format!("method {m}")));
        }
        _ => {}
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::{ClassId, FieldId, SiteId};
    use crate::insn::CmpOp;
    use crate::method::Block;
    use crate::program::Ty;

    fn ok_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let f = pb.field(c, "x", Ty::Int);
        pb.method("m", vec![Ty::Ref(c)], Some(Ty::Int), 0, |mb| {
            mb.load(mb.local(0)).getfield(f).return_value();
        });
        pb.finish()
    }

    #[test]
    fn valid_program_passes() {
        ok_program().validate().unwrap();
    }

    #[test]
    fn stack_underflow_detected() {
        let mut p = ok_program();
        p.methods[0].blocks[0].insns.insert(0, Insn::Pop);
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::StackUnderflow { .. }), "{err}");
    }

    #[test]
    fn bad_field_id_detected() {
        let mut p = ok_program();
        p.methods[0].blocks[0].insns[1] = Insn::GetField(FieldId(99));
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::BadId { .. }), "{err}");
    }

    #[test]
    fn bad_local_detected() {
        let mut p = ok_program();
        p.methods[0].blocks[0].insns[0] = Insn::Load(LocalId(9));
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::BadLocal { .. }), "{err}");
    }

    #[test]
    fn bad_branch_target_detected() {
        let mut p = ok_program();
        p.methods[0].blocks[0].term = Terminator::Goto(BlockId(7));
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::BadId { .. }), "{err}");
    }

    #[test]
    fn inconsistent_join_heights_detected() {
        // B0: if (0 == 0) goto B1 else B2; B1 pushes an extra value before
        // joining B3, B2 does not.
        let mut pb = ProgramBuilder::new();
        pb.method("join", vec![], None, 0, |mb| {
            let b1 = mb.new_block();
            let b2 = mb.new_block();
            let b3 = mb.new_block();
            mb.iconst(0).if_zero(CmpOp::Eq, b1, b2);
            mb.switch_to(b1).iconst(1).goto_(b3);
            mb.switch_to(b2).goto_(b3);
            mb.switch_to(b3).pop().return_();
        });
        let p = pb.finish();
        let err = p.validate().unwrap_err();
        // Depending on visit order the checker sees either the height
        // conflict at the join or an underflow on the short path; both
        // reject the program.
        assert!(
            matches!(
                err,
                ValidateError::InconsistentStackHeight { .. }
                    | ValidateError::StackUnderflow { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn inconsistent_join_heights_detected_without_underflow() {
        // Both paths push before joining, but one pushes twice; the join
        // block consumes one value, so no underflow masks the conflict.
        let mut pb = ProgramBuilder::new();
        pb.method("join2", vec![], Some(Ty::Int), 0, |mb| {
            let b1 = mb.new_block();
            let b2 = mb.new_block();
            let b3 = mb.new_block();
            mb.iconst(0).if_zero(CmpOp::Eq, b1, b2);
            mb.switch_to(b1).iconst(1).iconst(2).goto_(b3);
            mb.switch_to(b2).iconst(3).goto_(b3);
            mb.switch_to(b3).return_value();
        });
        let p = pb.finish();
        let err = p.validate().unwrap_err();
        assert!(
            matches!(err, ValidateError::InconsistentStackHeight { .. })
                || matches!(err, ValidateError::BadReturn { .. }),
            "{err}"
        );
    }

    #[test]
    fn void_return_with_ret_type_detected() {
        let mut p = ok_program();
        p.methods[0].blocks[0] = Block::new(vec![], Terminator::Return);
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::BadReturn { .. }), "{err}");
    }

    #[test]
    fn leftover_operands_at_return_detected() {
        let mut pb = ProgramBuilder::new();
        pb.method("leftover", vec![], None, 0, |mb| {
            mb.iconst(1).return_();
        });
        let p = pb.finish();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::BadReturn { .. }), "{err}");
    }

    #[test]
    fn empty_method_detected() {
        let mut p = ok_program();
        p.methods[0].blocks.clear();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, ValidateError::EmptyMethod { .. }), "{err}");
    }

    #[test]
    fn unreachable_blocks_skip_stack_checks_but_not_id_checks() {
        let mut p = ok_program();
        // Unreachable block popping from an empty stack: allowed.
        p.methods[0]
            .blocks
            .push(Block::new(vec![Insn::Pop], Terminator::Return));
        p.validate().unwrap();
        // But a bad class id in an unreachable block is still an error.
        p.methods[0].blocks[1].insns[0] = Insn::New {
            class: ClassId(42),
            site: SiteId(0),
        };
        assert!(p.validate().is_err());
    }
}
