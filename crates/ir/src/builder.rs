//! Fluent builders for programs and method bodies.
//!
//! [`ProgramBuilder`] declares classes, fields, statics, and methods;
//! [`MethodBuilder`] emits instructions into basic blocks with a chainable
//! API. Allocation sites are numbered automatically and are unique across
//! the program.
//!
//! See the crate-level example for a complete method.

use crate::ids::{BlockId, ClassId, FieldId, LocalId, MethodId, SiteId, StaticId};
use crate::insn::{CmpOp, Cond, Insn, Terminator};
use crate::method::{Block, Method, MethodSig};
use crate::program::{Class, FieldDecl, Program, StaticDecl, Ty};

/// Builds a [`Program`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a class with no fields (add fields with
    /// [`ProgramBuilder::field`]).
    pub fn class(&mut self, name: impl Into<String>) -> ClassId {
        let id = ClassId::from_index(self.program.classes.len());
        self.program.classes.push(Class {
            id,
            name: name.into(),
            fields: Vec::new(),
        });
        id
    }

    /// Declares an instance field on `class`.
    pub fn field(&mut self, class: ClassId, name: impl Into<String>, ty: Ty) -> FieldId {
        let id = FieldId::from_index(self.program.fields.len());
        let offset = self.program.class(class).fields.len();
        self.program.fields.push(FieldDecl {
            id,
            class,
            name: name.into(),
            ty,
            offset,
        });
        self.program.classes[class.index()].fields.push(id);
        id
    }

    /// Declares a static field.
    pub fn static_field(&mut self, name: impl Into<String>, ty: Ty) -> StaticId {
        let id = StaticId::from_index(self.program.statics.len());
        self.program.statics.push(StaticDecl {
            id,
            name: name.into(),
            ty,
        });
        id
    }

    /// Declares a method with an empty body (define it later with
    /// [`ProgramBuilder::define_method`]). Forward declaration lets
    /// mutually recursive methods reference each other.
    pub fn declare_method(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Option<Ty>,
    ) -> MethodId {
        self.declare_method_raw(name, params, ret, None, false)
    }

    /// Declares an instance method on `class`; parameter 0 is the
    /// receiver.
    pub fn declare_instance_method(
        &mut self,
        class: ClassId,
        name: impl Into<String>,
        mut extra_params: Vec<Ty>,
        ret: Option<Ty>,
    ) -> MethodId {
        let mut params = vec![Ty::Ref(class)];
        params.append(&mut extra_params);
        self.declare_method_raw(name, params, ret, Some(class), false)
    }

    /// Declares a constructor for `class`; parameter 0 is the object under
    /// construction. Constructors return void and get the paper's special
    /// initial analysis state for `this`.
    pub fn declare_constructor(&mut self, class: ClassId, mut extra_params: Vec<Ty>) -> MethodId {
        let mut params = vec![Ty::Ref(class)];
        params.append(&mut extra_params);
        let name = format!("{}::<init>", self.program.class(class).name);
        self.declare_method_raw(name, params, None, Some(class), true)
    }

    fn declare_method_raw(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Option<Ty>,
        owner: Option<ClassId>,
        is_constructor: bool,
    ) -> MethodId {
        let id = MethodId::from_index(self.program.methods.len());
        let num_locals = u16::try_from(params.len()).expect("too many parameters");
        self.program.methods.push(Method {
            id,
            name: name.into(),
            sig: MethodSig::new(params, ret),
            owner,
            is_constructor,
            num_locals,
            blocks: Vec::new(),
            size: 0,
        });
        id
    }

    /// Defines the body of a previously declared method. `extra_locals` is
    /// the number of non-parameter local slots.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a body, or if the builder closure
    /// leaves any block without a terminator.
    pub fn define_method(
        &mut self,
        id: MethodId,
        extra_locals: u16,
        f: impl FnOnce(&mut MethodBuilder<'_>),
    ) {
        assert!(
            self.program.method(id).blocks.is_empty(),
            "method {} already defined",
            self.program.method(id).name
        );
        let params = self.program.method(id).sig.params.len() as u16;
        let num_locals = params + extra_locals;
        let mut mb = MethodBuilder {
            program: &mut self.program,
            num_locals,
            blocks: vec![(Vec::new(), None)],
            current: BlockId(0),
        };
        f(&mut mb);
        let blocks: Vec<Block> = mb
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, (insns, term))| {
                let term = term.unwrap_or_else(|| {
                    panic!(
                        "block B{} of method {} has no terminator",
                        i,
                        self.program.method(id).name
                    )
                });
                Block::new(insns, term)
            })
            .collect();
        let m = self.program.method_mut(id);
        m.num_locals = num_locals;
        m.blocks = blocks;
        m.refresh_size();
    }

    /// Convenience: declare and define in one call.
    pub fn method(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Option<Ty>,
        extra_locals: u16,
        f: impl FnOnce(&mut MethodBuilder<'_>),
    ) -> MethodId {
        let id = self.declare_method(name, params, ret);
        self.define_method(id, extra_locals, f);
        id
    }

    /// Read-only access to the program under construction (e.g. to look up
    /// signatures while building).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Finishes building and returns the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// Emits instructions into one method's blocks.
///
/// Every emission method returns `&mut Self` for chaining. The builder
/// starts in block 0 (the entry); create further blocks with
/// [`MethodBuilder::new_block`] and select them with
/// [`MethodBuilder::switch_to`].
#[derive(Debug)]
pub struct MethodBuilder<'p> {
    program: &'p mut Program,
    num_locals: u16,
    blocks: Vec<(Vec<Insn>, Option<Terminator>)>,
    current: BlockId,
}

impl<'p> MethodBuilder<'p> {
    /// Returns the local slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of the method's local range.
    pub fn local(&self, index: u16) -> LocalId {
        assert!(index < self.num_locals, "local l{index} out of range");
        LocalId(index)
    }

    /// Allocates a new, empty block and returns its id (it still needs a
    /// terminator before the method definition completes).
    pub fn new_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push((Vec::new(), None));
        id
    }

    /// Makes `block` the target of subsequent emissions.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        assert!(block.index() < self.blocks.len(), "unknown block {block}");
        self.current = block;
        self
    }

    /// The block currently being emitted into.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Emits a raw instruction.
    ///
    /// # Panics
    ///
    /// Panics if the current block is already terminated.
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        let (insns, term) = &mut self.blocks[self.current.index()];
        assert!(
            term.is_none(),
            "emitting {insn:?} into terminated block {}",
            self.current
        );
        insns.push(insn);
        self
    }

    fn terminate(&mut self, term: Terminator) -> &mut Self {
        let slot = &mut self.blocks[self.current.index()].1;
        assert!(
            slot.is_none(),
            "block {} already terminated with {slot:?}",
            self.current
        );
        *slot = Some(term);
        self
    }

    fn fresh_site(&mut self) -> SiteId {
        self.program.fresh_site()
    }

    // --- constants, locals, stack ---

    /// Push an integer constant.
    pub fn iconst(&mut self, v: i64) -> &mut Self {
        self.emit(Insn::Const(v))
    }

    /// Push null.
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Insn::ConstNull)
    }

    /// Push local `l`.
    pub fn load(&mut self, l: LocalId) -> &mut Self {
        self.emit(Insn::Load(l))
    }

    /// Pop into local `l`.
    pub fn store(&mut self, l: LocalId) -> &mut Self {
        self.emit(Insn::Store(l))
    }

    /// Add `delta` to integer local `l` in place.
    pub fn iinc(&mut self, l: LocalId, delta: i64) -> &mut Self {
        self.emit(Insn::IInc(l, delta))
    }

    /// Duplicate the stack top.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Insn::Dup)
    }

    /// Duplicate the stack top below the next slot.
    pub fn dup_x1(&mut self) -> &mut Self {
        self.emit(Insn::DupX1)
    }

    /// Discard the stack top.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Insn::Pop)
    }

    /// Swap the top two slots.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Insn::Swap)
    }

    // --- arithmetic ---

    /// Pop two ints, push their sum.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Insn::Add)
    }

    /// Pop two ints, push their difference.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Insn::Sub)
    }

    /// Pop two ints, push their product.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Insn::Mul)
    }

    /// Pop two ints, push their quotient.
    pub fn div(&mut self) -> &mut Self {
        self.emit(Insn::Div)
    }

    /// Pop two ints, push their remainder.
    pub fn rem(&mut self) -> &mut Self {
        self.emit(Insn::Rem)
    }

    /// Negate the top int.
    pub fn neg(&mut self) -> &mut Self {
        self.emit(Insn::Neg)
    }

    /// Pop two ints, push their bitwise and.
    pub fn and(&mut self) -> &mut Self {
        self.emit(Insn::And)
    }

    /// Pop two ints, push their bitwise or.
    pub fn or(&mut self) -> &mut Self {
        self.emit(Insn::Or)
    }

    /// Pop two ints, push their bitwise xor.
    pub fn xor(&mut self) -> &mut Self {
        self.emit(Insn::Xor)
    }

    /// Pop shift amount and value, push `value << amount`.
    pub fn shl(&mut self) -> &mut Self {
        self.emit(Insn::Shl)
    }

    /// Pop shift amount and value, push `value >> amount`.
    pub fn shr(&mut self) -> &mut Self {
        self.emit(Insn::Shr)
    }

    // --- heap access ---

    /// Read instance field `f` from the object on top of the stack.
    pub fn getfield(&mut self, f: FieldId) -> &mut Self {
        self.emit(Insn::GetField(f))
    }

    /// Write `.., obj, value` into instance field `f`.
    pub fn putfield(&mut self, f: FieldId) -> &mut Self {
        self.emit(Insn::PutField(f))
    }

    /// Read static `s`.
    pub fn getstatic(&mut self, s: StaticId) -> &mut Self {
        self.emit(Insn::GetStatic(s))
    }

    /// Write the stack top into static `s`.
    pub fn putstatic(&mut self, s: StaticId) -> &mut Self {
        self.emit(Insn::PutStatic(s))
    }

    /// Load a reference array element (`.., arr, idx`).
    pub fn aaload(&mut self) -> &mut Self {
        self.emit(Insn::AaLoad)
    }

    /// Store a reference array element (`.., arr, idx, value`).
    pub fn aastore(&mut self) -> &mut Self {
        self.emit(Insn::AaStore)
    }

    /// Load an int array element (`.., arr, idx`).
    pub fn iaload(&mut self) -> &mut Self {
        self.emit(Insn::IaLoad)
    }

    /// Store an int array element (`.., arr, idx, value`).
    pub fn iastore(&mut self) -> &mut Self {
        self.emit(Insn::IaStore)
    }

    /// Push the length of the array on top of the stack.
    pub fn arraylength(&mut self) -> &mut Self {
        self.emit(Insn::ArrayLength)
    }

    // --- allocation ---

    /// Allocate a new instance of `class` (fields zeroed), pushing the
    /// reference. A fresh allocation site is assigned.
    pub fn new_object(&mut self, class: ClassId) -> &mut Self {
        let site = self.fresh_site();
        self.emit(Insn::New { class, site })
    }

    /// Allocate a reference array of `class` with the length on top of the
    /// stack (elements null). A fresh allocation site is assigned.
    pub fn new_ref_array(&mut self, class: ClassId) -> &mut Self {
        let site = self.fresh_site();
        self.emit(Insn::NewRefArray { class, site })
    }

    /// Allocate an int array with the length on top of the stack
    /// (elements zero). A fresh allocation site is assigned.
    pub fn new_int_array(&mut self) -> &mut Self {
        let site = self.fresh_site();
        self.emit(Insn::NewIntArray { site })
    }

    /// Call `m`, popping its parameters and pushing its return value (if
    /// any).
    pub fn invoke(&mut self, m: MethodId) -> &mut Self {
        self.emit(Insn::Invoke(m))
    }

    // --- terminators ---

    /// Unconditional jump to `target`.
    pub fn goto_(&mut self, target: BlockId) -> &mut Self {
        self.terminate(Terminator::Goto(target))
    }

    /// Pop two ints, branch on `a op b`.
    pub fn if_icmp(&mut self, op: CmpOp, then_: BlockId, else_: BlockId) -> &mut Self {
        self.terminate(Terminator::If {
            cond: Cond::ICmp(op),
            then_,
            else_,
        })
    }

    /// Pop one int, branch on `a op 0`.
    pub fn if_zero(&mut self, op: CmpOp, then_: BlockId, else_: BlockId) -> &mut Self {
        self.terminate(Terminator::If {
            cond: Cond::IZero(op),
            then_,
            else_,
        })
    }

    /// Pop one reference, branch to `then_` if null.
    pub fn if_null(&mut self, then_: BlockId, else_: BlockId) -> &mut Self {
        self.terminate(Terminator::If {
            cond: Cond::IsNull,
            then_,
            else_,
        })
    }

    /// Pop one reference, branch to `then_` if non-null.
    pub fn if_nonnull(&mut self, then_: BlockId, else_: BlockId) -> &mut Self {
        self.terminate(Terminator::If {
            cond: Cond::NonNull,
            then_,
            else_,
        })
    }

    /// Pop two references, branch to `then_` if identical.
    pub fn if_acmp_eq(&mut self, then_: BlockId, else_: BlockId) -> &mut Self {
        self.terminate(Terminator::If {
            cond: Cond::RefEq,
            then_,
            else_,
        })
    }

    /// Pop two references, branch to `then_` if distinct.
    pub fn if_acmp_ne(&mut self, then_: BlockId, else_: BlockId) -> &mut Self {
        self.terminate(Terminator::If {
            cond: Cond::RefNe,
            then_,
            else_,
        })
    }

    /// Return void.
    pub fn return_(&mut self) -> &mut Self {
        self.terminate(Terminator::Return)
    }

    /// Return the stack top.
    pub fn return_value(&mut self) -> &mut Self {
        self.terminate(Terminator::ReturnValue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_program() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Node");
        let next = pb.field(c, "next", Ty::Ref(c));
        let m = pb.method("link", vec![Ty::Ref(c), Ty::Ref(c)], None, 0, |mb| {
            let a = mb.local(0);
            let b = mb.local(1);
            mb.load(a).load(b).putfield(next).return_();
        });
        let p = pb.finish();
        p.validate().unwrap();
        assert_eq!(p.method(m).size, 4);
        assert_eq!(p.method(m).blocks.len(), 1);
    }

    #[test]
    fn allocation_sites_are_unique() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        pb.method("alloc2", vec![], None, 0, |mb| {
            mb.new_object(c).pop().new_object(c).pop().return_();
        });
        let p = pb.finish();
        let sites: Vec<_> = p.methods[0]
            .iter_insns()
            .filter_map(|(_, _, i)| i.allocation_site())
            .collect();
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0], sites[1]);
        assert_eq!(p.next_site, 2);
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn unterminated_block_panics() {
        let mut pb = ProgramBuilder::new();
        pb.method("bad", vec![], None, 0, |mb| {
            mb.iconst(1).pop();
        });
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminator_panics() {
        let mut pb = ProgramBuilder::new();
        pb.method("bad", vec![], None, 0, |mb| {
            mb.return_().return_();
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn local_out_of_range_panics() {
        let mut pb = ProgramBuilder::new();
        pb.method("bad", vec![Ty::Int], None, 1, |mb| {
            let _ = mb.local(5);
            mb.return_();
        });
    }

    #[test]
    fn constructor_declaration() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Point");
        let ctor = pb.declare_constructor(c, vec![Ty::Int]);
        pb.define_method(ctor, 0, |mb| {
            mb.return_();
        });
        let p = pb.finish();
        let m = p.method(ctor);
        assert!(m.is_constructor);
        assert_eq!(m.owner, Some(c));
        assert_eq!(m.sig.params, vec![Ty::Ref(c), Ty::Int]);
        assert_eq!(m.name, "Point::<init>");
    }

    #[test]
    fn forward_declared_mutual_recursion() {
        let mut pb = ProgramBuilder::new();
        let even = pb.declare_method("even", vec![Ty::Int], Some(Ty::Int));
        let odd = pb.declare_method("odd", vec![Ty::Int], Some(Ty::Int));
        pb.define_method(even, 0, |mb| {
            let n = mb.local(0);
            let base = mb.new_block();
            let rec = mb.new_block();
            mb.load(n).if_zero(CmpOp::Eq, base, rec);
            mb.switch_to(base).iconst(1).return_value();
            mb.switch_to(rec)
                .load(n)
                .iconst(1)
                .sub()
                .invoke(odd)
                .return_value();
        });
        pb.define_method(odd, 0, |mb| {
            let n = mb.local(0);
            let base = mb.new_block();
            let rec = mb.new_block();
            mb.load(n).if_zero(CmpOp::Eq, base, rec);
            mb.switch_to(base).iconst(0).return_value();
            mb.switch_to(rec)
                .load(n)
                .iconst(1)
                .sub()
                .invoke(even)
                .return_value();
        });
        let p = pb.finish();
        p.validate().unwrap();
    }
}
