//! Instruction and terminator definitions.
//!
//! The instruction set is the subset of JVM bytecode the paper's transfer
//! functions range over, plus the arithmetic and stack-shuffling
//! operations needed to write realistic programs. Blocks contain straight
//! line [`Insn`]s and end in exactly one [`Terminator`].

use crate::ids::BlockId;
use crate::ids::{ClassId, FieldId, LocalId, MethodId, SiteId, StaticId};

/// Integer comparison operator used by conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on concrete integers.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// Returns the comparison with its operands swapped (`a op b` ⇔ `b (op.flip()) a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Returns the logical negation (`!(a op b)` ⇔ `a (op.negate()) b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Branch condition of an [`Terminator::If`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Pops two ints `.., a, b` and branches on `a op b` (like `if_icmp<op>`).
    ICmp(CmpOp),
    /// Pops one int `a` and branches on `a op 0` (like `if<op>`).
    IZero(CmpOp),
    /// Pops one reference and branches if it is null (`ifnull`).
    IsNull,
    /// Pops one reference and branches if it is non-null (`ifnonnull`).
    NonNull,
    /// Pops two references `.., a, b` and branches on `a == b` (`if_acmpeq`).
    RefEq,
    /// Pops two references `.., a, b` and branches on `a != b` (`if_acmpne`).
    RefNe,
}

impl Cond {
    /// Number of operand-stack slots the condition consumes.
    pub fn pops(self) -> usize {
        match self {
            Cond::ICmp(_) | Cond::RefEq | Cond::RefNe => 2,
            Cond::IZero(_) | Cond::IsNull | Cond::NonNull => 1,
        }
    }
}

/// A straight-line bytecode instruction.
///
/// Stack effects are written `.., inputs -> .., outputs` with the stack
/// top on the right.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Insn {
    /// `.. -> .., c` — push an integer constant.
    Const(i64),
    /// `.. -> .., null` — push the null reference (`aconst_null`).
    ConstNull,
    /// `.. -> .., v` — push local slot `l` (`iload`/`aload`).
    Load(LocalId),
    /// `.., v -> ..` — pop into local slot `l` (`istore`/`astore`).
    Store(LocalId),
    /// `.. -> ..` — add a constant to an integer local in place (`iinc`).
    IInc(LocalId, i64),
    /// `.., v -> .., v, v` — duplicate the top slot (`dup`).
    Dup,
    /// `.., a, b -> .., b, a, b` — duplicate top below the next slot (`dup_x1`).
    DupX1,
    /// `.., v -> ..` — discard the top slot (`pop`).
    Pop,
    /// `.., a, b -> .., b, a` — swap the top two slots (`swap`).
    Swap,
    /// `.., a, b -> .., a+b` (wrapping).
    Add,
    /// `.., a, b -> .., a-b` (wrapping).
    Sub,
    /// `.., a, b -> .., a*b` (wrapping).
    Mul,
    /// `.., a, b -> .., a/b` — traps on division by zero.
    Div,
    /// `.., a, b -> .., a%b` — traps on division by zero.
    Rem,
    /// `.., a -> .., -a` (wrapping).
    Neg,
    /// `.., a, b -> .., a&b`.
    And,
    /// `.., a, b -> .., a|b`.
    Or,
    /// `.., a, b -> .., a^b`.
    Xor,
    /// `.., a, b -> .., a<<(b&63)`.
    Shl,
    /// `.., a, b -> .., a>>(b&63)` (arithmetic).
    Shr,
    /// `.., obj -> .., value` — read an instance field (`getfield`).
    GetField(FieldId),
    /// `.., obj, value -> ..` — write an instance field (`putfield`).
    ///
    /// Reference-typed `PutField`s are the stores the SATB barrier guards;
    /// the elision analysis decides per instruction whether the barrier
    /// may be omitted.
    PutField(FieldId),
    /// `.. -> .., value` — read a static field (`getstatic`).
    GetStatic(StaticId),
    /// `.., value -> ..` — write a static field (`putstatic`).
    PutStatic(StaticId),
    /// `.., arr, idx -> .., value` — load a reference array element (`aaload`).
    AaLoad,
    /// `.., arr, idx, value -> ..` — store a reference array element (`aastore`).
    ///
    /// Like reference `PutField`, guarded by the SATB barrier.
    AaStore,
    /// `.., arr, idx -> .., value` — load an int array element (`iaload`).
    IaLoad,
    /// `.., arr, idx, value -> ..` — store an int array element (`iastore`).
    IaStore,
    /// `.., arr -> .., len` — array length (`arraylength`).
    ArrayLength,
    /// `.. -> .., ref` — allocate a new object of `class` (`new`).
    ///
    /// All fields start zeroed/null. `site` names the allocation site for
    /// the analysis's `R_site/A` / `R_site/B` abstract references.
    New {
        /// Class to instantiate.
        class: ClassId,
        /// Allocation-site identity.
        site: SiteId,
    },
    /// `.., len -> .., ref` — allocate a reference array (`anewarray`).
    ///
    /// All elements start null; traps on negative length.
    NewRefArray {
        /// Element class (metadata only).
        class: ClassId,
        /// Allocation-site identity.
        site: SiteId,
    },
    /// `.., len -> .., ref` — allocate an int array (`newarray int`).
    NewIntArray {
        /// Allocation-site identity.
        site: SiteId,
    },
    /// `.., a0, .., an -> [.., ret]` — direct call (`invokestatic`-style).
    ///
    /// Pops the callee's parameters (first parameter deepest), pushes the
    /// return value if the callee returns one. Constructors are invoked
    /// this way with the receiver as parameter 0.
    Invoke(MethodId),
}

impl Insn {
    /// Returns `(pops, pushes)` stack effect, given a resolver for method
    /// signatures (only [`Insn::Invoke`] needs it).
    pub fn stack_effect(
        &self,
        invoke_effect: impl Fn(MethodId) -> (usize, usize),
    ) -> (usize, usize) {
        match *self {
            Insn::Const(_) | Insn::ConstNull | Insn::Load(_) => (0, 1),
            Insn::Store(_) | Insn::Pop => (1, 0),
            Insn::IInc(..) => (0, 0),
            Insn::Dup => (1, 2),
            Insn::DupX1 => (2, 3),
            Insn::Swap => (2, 2),
            Insn::Add
            | Insn::Sub
            | Insn::Mul
            | Insn::Div
            | Insn::Rem
            | Insn::And
            | Insn::Or
            | Insn::Xor
            | Insn::Shl
            | Insn::Shr => (2, 1),
            Insn::Neg => (1, 1),
            Insn::GetField(_) => (1, 1),
            Insn::PutField(_) => (2, 0),
            Insn::GetStatic(_) => (0, 1),
            Insn::PutStatic(_) => (1, 0),
            Insn::AaLoad | Insn::IaLoad => (2, 1),
            Insn::AaStore | Insn::IaStore => (3, 0),
            Insn::ArrayLength => (1, 1),
            Insn::New { .. } => (0, 1),
            Insn::NewRefArray { .. } | Insn::NewIntArray { .. } => (1, 1),
            Insn::Invoke(m) => invoke_effect(m),
        }
    }

    /// Returns the allocation site, if this instruction allocates.
    pub fn allocation_site(&self) -> Option<SiteId> {
        match *self {
            Insn::New { site, .. }
            | Insn::NewRefArray { site, .. }
            | Insn::NewIntArray { site } => Some(site),
            _ => None,
        }
    }

    /// True for the two instruction kinds that require an SATB write
    /// barrier when storing a reference: reference-field `putfield` and
    /// `aastore`. (Whether a particular `PutField` is reference-typed
    /// depends on the field declaration; see
    /// [`Program::field`](crate::Program::field).)
    pub fn is_potential_barrier_site(&self) -> bool {
        matches!(self, Insn::PutField(_) | Insn::AaStore)
    }
}

/// Block terminator: every basic block ends in exactly one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Conditional branch; pops per [`Cond::pops`].
    If {
        /// Branch condition.
        cond: Cond,
        /// Successor when the condition holds.
        then_: BlockId,
        /// Successor when the condition does not hold.
        else_: BlockId,
    },
    /// Return void; the operand stack must be empty.
    Return,
    /// Return the top of stack; the rest of the stack must be empty.
    ReturnValue,
}

impl Terminator {
    /// Successor blocks in deterministic order.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let (a, b) = match *self {
            Terminator::Goto(t) => (Some(t), None),
            Terminator::If { then_, else_, .. } => (Some(then_), Some(else_)),
            Terminator::Return | Terminator::ReturnValue => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Number of operand-stack slots the terminator consumes.
    pub fn pops(&self) -> usize {
        match *self {
            Terminator::Goto(_) | Terminator::Return => 0,
            Terminator::If { cond, .. } => cond.pops(),
            Terminator::ReturnValue => 1,
        }
    }

    /// True if the terminator leaves the method.
    pub fn is_return(&self) -> bool {
        matches!(self, Terminator::Return | Terminator::ReturnValue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval_and_negate() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-3, 3)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{op:?} {a} {b}");
                assert_eq!(op.eval(a, b), op.flip().eval(b, a), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn stack_effects_balance() {
        let effect = |_m: MethodId| (2, 1);
        assert_eq!(Insn::Const(1).stack_effect(effect), (0, 1));
        assert_eq!(Insn::AaStore.stack_effect(effect), (3, 0));
        assert_eq!(Insn::Invoke(MethodId(0)).stack_effect(effect), (2, 1));
        assert_eq!(Insn::DupX1.stack_effect(effect), (2, 3));
    }

    #[test]
    fn successors_of_terminators() {
        let t = Terminator::If {
            cond: Cond::IsNull,
            then_: BlockId(1),
            else_: BlockId(2),
        };
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
        assert_eq!(Terminator::Return.successors().count(), 0);
        assert!(Terminator::ReturnValue.is_return());
        assert_eq!(t.pops(), 1);
    }

    #[test]
    fn allocation_sites_reported() {
        let i = Insn::New {
            class: ClassId(0),
            site: SiteId(5),
        };
        assert_eq!(i.allocation_site(), Some(SiteId(5)));
        assert_eq!(Insn::Pop.allocation_site(), None);
        assert!(Insn::AaStore.is_potential_barrier_site());
        assert!(Insn::PutField(FieldId(0)).is_potential_barrier_site());
        assert!(!Insn::IaStore.is_potential_barrier_site());
    }
}
