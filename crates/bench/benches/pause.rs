//! Benchmarks the GC pause experiment: SATB vs incremental-update
//! remark work under identical mutator activity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierMode, GcPolicy};
use wbe_opt::OptMode;
use wbe_workloads::by_name;

fn bench_pause(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_pause");
    group.sample_size(10);
    let policy = GcPolicy {
        alloc_trigger: 200,
        step_interval: 32,
        step_budget: 4,
    };
    for (label, style) in [
        ("satb", MarkStyle::Satb),
        ("incremental_update", MarkStyle::IncrementalUpdate),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &style, |b, &style| {
            b.iter(|| {
                let w = by_name("jess").unwrap();
                wbe_harness::runner::run_workload(
                    &w,
                    OptMode::Baseline,
                    100,
                    600,
                    BarrierMode::Checked,
                    style,
                    Some(policy),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pause);
criterion_main!(benches);
