//! Benchmarks Table 2's throughput comparison: jbb under no-barrier,
//! always-log, and always-log-elim. Criterion measures wall time; the
//! modeled-cycle ratios come from the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbe_heap::gc::MarkStyle;
use wbe_interp::BarrierMode;
use wbe_opt::OptMode;
use wbe_workloads::by_name;

fn bench_table2(c: &mut Criterion) {
    let w = by_name("jbb").unwrap();
    let iters = 400;
    let mut group = c.benchmark_group("table2_jbb");
    group.sample_size(10);
    let configs: [(&str, BarrierMode, OptMode); 3] = [
        ("no_barrier", BarrierMode::None, OptMode::Baseline),
        ("always_log", BarrierMode::AlwaysLog, OptMode::Baseline),
        ("always_log_elim", BarrierMode::AlwaysLog, OptMode::Full),
    ];
    for (label, mode, opt) in configs {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(mode, opt),
            |b, &(mode, opt)| {
                b.iter(|| {
                    wbe_harness::runner::run_workload(
                        &w,
                        opt,
                        100,
                        iters,
                        mode,
                        MarkStyle::Satb,
                        None,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
