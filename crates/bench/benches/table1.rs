//! Benchmarks the full Table 1 pipeline (compile + analyze + run) per
//! workload, at a reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbe_heap::gc::MarkStyle;
use wbe_interp::BarrierMode;
use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_pipeline");
    group.sample_size(10);
    for w in standard_suite() {
        let iters = (w.default_iters / 20).max(16);
        group.bench_with_input(BenchmarkId::from_parameter(w.name), &w, |b, w| {
            b.iter(|| {
                wbe_harness::runner::run_workload(
                    w,
                    OptMode::Full,
                    100,
                    iters,
                    BarrierMode::Checked,
                    MarkStyle::Satb,
                    None,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
