//! Ablation benches for the design choices DESIGN.md calls out:
//! two-refs-per-site, flow-sensitive escape, and stride inference.
//! Each variant is run over the whole suite; the interesting output is
//! both the time and (printed once) the elision counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbe_analysis::AnalysisConfig;
use wbe_opt::{compile, OptMode, PipelineConfig};
use wbe_workloads::standard_suite;

fn variants() -> Vec<(&'static str, AnalysisConfig)> {
    vec![
        ("full", AnalysisConfig::full()),
        (
            "single_ref_per_site",
            AnalysisConfig {
                two_refs_per_site: false,
                ..AnalysisConfig::full()
            },
        ),
        (
            "classic_escape",
            AnalysisConfig {
                flow_sensitive_escape: false,
                ..AnalysisConfig::full()
            },
        ),
        (
            "no_stride_inference",
            AnalysisConfig {
                stride_inference: false,
                ..AnalysisConfig::full()
            },
        ),
        ("field_only", AnalysisConfig::field_only()),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    let suite = standard_suite();
    // Print the elision counts once so the ablation's *effect* is
    // visible alongside its cost.
    for (name, cfg) in variants() {
        let total: usize = suite
            .iter()
            .map(|w| {
                let pc = PipelineConfig {
                    analysis_override: Some(cfg),
                    ..PipelineConfig::new(OptMode::Full, 100)
                };
                compile(&w.program, &pc).elided_sites().len()
            })
            .sum();
        eprintln!("ablation {name}: {total} elided sites across the suite");
    }
    let mut group = c.benchmark_group("analysis_ablations");
    group.sample_size(10);
    for (name, cfg) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                for w in &suite {
                    let pc = PipelineConfig {
                        analysis_override: Some(*cfg),
                        ..PipelineConfig::new(OptMode::Full, 100)
                    };
                    std::hint::black_box(compile(&w.program, &pc).elided_sites().len());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
