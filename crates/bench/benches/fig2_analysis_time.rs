//! Benchmarks Figure 2's compile-time axis: inlining + analysis cost at
//! each inline limit and mode, across the whole suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wbe_opt::{compile, OptMode, PipelineConfig};
use wbe_workloads::standard_suite;

fn bench_fig2(c: &mut Criterion) {
    let suite = standard_suite();
    let mut group = c.benchmark_group("fig2_compile_time");
    group.sample_size(10);
    for limit in [0usize, 25, 50, 100, 200] {
        for mode in OptMode::ALL {
            let id = format!("limit{limit}_{}", mode.label());
            group.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(limit, mode),
                |b, &(limit, mode)| {
                    b.iter(|| {
                        for w in &suite {
                            let compiled = compile(&w.program, &PipelineConfig::new(mode, limit));
                            std::hint::black_box(compiled.elided_sites().len());
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
