//! Emits `BENCH_pr6.json`: the dynamic barrier-cost profiler's numbers
//! — per-keep-code execution/cycle attribution with suite headroom, the
//! per-phase GC pause percentiles, and the suite elision rate (which the
//! profiling layer rides alongside and must not change).
//!
//! Usage: `cargo run --release -p wbe-bench --bin bench_pr6 [-- <out.json>]`
//! (defaults to `BENCH_pr6.json` in the current directory).
//!
//! Four sections:
//!
//! * `suite` — the Table 1 dynamic elision percentage at the standard
//!   reduced scale, plus suite execution/cycle totals.
//! * `keep_codes` — suite-wide dynamic attribution: executions, cycles,
//!   and headroom (% of all charged barrier cycles recoverable if the
//!   code's sites became elidable), most expensive first.
//! * `workloads` — per-workload kept/elided executions and cycles with
//!   the top keep-code.
//! * `pauses` — per-phase pause percentiles (p50/p90/p99/max in
//!   deterministic work units) aggregated across the suite.

use std::fmt::Write as _;

use wbe_harness::baselines;
use wbe_harness::profile::{measure, ProfileOptions};

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr6.json".into());

    let profile = measure(&ProfileOptions::default()).expect("standard suite profiles");
    let suite = baselines::measure(baselines::SCALE);

    let mut json = String::from("{\n  \"bench\": \"pr6\",\n");
    let _ = writeln!(
        json,
        "  \"suite\": {{\"pct_barriers_elided\": {:.3}, \"barrier_executions\": {}, \"elided_executions\": {}, \"kept_executions\": {}, \"barrier_cycles\": {}, \"max_stw_pause\": {}}},",
        suite.pct_elided,
        profile.barrier_executions,
        profile.elided_executions,
        profile.kept_executions,
        profile.barrier_cycles,
        profile.max_stw_pause
    );
    json.push_str("  \"keep_codes\": [\n");
    for (i, c) in profile.keep_codes.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"code\": \"{}\", \"sites\": {}, \"executions\": {}, \"cycles\": {}, \"headroom_pct\": {:.3}}}{}",
            c.code,
            c.sites,
            c.executions,
            c.cycles,
            profile.headroom_pct(c),
            if i + 1 < profile.keep_codes.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n  \"workloads\": [\n");
    for (i, wp) in profile.workloads.iter().enumerate() {
        let top = wp.keep_codes.first().map(|c| c.code.as_str()).unwrap_or("");
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"barrier_executions\": {}, \"elided_executions\": {}, \"kept_executions\": {}, \"barrier_cycles\": {}, \"top_keep_code\": \"{top}\", \"max_stw_pause\": {}}}{}",
            wp.workload,
            wp.barrier_executions,
            wp.elided_executions,
            wp.kept_executions,
            wp.barrier_cycles,
            wp.max_stw_pause,
            if i + 1 < profile.workloads.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n  \"pauses\": [\n");
    for (i, ph) in profile.phases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{}\", \"stw\": {}, \"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}{}",
            ph.phase,
            ph.stw,
            ph.count,
            ph.p50,
            ph.p90,
            ph.p99,
            ph.max,
            if i + 1 < profile.phases.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("written to {out}");
}
