//! Emits `BENCH_pr5.json`: the observability layer's numbers — ledger
//! coverage and build cost per workload, plus the baseline quantities
//! the regression gate pins (the same measurement that seeds
//! `baselines/suite.ndjson` via `wbe_tool bench --check-baselines
//! --update`).
//!
//! Usage: `cargo run --release -p wbe-bench --bin bench_pr5 [-- <out.json>]`
//! (defaults to `BENCH_pr5.json` in the current directory).
//!
//! Three sections:
//!
//! * `suite` — the Table 1 dynamic barrier-elision percentage at the
//!   same reduced scale the other bench files use; the ledger rides
//!   alongside the analysis and must not change this number.
//! * `ledger` — per-workload record counts by verdict and the ledger
//!   build time (min of several runs; the provenance pass replays the
//!   same fixed point the judgment used, so this bounds its overhead).
//! * `baselines` — the per-workload static/dynamic quantities the
//!   committed baseline file gates on.

use std::fmt::Write as _;
use std::time::Duration;

use wbe_harness::baselines;
use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

const REPS: usize = 3;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr5.json".into());

    // Ledger coverage + build cost per workload.
    let mut ledger_rows = Vec::new();
    for w in &standard_suite() {
        let mut best = Duration::MAX;
        let mut ledger = None;
        for _ in 0..REPS {
            let start = std::time::Instant::now();
            let l = wbe_harness::ledger::build_ledger(&w.program, OptMode::Full, 100, false)
                .expect("full mode builds a ledger");
            best = best.min(start.elapsed());
            ledger = Some(l);
        }
        let l = ledger.unwrap();
        ledger_rows.push((
            w.name,
            l.records.len(),
            l.elided(),
            l.kept(),
            l.degraded(),
            best.as_micros(),
        ));
    }

    // Baseline quantities (also the source of baselines/suite.ndjson).
    let suite = baselines::measure(baselines::SCALE);

    let mut json = String::from("{\n  \"bench\": \"pr5\",\n");
    let _ = writeln!(
        json,
        "  \"suite\": {{\"pct_barriers_elided\": {:.3}}},",
        suite.pct_elided
    );
    json.push_str("  \"ledger\": [\n");
    for (i, (name, sites, elide, keep, degraded, us)) in ledger_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"sites\": {sites}, \"elide\": {elide}, \"keep\": {keep}, \"degraded\": {degraded}, \"build_us\": {us}}}{}",
            if i + 1 < ledger_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"baselines\": [\n");
    for (i, r) in suite.rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"static_sites\": {}, \"static_elided\": {}, \"dyn_total\": {}, \"dyn_elided\": {}, \"gc_cycles\": {}, \"max_pause_bucket\": {}}}{}",
            r.workload,
            r.static_sites,
            r.static_elided,
            r.dyn_total,
            r.dyn_elided,
            r.gc_cycles,
            r.max_pause_bucket,
            if i + 1 < suite.rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("written to {out}");
}
