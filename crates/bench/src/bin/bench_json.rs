//! Emits the PR's benchmark trajectory file (`BENCH_pr1.json`):
//! per-workload analysis time and dynamic barrier-elision rate, plus
//! suite aggregates.
//!
//! Usage: `cargo run -p wbe-bench --bin bench_json [-- <out.json>]`
//! (defaults to `BENCH_pr1.json` in the current directory).
//!
//! Analysis time is the minimum of several compile runs (inline limit
//! 100, mode A); the elision rate is the Table 1 dynamic percentage at
//! a reduced scale.

use std::fmt::Write as _;
use std::time::Duration;

use wbe_heap::gc::MarkStyle;
use wbe_interp::BarrierMode;
use wbe_opt::{compile, OptMode, PipelineConfig};
use wbe_workloads::standard_suite;

const REPS: usize = 3;
const SCALE: f64 = 0.1;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr1.json".into());
    let suite = standard_suite();
    let config = PipelineConfig::new(OptMode::Full, 100);

    let mut rows = Vec::new();
    let mut suite_analysis = Duration::ZERO;
    let mut suite_total = 0u64;
    let mut suite_elim = 0u64;
    for w in &suite {
        let analysis = (0..REPS)
            .map(|_| compile(&w.program, &config).analysis_time())
            .min()
            .unwrap_or_default();
        let iters = ((w.default_iters as f64 * SCALE) as i64).max(8);
        let run = wbe_harness::runner::run_workload(
            w,
            OptMode::Full,
            100,
            iters,
            BarrierMode::Checked,
            MarkStyle::Satb,
            None,
        );
        suite_analysis += analysis;
        suite_total += run.summary.total();
        suite_elim += run.summary.eliminated();
        rows.push((w.name, analysis, run.summary.pct_eliminated()));
    }
    let suite_pct = if suite_total == 0 {
        0.0
    } else {
        100.0 * suite_elim as f64 / suite_total as f64
    };

    let mut json = String::from("{\n  \"bench\": \"pr1\",\n  \"workloads\": [\n");
    for (i, (name, analysis, pct)) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{name}\", \"analysis_us\": {}, \"pct_barriers_elided\": {pct:.3}}}{}",
            analysis.as_micros(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"suite\": {{\"analysis_us\": {}, \"pct_barriers_elided\": {suite_pct:.3}}}\n}}\n",
        suite_analysis.as_micros()
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("written to {out}");
}
