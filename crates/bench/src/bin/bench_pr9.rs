//! Emits `BENCH_pr9.json`: the classic-vs-compiled engine matrix — the
//! direct-threaded engine's throughput against the classic switch
//! interpreter, per workload and mutator count, plus the barrier
//! overhead separation (kept vs elided vs barrier-free) and a GC-off
//! dispatch-only speedup that isolates the translation win from the
//! (engine-independent) collector work.
//!
//! Usage: `cargo run --release -p wbe-bench --bin bench_pr9 [-- <out.json>]`
//! (defaults to `BENCH_pr9.json` in the current directory).
//!
//! Measurement protocol: every (workload × mutators × engine) cell is
//! measured `REPS` times with the engines interleaved (classic,
//! compiled, classic, ...) and the best wall-clock kept, so machine
//! noise and load drift hit both engines symmetrically. Deterministic
//! facts (insns, allocs, GC cycles, digests) are asserted identical
//! across engines per cell — the differential-equivalence claim, run
//! again on the bench path.

use std::time::{Duration, Instant};

use wbe_harness::runner::compile_workload;
use wbe_harness::throughput::GC_POLICY;
use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, EngineKind, Value};
use wbe_opt::OptMode;
use wbe_workloads::Workload;

/// Interleaved repetitions per cell; best wall kept.
const REPS: usize = 7;
/// Per-mutator instruction budget for the matrix cells.
const MATRIX_OPS: u64 = 20_000_000;
/// Instruction budget for the GC-off dispatch measurement (kept
/// moderate: with the collector off the heap grows monotonically, so a
/// longer budget measures a different — ever larger — live store).
const DISPATCH_OPS: u64 = 10_000_000;

/// Deterministic facts of one cell run (per mutator; every mutator and
/// both engines must agree).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Facts {
    insns: u64,
    cycles: u64,
    barrier_cycles: u64,
    elided: u64,
    allocs: u64,
    gc_cycles: u64,
    digest: u64,
}

/// One timed multi-mutator run; returns (wall, per-mutator facts).
fn timed_run(
    kind: EngineKind,
    program: &wbe_ir::Program,
    config: &BarrierConfig,
    gc: bool,
    mutators: usize,
    w: &Workload,
    ops: u64,
) -> (Duration, Facts) {
    let chunk = (w.default_iters / 10).max(8);
    let start = Instant::now();
    let facts: Vec<Facts> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..mutators)
            .map(|_| {
                let config = config.clone();
                s.spawn(move || {
                    let mut engine = kind.build(program, config, MarkStyle::Satb);
                    if gc {
                        engine.set_gc_policy(GC_POLICY);
                    }
                    while engine.stats().insns < ops {
                        engine
                            .run(w.entry, &[Value::Int(chunk)], w.fuel_for(chunk))
                            .unwrap_or_else(|t| panic!("workload {} trapped: {t}", w.name));
                    }
                    let st = engine.stats();
                    Facts {
                        insns: st.insns,
                        cycles: st.cycles,
                        barrier_cycles: st.barrier_cycles,
                        elided: st.elided_executions,
                        allocs: engine.heap().stats.allocations,
                        gc_cycles: engine.heap().gc.stats.cycles,
                        digest: wbe_heap::debug::world_digest(engine.heap()),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    for f in &facts[1..] {
        assert_eq!(f, &facts[0], "{}: mutators diverged", w.name);
    }
    (wall, facts[0])
}

/// Best-of-`REPS` interleaved measurement of one cell for both engines.
/// Returns ((classic wall, facts), (compiled wall, facts)).
fn best_pair(
    program: &wbe_ir::Program,
    config: &BarrierConfig,
    gc: bool,
    mutators: usize,
    w: &Workload,
    ops: u64,
) -> ((Duration, Facts), (Duration, Facts)) {
    let mut best: [Option<(Duration, Facts)>; 2] = [None, None];
    for _ in 0..REPS {
        for (i, kind) in [EngineKind::Classic, EngineKind::Compiled]
            .into_iter()
            .enumerate()
        {
            let (wall, facts) = timed_run(kind, program, config, gc, mutators, w, ops);
            match &mut best[i] {
                Some((bw, bf)) => {
                    assert_eq!(*bf, facts, "{}: nondeterministic facts", w.name);
                    if wall < *bw {
                        *bw = wall;
                    }
                }
                None => best[i] = Some((wall, facts)),
            }
        }
    }
    let classic = best[0].expect("classic measured");
    let compiled = best[1].expect("compiled measured");
    assert_eq!(
        classic.1, compiled.1,
        "{}: engines disagree on deterministic facts",
        w.name
    );
    (classic, compiled)
}

fn ops_per_sec(insns: u64, mutators: usize, wall: Duration) -> f64 {
    (insns * mutators as u64) as f64 / wall.as_secs_f64().max(1e-9)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr9.json".into());

    let workloads = ["jess", "jbb"];
    let mut json = String::from("{\n  \"bench\": \"pr9\",\n");

    // Matrix: realistic configuration (checked barriers + elision +
    // deterministic GC policy), classic vs compiled, 1 and 4 mutators.
    json.push_str("  \"matrix\": [\n");
    let mut matrix_lines: Vec<String> = Vec::new();
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    for name in workloads {
        let w = wbe_workloads::by_name(name).expect("workload exists");
        let (compiled_w, elided) = compile_workload(&w, OptMode::Full, 100);
        let program = &compiled_w.program;
        let realistic = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
        for mutators in [1usize, 4] {
            let ((cw, cf), (pw, pf)) =
                best_pair(program, &realistic, true, mutators, &w, MATRIX_OPS);
            let c_ops = ops_per_sec(cf.insns, mutators, cw);
            let p_ops = ops_per_sec(pf.insns, mutators, pw);
            speedups.push((name.to_string(), mutators, p_ops / c_ops));
            for (engine, wall, f, ops) in [("classic", cw, cf, c_ops), ("compiled", pw, pf, p_ops)]
            {
                matrix_lines.push(format!(
                    "    {{\"workload\": \"{}\", \"mutators\": {}, \"engine\": \"{}\", \"ops_per_sec\": {:.0}, \"wall_ms\": {:.3}, \"insns\": {}, \"allocs\": {}, \"gc_cycles\": {}, \"elided\": {}, \"digest\": \"{:#018x}\"}}",
                    name, mutators, engine, ops,
                    wall.as_secs_f64() * 1e3,
                    f.insns, f.allocs, f.gc_cycles, f.elided, f.digest,
                ));
            }
        }
    }
    json.push_str(&matrix_lines.join(",\n"));
    json.push_str("\n  ],\n  \"speedup\": [\n");
    let speedup_lines: Vec<String> = speedups
        .iter()
        .map(|(w, m, s)| {
            format!("    {{\"workload\": \"{w}\", \"mutators\": {m}, \"compiled_over_classic\": {s:.3}}}")
        })
        .collect();
    json.push_str(&speedup_lines.join(",\n"));

    // Dispatch-only speedup: GC policy off, barrier-free — isolates
    // translation + direct threading from collector work shared by
    // both engines.
    json.push_str("\n  ],\n  \"dispatch\": [\n");
    let mut dispatch_lines: Vec<String> = Vec::new();
    for name in workloads {
        let w = wbe_workloads::by_name(name).expect("workload exists");
        let (compiled_w, _elided) = compile_workload(&w, OptMode::Full, 100);
        let program = &compiled_w.program;
        let none = BarrierConfig::new(BarrierMode::None);
        let ((cw, cf), (pw, pf)) = best_pair(program, &none, false, 1, &w, DISPATCH_OPS);
        let c_ops = ops_per_sec(cf.insns, 1, cw);
        let p_ops = ops_per_sec(pf.insns, 1, pw);
        dispatch_lines.push(format!(
            "    {{\"workload\": \"{}\", \"classic_mops\": {:.1}, \"compiled_mops\": {:.1}, \"speedup\": {:.3}}}",
            name,
            c_ops / 1e6,
            p_ops / 1e6,
            p_ops / c_ops,
        ));
    }
    json.push_str(&dispatch_lines.join(",\n"));

    // Barrier overhead separation under the compiled engine: wall-clock
    // of kept (always-log) and elided (always-log + analysis) builds
    // over the barrier-free build — the paper's Table 2 trio.
    json.push_str("\n  ],\n  \"overhead\": [\n");
    let mut overhead_lines: Vec<String> = Vec::new();
    for name in workloads {
        let w = wbe_workloads::by_name(name).expect("workload exists");
        let (compiled_w, elided) = compile_workload(&w, OptMode::Full, 100);
        let program = &compiled_w.program;
        let configs = [
            ("none", BarrierConfig::new(BarrierMode::None)),
            ("kept", BarrierConfig::new(BarrierMode::AlwaysLog)),
            (
                "elided",
                BarrierConfig::with_elision(BarrierMode::AlwaysLog, elided.clone()),
            ),
        ];
        for kind in [EngineKind::Classic, EngineKind::Compiled] {
            let mut walls: Vec<(&str, Duration, Facts)> = Vec::new();
            for _ in 0..REPS {
                for (label, config) in &configs {
                    let (wall, f) = timed_run(kind, program, config, false, 1, &w, DISPATCH_OPS);
                    match walls.iter_mut().find(|(l, _, _)| l == label) {
                        Some((_, best, bf)) => {
                            assert_eq!(*bf, f, "{name}: nondeterministic trio facts");
                            if wall < *best {
                                *best = wall;
                            }
                        }
                        None => walls.push((label, wall, f)),
                    }
                }
            }
            // Wall-clock percentages are informational (machine noise
            // swamps a single-digit effect); the cycle-model
            // percentages are the deterministic separation, in the same
            // abstract-cycle currency as the Table 2 harness.
            let base = walls[0].1.as_secs_f64().max(1e-9);
            let kept_wall_pct = (walls[1].1.as_secs_f64() - base) / base * 100.0;
            let elided_wall_pct = (walls[2].1.as_secs_f64() - base) / base * 100.0;
            let cycle_pct = |f: &Facts| {
                (f.cycles as f64 - walls[0].2.cycles as f64) / walls[0].2.cycles as f64 * 100.0
            };
            let kept_cycles_pct = cycle_pct(&walls[1].2);
            let elided_cycles_pct = cycle_pct(&walls[2].2);
            assert!(
                kept_cycles_pct > elided_cycles_pct && elided_cycles_pct >= 0.0,
                "{name}/{}: cycle-model overhead must separate kept > elided >= none \
                 (kept {kept_cycles_pct:.3}%, elided {elided_cycles_pct:.3}%)",
                kind.name(),
            );
            overhead_lines.push(format!(
                "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"kept_cycles_pct\": {:.3}, \"elided_cycles_pct\": {:.3}, \"kept_wall_pct\": {:.2}, \"elided_wall_pct\": {:.2}}}",
                name,
                kind.name(),
                kept_cycles_pct,
                elided_cycles_pct,
                kept_wall_pct,
                elided_wall_pct,
            ));
        }
    }
    json.push_str(&overhead_lines.join(",\n"));
    json.push_str("\n  ]\n}\n");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("written to {out}");
}
