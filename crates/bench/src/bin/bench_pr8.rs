//! Emits `BENCH_pr8.json`: the GC-aware overload-protection numbers —
//! the pressure ladder under a light and an overloaded serve world for
//! each request mix, with per-request latency percentiles, shed rates,
//! ladder-rung entry counts, and the suite elision rate (which the
//! server family rides alongside and must not change).
//!
//! Usage: `cargo run --release -p wbe-bench --bin bench_pr8 [-- <out.json>]`
//! (defaults to `BENCH_pr8.json` in the current directory).
//!
//! Two sections:
//!
//! * `suite` — the Table 1 dynamic elision percentage at the standard
//!   reduced scale (the invariant the server family must not move).
//! * `serve` — one entry per (mix, load) pair: request accounting,
//!   latency percentiles in scheduler steps, ladder entries per rung,
//!   emergency STW count, and the run's determinism digest.

use std::fmt::Write as _;

use wbe_harness::baselines;
use wbe_harness::serve::{run_serve_cmd, ServeOptions};
use wbe_heap::ServeScenario;

fn scenario(mix: ServeScenario, overloaded: bool) -> ServeOptions {
    if overloaded {
        ServeOptions {
            mix,
            requests: 2000,
            arrivals_per_window: 6,
            request_ops: 8,
            heap_budget: 220,
            ..ServeOptions::default()
        }
    } else {
        ServeOptions {
            mix,
            heap_budget: 1_000_000,
            ..ServeOptions::default()
        }
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr8.json".into());

    let suite = baselines::measure(baselines::SCALE);
    let mut json = String::from("{\n  \"bench\": \"pr8\",\n");
    let _ = writeln!(
        json,
        "  \"suite\": {{\"pct_barriers_elided\": {:.3}}},",
        suite.pct_elided
    );
    json.push_str("  \"serve\": [\n");
    let cases: Vec<(ServeScenario, bool)> = ServeScenario::ALL
        .into_iter()
        .flat_map(|mix| [(mix, false), (mix, true)])
        .collect();
    for (i, &(mix, overloaded)) in cases.iter().enumerate() {
        let r = run_serve_cmd(&scenario(mix, overloaded));
        assert!(
            r.outcome.violations.is_empty(),
            "serve {mix} soundness violation"
        );
        let c = &r.outcome.counters;
        let p = &r.outcome.pressure;
        let _ = writeln!(
            json,
            "    {{\"mix\": \"{}\", \"load\": \"{}\", \"offered\": {}, \"admitted\": {}, \"shed\": {}, \"completed\": {}, \"shed_pct\": {:.3}, \"latency_p50\": {}, \"latency_p90\": {}, \"latency_p99\": {}, \"latency_max\": {}, \"stw_overlapped\": {}, \"gc_cycles\": {}, \"emergency_stw\": {}, \"pace_entries\": {}, \"throttle_entries\": {}, \"shed_entries\": {}, \"emergency_entries\": {}, \"step_downs\": {}, \"high_water\": \"{}\", \"exit_code\": {}, \"digest\": \"{:#018x}\"}}{}",
            mix.name(),
            if overloaded { "overloaded" } else { "light" },
            c.offered,
            c.admitted,
            c.shed,
            c.completed,
            r.shed_pct,
            r.latency.p50,
            r.latency.p90,
            r.latency.p99,
            r.latency.max,
            c.stw_overlapped,
            c.cycles,
            c.emergency_stw,
            p.pace_entries,
            p.throttle_entries,
            p.shed_entries,
            p.emergency_entries,
            p.step_downs,
            r.outcome.high_water.name(),
            r.exit_code,
            r.outcome.digest(),
            if i + 1 < cases.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("written to {out}");
}
