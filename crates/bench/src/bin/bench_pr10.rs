//! Emits `BENCH_pr10.json`: the barrier-necessity oracle's headline
//! numbers — the suite-wide dynamic-upper-bound elision rate against
//! the frozen static 25.770%, per-workload necessity rates, the
//! cross-engine byte-identity check on the oracle's NDJSON, and the
//! runtime overhead of running with the oracle enabled (witness
//! side-table + per-enqueue classification) versus off.
//!
//! Usage: `cargo run --release -p wbe-bench --bin bench_pr10 [-- <out.json>]`
//! (defaults to `BENCH_pr10.json` in the current directory).
//!
//! Measurement protocol: the oracle measurement itself is fully
//! deterministic (same numbers every run, both engines). The overhead
//! cells are wall-clock and measured `REPS` times with oracle-off and
//! oracle-on interleaved, best kept, so load drift hits both sides
//! symmetrically.

use std::time::{Duration, Instant};

use wbe_harness::oracle::{measure, to_ndjson, OracleOptions, STATIC_ELISION_PCT};
use wbe_harness::runner::compile_workload;
use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, EngineKind, GcPolicy, Value};
use wbe_opt::OptMode;

/// Interleaved repetitions per overhead cell; best wall kept.
const REPS: usize = 5;

/// One timed run in the oracle's exact configuration, toggling only
/// the oracle itself.
fn timed_run(kind: EngineKind, name: &str, oracle: bool) -> Duration {
    let w = wbe_workloads::by_name(name).expect("workload exists");
    let (compiled, elided) = compile_workload(&w, OptMode::Full, 100);
    let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided);
    let mut eng = kind.build(&compiled.program, bc, MarkStyle::Satb);
    eng.set_oracle(oracle);
    eng.set_gc_policy(GcPolicy {
        alloc_trigger: 400,
        step_interval: 32,
        step_budget: 4,
    });
    let iters = w.default_iters;
    let start = Instant::now();
    eng.run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
        .unwrap_or_else(|t| panic!("workload {name} trapped: {t}"));
    start.elapsed()
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".into());

    // The oracle suite, both engines; NDJSON must be byte-identical.
    let classic = measure(&OracleOptions::default()).expect("classic oracle run");
    let compiled = measure(&OracleOptions {
        engine: EngineKind::Compiled,
        ..OracleOptions::default()
    })
    .expect("compiled oracle run");
    let classic_nd = to_ndjson(&classic);
    let compiled_nd = to_ndjson(&compiled);
    assert_eq!(
        classic_nd, compiled_nd,
        "oracle NDJSON must be engine-independent"
    );

    let mut json = String::from("{\n  \"bench\": \"pr10\",\n  \"workloads\": [\n");
    let rows: Vec<String> = classic
        .workloads
        .iter()
        .map(|w| {
            format!(
                "    {{\"workload\": \"{}\", \"headline\": {}, \"total_executions\": {}, \"elided_executions\": {}, \"kept_executions\": {}, \"necessary_executions\": {}, \"never_necessary_sites\": {}, \"never_necessary_executions\": {}, \"cycles_audited\": {}, \"escaped_objects\": {}, \"allocated_objects\": {}}}",
                w.workload,
                w.headline,
                w.total_executions,
                w.elided_executions,
                w.kept_executions,
                w.necessary_executions,
                w.never_necessary_sites,
                w.never_necessary_executions,
                w.cycles_audited,
                w.escaped_objects,
                w.allocated_objects,
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        "  \"suite\": {{\"static_elision_pct\": {:.3}, \"frozen_static_pct\": {STATIC_ELISION_PCT:.3}, \"dynamic_upper_bound_pct\": {:.3}, \"headroom_points\": {:.3}, \"never_necessary_sites\": {}, \"worklist_top\": {}}},\n",
        classic.static_rate(),
        classic.dynamic_rate(),
        classic.headroom_points(),
        classic.never_necessary_sites,
        classic.worklist.len(),
    ));
    json.push_str(&format!(
        "  \"engine_independence\": {{\"classic_ndjson_bytes\": {}, \"compiled_ndjson_bytes\": {}, \"identical\": true}},\n",
        classic_nd.len(),
        compiled_nd.len(),
    ));

    // Oracle overhead: full-iteration runs, oracle off vs on.
    json.push_str("  \"overhead\": [\n");
    let mut cells: Vec<String> = Vec::new();
    for name in ["jess", "jbb"] {
        for kind in [EngineKind::Classic, EngineKind::Compiled] {
            let mut best: [Option<Duration>; 2] = [None, None];
            for _ in 0..REPS {
                for (i, oracle) in [false, true].into_iter().enumerate() {
                    let wall = timed_run(kind, name, oracle);
                    best[i] = Some(best[i].map_or(wall, |b| b.min(wall)));
                }
            }
            let (off, on) = (best[0].unwrap(), best[1].unwrap());
            cells.push(format!(
                "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"oracle_off_ms\": {:.3}, \"oracle_on_ms\": {:.3}, \"overhead_pct\": {:.2}}}",
                name,
                kind.name(),
                off.as_secs_f64() * 1e3,
                on.as_secs_f64() * 1e3,
                100.0 * (on.as_secs_f64() / off.as_secs_f64().max(1e-9) - 1.0),
            ));
        }
    }
    json.push_str(&cells.join(",\n"));
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("{json}");
    eprintln!("wrote {out}");
}
