//! Emits `BENCH_pr3.json`: evidence that the concurrency layer leaves
//! the paper's headline numbers untouched, plus model-checker
//! throughput.
//!
//! Usage: `cargo run --release -p wbe-bench --bin bench_pr3 [-- <out.json>]`
//! (defaults to `BENCH_pr3.json` in the current directory).
//!
//! Three sections:
//!
//! * `suite` — the Table 1 dynamic barrier-elision percentage at the
//!   same reduced scale `bench_json` uses; compile-time elision does
//!   not depend on mutator count, so this must match the seed's value.
//! * `mcheck` — per-mutator-count scheduler accounting over the stock
//!   scenarios: elided-store executions vs. gated (full-barrier)
//!   executions, and schedules explored per second. The elided share
//!   stays high at 4 mutators because gating only applies in the short
//!   arm-to-ack window of each cycle.
//! * `savings` — dynamic barrier-cost savings (checked barriers billed
//!   at the interpreter's barrier cycle cost) for the suite, unchanged
//!   from the seed's accounting.

use std::fmt::Write as _;
use std::time::Instant;

use wbe_heap::gc::MarkStyle;
use wbe_heap::mcheck::run_mcheck;
use wbe_heap::{CheckerConfig, Scenario, SchedConfig};
use wbe_interp::BarrierMode;
use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

const SCALE: f64 = 0.1;
const SCHEDULES_PER_SCENARIO: u64 = 60;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr3.json".into());

    // Suite elision rate + barrier-cost savings (same harness as the
    // seed's Table 1 path).
    let mut total = 0u64;
    let mut elim = 0u64;
    let mut barrier_cycles_checked = 0u64;
    let mut barrier_cycles_elided = 0u64;
    for w in &standard_suite() {
        let iters = ((w.default_iters as f64 * SCALE) as i64).max(8);
        let base = wbe_harness::runner::run_workload(
            w,
            OptMode::Baseline,
            100,
            iters,
            BarrierMode::Checked,
            MarkStyle::Satb,
            None,
        );
        let run = wbe_harness::runner::run_workload(
            w,
            OptMode::Full,
            100,
            iters,
            BarrierMode::Checked,
            MarkStyle::Satb,
            None,
        );
        total += run.summary.total();
        elim += run.summary.eliminated();
        barrier_cycles_checked += base.stats.barrier_cycles;
        barrier_cycles_elided += run.stats.barrier_cycles;
    }
    let suite_pct = if total == 0 {
        0.0
    } else {
        100.0 * elim as f64 / total as f64
    };
    let savings_pct = if barrier_cycles_checked == 0 {
        0.0
    } else {
        100.0 * (barrier_cycles_checked - barrier_cycles_elided) as f64
            / barrier_cycles_checked as f64
    };

    // Scheduler accounting under 1 vs 4 mutators, stock scenarios.
    let mut mcheck_rows = Vec::new();
    for mutators in [1usize, 4] {
        let start = Instant::now();
        let mut explored = 0u64;
        let mut elided = 0u64;
        let mut gated = 0u64;
        let mut cycles = 0u64;
        for scenario in Scenario::ALL {
            let report = run_mcheck(&CheckerConfig {
                sched: SchedConfig {
                    threads: mutators,
                    scenario,
                    ..SchedConfig::default()
                },
                schedules: SCHEDULES_PER_SCENARIO,
                seed: 1,
                ..CheckerConfig::default()
            });
            assert!(report.sound(), "stock scenarios must be sound");
            explored += report.explored;
            elided += report.totals.elided_stores;
            gated += report.totals.gated_elisions;
            cycles += report.cycles;
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let pct_elided_execs = if elided + gated == 0 {
            0.0
        } else {
            100.0 * elided as f64 / (elided + gated) as f64
        };
        mcheck_rows.push((
            mutators,
            explored,
            cycles,
            pct_elided_execs,
            explored as f64 / secs,
        ));
    }

    let mut json = String::from("{\n  \"bench\": \"pr3\",\n");
    let _ = writeln!(
        json,
        "  \"suite\": {{\"pct_barriers_elided\": {suite_pct:.3}, \"pct_barrier_cycles_saved\": {savings_pct:.3}}},"
    );
    json.push_str("  \"mcheck\": [\n");
    for (i, (mutators, explored, cycles, pct, sps)) in mcheck_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"mutators\": {mutators}, \"schedules\": {explored}, \"gc_cycles\": {cycles}, \"pct_elided_site_executions\": {pct:.3}, \"schedules_per_sec\": {sps:.0}}}{}",
            if i + 1 < mcheck_rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("written to {out}");
}
