//! Criterion benchmarks regenerating the paper's tables/figures under
//! the bench harness, plus ablation benches for the design choices
//! DESIGN.md calls out. The headline experiment *numbers* come from the
//! `experiments` binary in `wbe-harness`; these benches measure the
//! *costs* (analysis time, interpretation throughput, pause work).
