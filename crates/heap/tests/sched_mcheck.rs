//! Integration tests for the deterministic scheduler + interleaving
//! model checker, driven purely through the crate's public API (what
//! `wbe_tool mcheck` uses).

use wbe_heap::mcheck::{replay_seed, run_mcheck};
use wbe_heap::sched::run_schedule;
use wbe_heap::{CheckerConfig, FaultConfig, Replay, Scenario, SchedConfig, SchedulePolicy};

fn stock(threads: usize, scenario: Scenario) -> SchedConfig {
    SchedConfig {
        threads,
        ops_per_thread: 24,
        scenario,
        ..SchedConfig::default()
    }
}

/// Acceptance shape: four mutators, stock workloads, many random
/// schedules — every one sound, across all three scenarios.
#[test]
fn four_mutators_stock_scenarios_are_sound() {
    for scenario in Scenario::ALL {
        let report = run_mcheck(&CheckerConfig {
            sched: stock(4, scenario),
            schedules: 40,
            seed: 1,
            ..CheckerConfig::default()
        });
        assert!(report.sound(), "{scenario}: {:?}", report.failures);
        assert_eq!(report.explored, 40);
        assert!(report.cycles > 0, "{scenario}: marking cycles must run");
        assert!(
            report.totals.elided_stores > 0,
            "{scenario}: elided pre-null stores must execute"
        );
    }
}

/// Fault injection composes with the scheduler: allocation failures,
/// skipped mark steps, and drain pressure shift every cycle's timing
/// but never break the snapshot guarantee.
#[test]
fn fault_plans_compose_soundly_across_seeds() {
    for fault_seed in [7u64, 99, 1234] {
        let report = run_mcheck(&CheckerConfig {
            sched: SchedConfig {
                fault: Some(FaultConfig::from_seed(fault_seed)),
                ..stock(3, Scenario::Churn)
            },
            schedules: 25,
            seed: fault_seed,
            ..CheckerConfig::default()
        });
        assert!(
            report.sound(),
            "fault seed {fault_seed}: {:?}",
            report.failures
        );
    }
}

/// The negative control end to end: random exploration finds the
/// deliberately-unsound elision, the failure carries a seed handle,
/// and replaying that seed reproduces the identical trace digest.
#[test]
fn demo_unsound_failure_replays_to_the_same_digest() {
    let sched = SchedConfig {
        demo_unsound: true,
        ..stock(2, Scenario::Churn)
    };
    let report = run_mcheck(&CheckerConfig {
        sched: sched.clone(),
        schedules: 300,
        seed: 1,
        ..CheckerConfig::default()
    });
    assert!(!report.sound(), "negative control must be caught");
    let failure = &report.failures[0];
    let Replay::Seed(seed) = failure.replay else {
        panic!("random exploration hands back seeds");
    };
    let replay = replay_seed(&sched, seed);
    assert_eq!(replay.digest(), failure.digest, "replay is bit-identical");
    assert_eq!(replay.violations.len(), failure.violations.len());
}

/// Systematic exploration replays through the scripted policy: the
/// failing prefix drives the scheduler to the same digest.
#[test]
fn systematic_failure_prefix_is_replayable() {
    let sched = SchedConfig {
        ops_per_thread: 16,
        demo_unsound: true,
        ..stock(2, Scenario::Churn)
    };
    let report = run_mcheck(&CheckerConfig {
        sched: sched.clone(),
        schedules: 400,
        seed: 1,
        systematic: true,
        preempt_bound: 2,
        ..CheckerConfig::default()
    });
    assert!(!report.sound(), "bounded search must find the lost object");
    let failure = &report.failures[0];
    let Replay::Prefix(prefix) = &failure.replay else {
        panic!("systematic exploration hands back prefixes");
    };
    let replay = run_schedule(
        &sched,
        &SchedulePolicy::Scripted {
            prefix: prefix.clone(),
        },
    );
    assert_eq!(replay.digest(), failure.digest, "prefix replay identical");
}

/// The per-schedule seed stream is itself deterministic: two checker
/// runs with the same base seed explore the same schedules and land on
/// identical aggregate counters.
#[test]
fn checker_runs_are_reproducible_end_to_end() {
    let cfg = CheckerConfig {
        sched: stock(3, Scenario::Shared),
        schedules: 30,
        seed: 42,
        ..CheckerConfig::default()
    };
    let a = run_mcheck(&cfg);
    let b = run_mcheck(&cfg);
    assert_eq!(a.explored, b.explored);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.totals, b.totals);
}
