//! Property tests on the collectors: under arbitrary mutation traces
//! with correct barriers, SATB preserves its snapshot and neither
//! collector ever frees a reachable object.

use proptest::prelude::*;

use wbe_heap::gc::MarkStyle;
use wbe_heap::{FieldShape, GcRef, Heap, Value};

const POOL: usize = 6;
const FIELDS: usize = 2;

/// One mutation step over a pool of root-reachable slots.
#[derive(Clone, Debug)]
enum Op {
    /// Allocate into pool slot `dst`.
    Alloc { dst: usize },
    /// `pool[a].f = pool[b]` with the style-appropriate barrier.
    Link { a: usize, f: usize, b: usize },
    /// `pool[a].f = null` with the barrier.
    Unlink { a: usize, f: usize },
    /// Drop the pool's reference (object may become garbage).
    Forget { dst: usize },
    /// Give the collector a slice of work.
    MarkStep { budget: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let s = 0..POOL;
    let f = 0..FIELDS;
    prop_oneof![
        s.clone().prop_map(|dst| Op::Alloc { dst }),
        (s.clone(), f.clone(), s.clone()).prop_map(|(a, f, b)| Op::Link { a, f, b }),
        (s.clone(), f).prop_map(|(a, f)| Op::Unlink { a, f }),
        s.prop_map(|dst| Op::Forget { dst }),
        (1u8..6).prop_map(|budget| Op::MarkStep { budget }),
    ]
}

/// Computes the concretely reachable set from the pool.
fn reachable(heap: &Heap, pool: &[Option<GcRef>]) -> std::collections::BTreeSet<GcRef> {
    let mut seen = std::collections::BTreeSet::new();
    let mut work: Vec<GcRef> = pool.iter().flatten().copied().collect();
    while let Some(r) = work.pop() {
        if !seen.insert(r) {
            continue;
        }
        if let Ok(obj) = heap.store.get(r) {
            work.extend(obj.outgoing_refs());
        }
    }
    seen
}

fn run_trace(style: MarkStyle, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut heap = Heap::new(style);
    let mut pool: Vec<Option<GcRef>> = vec![None; POOL];
    // Start a few objects and begin marking immediately so the barriers
    // matter from the first mutation.
    for slot in pool.iter_mut().take(3) {
        *slot = Some(heap.alloc_object(0, &[FieldShape::Ref; FIELDS]).unwrap());
    }
    // Snapshot (for SATB): everything reachable at begin_marking.
    let roots: Vec<GcRef> = pool.iter().flatten().copied().collect();
    let snapshot = reachable(&heap, &pool);
    heap.gc.begin_marking(&mut heap.store, &roots);

    for op in ops {
        match *op {
            Op::Alloc { dst } => {
                pool[dst] = Some(heap.alloc_object(0, &[FieldShape::Ref; FIELDS]).unwrap());
            }
            Op::Link { a, f, b } => {
                let (Some(ra), vb) = (pool[a], pool[b]) else {
                    continue;
                };
                let old = heap.get_field(ra, f).unwrap();
                match style {
                    MarkStyle::Satb => {
                        if let Value::Ref(Some(o)) = old {
                            heap.gc.satb_log(o);
                        }
                    }
                    MarkStyle::IncrementalUpdate => heap.gc.dirty(ra),
                }
                heap.set_field(ra, f, Value::Ref(vb)).unwrap();
            }
            Op::Unlink { a, f } => {
                let Some(ra) = pool[a] else { continue };
                let old = heap.get_field(ra, f).unwrap();
                match style {
                    MarkStyle::Satb => {
                        if let Value::Ref(Some(o)) = old {
                            heap.gc.satb_log(o);
                        }
                    }
                    MarkStyle::IncrementalUpdate => heap.gc.dirty(ra),
                }
                heap.set_field(ra, f, Value::NULL).unwrap();
            }
            Op::Forget { dst } => {
                pool[dst] = None;
            }
            Op::MarkStep { budget } => {
                let _ = heap.gc.mark_step(&mut heap.store, budget as usize);
            }
        }
    }

    let final_roots: Vec<GcRef> = pool.iter().flatten().copied().collect();
    let live_now = reachable(&heap, &pool);
    heap.gc.remark(&mut heap.store, &final_roots);

    // Everything reachable right now must be marked (never collected),
    // for both styles.
    for r in &live_now {
        prop_assert!(
            heap.gc.is_marked(*r),
            "live object {r} unmarked under {style:?}"
        );
    }
    // SATB additionally preserves its snapshot: every object reachable
    // at begin_marking stays marked even if since unlinked.
    if style == MarkStyle::Satb {
        for r in &snapshot {
            prop_assert!(heap.gc.is_marked(*r), "snapshot object {r} lost");
        }
    }
    // Sweeping must leave every currently-reachable object alive.
    heap.sweep();
    for r in &live_now {
        prop_assert!(heap.store.is_live(*r), "sweep freed live object {r}");
    }
    Ok(())
}

proptest! {
    #[test]
    fn satb_preserves_snapshot_and_liveness(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        run_trace(MarkStyle::Satb, &ops)?;
    }

    #[test]
    fn incremental_update_preserves_liveness(
        ops in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        run_trace(MarkStyle::IncrementalUpdate, &ops)?;
    }
}
