//! Multi-mutator stress over the threaded SATB safepoint protocol, and
//! the schedule-determinism contract of the deterministic scheduler.
//!
//! The real-thread half exercises [`wbe_heap::threaded`]: several
//! mutator threads allocate, link, and unlink through per-thread SATB
//! buffers with periodic safepoint polls while the marker races them;
//! the snapshot and all still-reachable objects must survive the
//! stop-the-world remark + sweep. The deterministic half pins the
//! replay guarantee the model checker rests on: the same seed yields a
//! bit-identical schedule digest and identical telemetry counters.

use std::sync::Arc;

use parking_lot::Mutex;
use wbe_heap::gc::MarkStyle;
use wbe_heap::sched::run_schedule;
use wbe_heap::threaded::{ConcurrentCycle, SafepointCtl};
use wbe_heap::{debug, FieldShape, GcRef, Heap, Scenario, SchedConfig, SchedulePolicy, Value};

#[test]
fn multiple_mutators_with_safepoint_protocol_preserve_the_snapshot() {
    let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
    const THREADS: usize = 4;
    const OPS: usize = 300;
    const POLL_EVERY: usize = 16;

    // Per-thread chains rooted in a shared array.
    let (root_arr, heads) = {
        let mut h = heap.lock();
        let arr = h.alloc_ref_array(0, THREADS as i64).unwrap();
        let mut heads = Vec::new();
        for t in 0..THREADS {
            let head = h.alloc_object(1, &[FieldShape::Ref]).unwrap();
            h.set_elem(arr, t as i64, Some(head)).unwrap();
            heads.push(head);
        }
        (arr, heads)
    };
    let snapshot: Vec<GcRef> = heads.clone();

    let ctl = SafepointCtl::new(THREADS);
    let handles: Vec<_> = (0..THREADS).map(|_| ctl.register()).collect();

    let cycle = ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root_arr], 3)
        .expect("no cycle in progress");

    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut handle| {
            let heap = Arc::clone(&heap);
            let mut cur = heads[handle.tid()];
            std::thread::spawn(move || {
                for i in 0..OPS {
                    if i % POLL_EVERY == 0 {
                        // Periodic safepoint poll: ack pending epochs,
                        // flush the SATB buffer.
                        handle.safepoint(&heap).unwrap();
                    }
                    let mut h = heap.lock();
                    let n = h.alloc_object(2, &[FieldShape::Ref]).unwrap();
                    // cur.f0 = n, via the per-thread SATB barrier.
                    if let Value::Ref(Some(old)) = h.get_field(cur, 0).unwrap() {
                        handle.barrier_log(&h, old);
                    }
                    h.set_field(cur, 0, Value::from(n)).unwrap();
                    if i % 3 == 0 {
                        cur = n; // extend the chain
                    }
                    // (else: next store unlinks n again — barrier logged)
                }
                handle.retire(&heap);
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let before = debug::graph_stats(&heap.lock(), &[root_arr]);
    let report = cycle.finish(&[root_arr]).unwrap();
    assert!(report.cycle_ran, "all four mutators acked the epoch");
    let h = heap.lock();
    // Snapshot objects (the chain heads) all marked.
    for s in &snapshot {
        assert!(h.gc.is_marked(*s), "snapshot head lost");
    }
    // The in-rendezvous sweep kept every reachable object.
    let after = debug::graph_stats(&h, &[root_arr]);
    assert!(after.reachable > THREADS);
    assert_eq!(before.reachable, after.reachable, "sweep ate a live object");
    assert!(report.concurrent_units > 0 || report.pause.work_units() > 0);

    // Protocol accounting: every thread acked once, and the buffered
    // barriers reached the collector via flushes.
    let c = ctl.counters();
    assert_eq!(c.acks, THREADS as u64);
    assert!(c.flushes >= THREADS as u64);
    assert!(c.flushed_entries > 0, "barriers flowed through buffers");
}

#[test]
fn incremental_update_threaded_cycle_also_sound() {
    let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::IncrementalUpdate)));
    let ctl = SafepointCtl::new(0);
    let root = {
        let mut h = heap.lock();
        h.alloc_object(0, &[FieldShape::Ref]).unwrap()
    };
    let cycle =
        ConcurrentCycle::start(Arc::clone(&heap), ctl, &[root], 2).expect("no cycle in progress");
    let mut cur = root;
    for _ in 0..200 {
        let mut h = heap.lock();
        let n = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.gc.dirty(cur);
        h.set_field(cur, 0, Value::from(n)).unwrap();
        cur = n;
    }
    let report = cycle.finish(&[root]).unwrap();
    assert!(report.cycle_ran);
    let h = heap.lock();
    assert_eq!(debug::graph_stats(&h, &[root]).reachable, 201);
}

/// Satellite: schedule determinism. The same seed must reproduce a
/// bit-identical schedule digest and identical counters — including
/// the counters the run publishes into the global telemetry registry —
/// across two independent runs. This is the property that makes a
/// failing model-checker schedule replayable.
#[test]
fn same_seed_gives_identical_digest_and_telemetry_counters() {
    let cfg = SchedConfig {
        threads: 3,
        ops_per_thread: 60,
        scenario: Scenario::Shared,
        ..SchedConfig::default()
    };
    let run = |seed: u64| {
        let before = wbe_telemetry::registry::global().snapshot();
        let outcome = run_schedule(&cfg, &SchedulePolicy::Random { seed });
        let after = wbe_telemetry::registry::global().snapshot();
        let mut deltas: Vec<(String, u64)> = after
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("sched."))
            .map(|(name, value)| {
                let prev = before.counter(name).unwrap_or(0);
                (name.clone(), value - prev)
            })
            .collect();
        deltas.sort();
        (outcome, deltas)
    };

    let (a, da) = run(0xfeed);
    let (b, db) = run(0xfeed);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(
        a.digest(),
        b.digest(),
        "schedule digest must be bit-identical"
    );
    assert_eq!(a.trace, b.trace, "step-by-step schedule identical");
    assert_eq!(a.counters, b.counters, "all counters identical");
    assert_eq!(da, db, "published telemetry deltas identical");

    // And a different seed takes a different schedule (sanity that the
    // digest actually discriminates).
    let (c, _) = run(0xbeef);
    assert_ne!(a.digest(), c.digest());
}
