//! Multi-mutator stress over the threaded concurrent marker: several
//! threads allocate, link, and unlink (with SATB barriers) while the
//! marker races them; the snapshot and all still-reachable objects must
//! survive.

use std::sync::Arc;

use parking_lot::Mutex;
use wbe_heap::gc::MarkStyle;
use wbe_heap::threaded::ConcurrentCycle;
use wbe_heap::{debug, FieldShape, GcRef, Heap, Value};

#[test]
fn multiple_mutators_with_barriers_preserve_the_snapshot() {
    let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
    const THREADS: usize = 4;
    const OPS: usize = 300;

    // Per-thread chains rooted in a shared array.
    let (root_arr, heads) = {
        let mut h = heap.lock();
        let arr = h.alloc_ref_array(0, THREADS as i64).unwrap();
        let mut heads = Vec::new();
        for t in 0..THREADS {
            let head = h.alloc_object(1, &[FieldShape::Ref]).unwrap();
            h.set_elem(arr, t as i64, Some(head)).unwrap();
            heads.push(head);
        }
        (arr, heads)
    };
    let snapshot: Vec<GcRef> = heads.clone();

    let cycle = ConcurrentCycle::start(Arc::clone(&heap), &[root_arr], 3);

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let heap = Arc::clone(&heap);
            let mut cur = heads[t];
            std::thread::spawn(move || {
                for i in 0..OPS {
                    let mut h = heap.lock();
                    let n = h.alloc_object(2, &[FieldShape::Ref]).unwrap();
                    // cur.f0 = n, with the SATB barrier.
                    if let Value::Ref(Some(old)) = h.get_field(cur, 0).unwrap() {
                        h.gc.satb_log(old);
                    }
                    h.set_field(cur, 0, Value::from(n)).unwrap();
                    if i % 3 == 0 {
                        cur = n; // extend the chain
                    }
                    // (else: next store unlinks n again — barrier logged)
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let (pause, concurrent) = cycle.finish(&[root_arr]);
    let h = heap.lock();
    // Snapshot objects (the chain heads) all marked.
    for s in &snapshot {
        assert!(h.gc.is_marked(*s), "snapshot head lost");
    }
    // Everything reachable right now is marked.
    let stats = debug::graph_stats(&h, &[root_arr]);
    assert!(stats.reachable > THREADS);
    assert!(concurrent > 0 || pause.work_units() > 0);
    drop(h);

    // Sweep and verify reachable set survives intact.
    let mut h = heap.lock();
    let before = debug::graph_stats(&h, &[root_arr]);
    let h2 = &mut *h;
    h2.gc.sweep(&mut h2.store);
    let after = debug::graph_stats(&h, &[root_arr]);
    assert_eq!(before.reachable, after.reachable, "sweep ate a live object");
}

#[test]
fn incremental_update_threaded_cycle_also_sound() {
    let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::IncrementalUpdate)));
    let root = {
        let mut h = heap.lock();
        h.alloc_object(0, &[FieldShape::Ref]).unwrap()
    };
    let cycle = ConcurrentCycle::start(Arc::clone(&heap), &[root], 2);
    let mut cur = root;
    for _ in 0..200 {
        let mut h = heap.lock();
        let n = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.gc.dirty(cur);
        h.set_field(cur, 0, Value::from(n)).unwrap();
        cur = n;
    }
    let (_pause, _units) = cycle.finish(&[root]);
    let mut h = heap.lock();
    let before = debug::graph_stats(&h, &[root]).reachable;
    let h2 = &mut *h;
    h2.gc.sweep(&mut h2.store);
    assert_eq!(debug::graph_stats(&h, &[root]).reachable, before);
    assert_eq!(before, 201);
}
