//! Real-thread concurrent marking with the SATB safepoint protocol.
//!
//! The stepped mode in [`crate::gc`] is deterministic and is what the
//! tests and experiments use; the exhaustive interleaving exploration
//! lives in [`crate::sched`] / [`crate::mcheck`]. This module provides
//! the "actually concurrent" flavor for demos, speaking the same
//! protocol as the deterministic scheduler:
//!
//! * each mutator thread owns a [`MutatorHandle`] with a **per-thread
//!   SATB buffer** ([`SatbBuffer`]): barriers append locally and the
//!   buffer drains into the collector only at **safepoint polls**
//!   ([`MutatorHandle::safepoint`]);
//! * a cycle start **arms an epoch**; the snapshot (`begin_marking`) is
//!   taken only after every registered mutator has acknowledged the
//!   epoch at a safepoint, and an un-acknowledged thread must not run
//!   statically-elided code ([`MutatorHandle::elide_allowed`]);
//! * [`ConcurrentCycle::finish`] runs a **stop-the-world rendezvous**:
//!   mutators flush and park at their next poll, and the remark + sweep
//!   execute with the world stopped.
//!
//! Heap accesses still share one [`Mutex`] — the goal is protocol
//! fidelity, not scalability — and that mutex also carries the ordering
//! for the snapshot point: `begin_marking` runs under the heap lock and
//! mutator stores need the same lock, so a store serialized after the
//! snapshot sees `gc.is_marking()` and logs. The phase/epoch atomics
//! only signal *between* heap critical sections (ack requests, park
//! requests); they never substitute for that lock. The `parking_lot`
//! shim used in sandboxed builds has no `Condvar`, so waits are
//! spin-then-yield loops.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::gc::{CycleInProgress, PauseReport};
use crate::heap::Heap;
use crate::safepoint::SatbBuffer;
use crate::value::GcRef;

/// Default deadline for every protocol wait (snapshot handshake,
/// rendezvous park, resume). Far beyond any healthy handshake; a wait
/// that exceeds it means a thread stopped polling and the protocol
/// surfaces [`StwError::Timeout`] instead of hanging.
const DEFAULT_WAIT_TIMEOUT_MS: u64 = 5_000;

/// Why a bounded protocol wait gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StwError {
    /// A wait exceeded the coordinator's deadline: some thread never
    /// reached the expected safepoint state.
    Timeout {
        /// What the wait was for (`"parks"`, `"resume"`).
        waiting_for: &'static str,
        /// Backoff iterations spent before giving up.
        spins: u64,
    },
    /// The marker thread panicked; its concurrent work is lost and the
    /// cycle cannot be finished.
    MarkerPanicked,
}

impl fmt::Display for StwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StwError::Timeout { waiting_for, spins } => {
                write!(
                    f,
                    "safepoint wait for {waiting_for} timed out after {spins} spins"
                )
            }
            StwError::MarkerPanicked => f.write_str("marker thread panicked"),
        }
    }
}

impl std::error::Error for StwError {}

/// Bounded spin-wait: a short hot spin, then yields, then exponentially
/// backed-off sleeps (capped at ~1 ms), until a wall-clock deadline.
/// The `parking_lot` shim used in sandboxed builds has no `Condvar`, so
/// this ladder is the waiting primitive for the whole module.
struct Backoff {
    spins: u64,
    deadline: Instant,
}

impl Backoff {
    fn new(timeout: Duration) -> Backoff {
        Backoff {
            spins: 0,
            deadline: Instant::now() + timeout,
        }
    }

    /// One wait step. Returns `false` once the deadline has passed.
    fn wait(&mut self) -> bool {
        if Instant::now() >= self.deadline {
            return false;
        }
        self.spins += 1;
        if self.spins < 64 {
            std::hint::spin_loop();
        } else if self.spins < 256 {
            thread::yield_now();
        } else {
            let exp = (self.spins - 256).min(10) as u32;
            thread::sleep(Duration::from_micros(1 << exp));
        }
        true
    }
}

/// Protocol phases, mirrored from [`crate::safepoint::EpochPhase`] with
/// the extra stop-the-world state real threads need.
const PHASE_IDLE: u8 = 0;
const PHASE_ARMED: u8 = 1;
const PHASE_MARKING: u8 = 2;
const PHASE_STOPPING: u8 = 3;

/// Monotonic counters kept by the safepoint coordinator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SafepointCounters {
    /// Epoch acknowledgements recorded at safepoints.
    pub acks: u64,
    /// Park events at stop-the-world rendezvous.
    pub parks: u64,
    /// Buffer flushes into the collector.
    pub flushes: u64,
    /// Total SATB entries flushed.
    pub flushed_entries: u64,
    /// Elision attempts gated because the thread had not acknowledged
    /// the armed epoch.
    pub gated_elisions: u64,
    /// Spin iterations the marker spent waiting for acknowledgements.
    pub handshake_spins: u64,
    /// Bounded waits that hit their deadline (handshake, park, or
    /// resume) — each one a hang that previous versions spun on
    /// forever.
    pub watchdog_timeouts: u64,
}

/// Shared safepoint coordination for a fixed set of real mutator
/// threads. Create one per [`Heap`] and hand each thread a
/// [`MutatorHandle`] via [`SafepointCtl::register`].
pub struct SafepointCtl {
    phase: AtomicU8,
    epoch: AtomicU64,
    acks: Vec<AtomicU64>,
    parked: Vec<AtomicBool>,
    retired: Vec<AtomicBool>,
    registered: AtomicU64,
    c_acks: AtomicU64,
    c_parks: AtomicU64,
    c_flushes: AtomicU64,
    c_flushed_entries: AtomicU64,
    c_gated: AtomicU64,
    c_handshake_spins: AtomicU64,
    c_watchdog_timeouts: AtomicU64,
    /// Deadline for every bounded protocol wait, in milliseconds.
    /// Tests shrink it to exercise the timeout paths quickly.
    wait_timeout_ms: AtomicU64,
    published: Mutex<SafepointCounters>,
}

impl std::fmt::Debug for SafepointCtl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SafepointCtl")
            .field("phase", &self.phase.load(Ordering::SeqCst))
            .field("epoch", &self.epoch.load(Ordering::SeqCst))
            .field("threads", &self.acks.len())
            .finish()
    }
}

impl SafepointCtl {
    /// Coordination state for `threads` mutator threads (may be zero:
    /// a marker with no registered mutators needs no handshake).
    pub fn new(threads: usize) -> Arc<SafepointCtl> {
        Arc::new(SafepointCtl {
            phase: AtomicU8::new(PHASE_IDLE),
            epoch: AtomicU64::new(0),
            acks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            parked: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            retired: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            registered: AtomicU64::new(0),
            c_acks: AtomicU64::new(0),
            c_parks: AtomicU64::new(0),
            c_flushes: AtomicU64::new(0),
            c_flushed_entries: AtomicU64::new(0),
            c_gated: AtomicU64::new(0),
            c_handshake_spins: AtomicU64::new(0),
            c_watchdog_timeouts: AtomicU64::new(0),
            wait_timeout_ms: AtomicU64::new(DEFAULT_WAIT_TIMEOUT_MS),
            published: Mutex::new(SafepointCounters::default()),
        })
    }

    /// Overrides the deadline for every bounded protocol wait. The
    /// default (5 s) is generous; tests and watchdog-sensitive callers
    /// may tighten it.
    pub fn set_wait_timeout(&self, timeout: Duration) {
        self.wait_timeout_ms
            .store(timeout.as_millis() as u64, Ordering::SeqCst);
    }

    fn wait_timeout(&self) -> Duration {
        Duration::from_millis(self.wait_timeout_ms.load(Ordering::SeqCst))
    }

    fn watchdog_timeout(&self, waiting_for: &'static str, spins: u64) -> StwError {
        self.c_watchdog_timeouts.fetch_add(1, Ordering::SeqCst);
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::event(
                "threaded.watchdog.timeout",
                format!("waiting for {waiting_for} ({spins} spins)"),
            );
        }
        StwError::Timeout { waiting_for, spins }
    }

    /// Claims the next mutator slot. Call once per mutator thread,
    /// before starting a cycle.
    ///
    /// # Panics
    ///
    /// Panics if more handles are claimed than `threads` at
    /// construction — a wiring bug, not a runtime condition.
    pub fn register(self: &Arc<SafepointCtl>) -> MutatorHandle {
        let tid = self.registered.fetch_add(1, Ordering::SeqCst) as usize;
        assert!(tid < self.acks.len(), "more handles than declared threads");
        MutatorHandle {
            ctl: Arc::clone(self),
            tid,
            buf: SatbBuffer::new(),
            depth_hist: wbe_telemetry::histogram("threaded.satb.buffer_depth"),
        }
    }

    /// Snapshot of the lifetime counters.
    pub fn counters(&self) -> SafepointCounters {
        SafepointCounters {
            acks: self.c_acks.load(Ordering::SeqCst),
            parks: self.c_parks.load(Ordering::SeqCst),
            flushes: self.c_flushes.load(Ordering::SeqCst),
            flushed_entries: self.c_flushed_entries.load(Ordering::SeqCst),
            gated_elisions: self.c_gated.load(Ordering::SeqCst),
            handshake_spins: self.c_handshake_spins.load(Ordering::SeqCst),
            watchdog_timeouts: self.c_watchdog_timeouts.load(Ordering::SeqCst),
        }
    }

    /// Publishes counter deltas (since the previous publish) into the
    /// global telemetry registry under `threaded.safepoint.*`.
    pub fn publish_metrics(&self) {
        let now = self.counters();
        let mut prev = self.published.lock();
        for (name, cur, old) in [
            ("threaded.safepoint.acks", now.acks, prev.acks),
            ("threaded.safepoint.parks", now.parks, prev.parks),
            ("threaded.satb.flushes", now.flushes, prev.flushes),
            (
                "threaded.satb.flushed_entries",
                now.flushed_entries,
                prev.flushed_entries,
            ),
            (
                "threaded.safepoint.gated_elisions",
                now.gated_elisions,
                prev.gated_elisions,
            ),
            (
                "threaded.safepoint.handshake_spins",
                now.handshake_spins,
                prev.handshake_spins,
            ),
            (
                "threaded.watchdog.timeouts",
                now.watchdog_timeouts,
                prev.watchdog_timeouts,
            ),
        ] {
            wbe_telemetry::counter(name).add(cur - old);
        }
        *prev = now;
    }

    fn all_acked(&self, epoch: u64) -> bool {
        self.acks
            .iter()
            .zip(&self.retired)
            .all(|(a, r)| r.load(Ordering::SeqCst) || a.load(Ordering::SeqCst) == epoch)
    }

    fn all_parked(&self) -> bool {
        self.parked
            .iter()
            .zip(&self.retired)
            .all(|(p, r)| r.load(Ordering::SeqCst) || p.load(Ordering::SeqCst))
    }
}

/// Per-thread mutator state: the thread id, its SATB buffer, and a
/// handle on the shared coordinator. Obtained from
/// [`SafepointCtl::register`]; moved into the mutator's thread.
pub struct MutatorHandle {
    ctl: Arc<SafepointCtl>,
    tid: usize,
    buf: SatbBuffer,
    depth_hist: wbe_telemetry::Histogram,
}

impl std::fmt::Debug for MutatorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutatorHandle")
            .field("tid", &self.tid)
            .field("buffered", &self.buf.depth())
            .finish()
    }
}

impl MutatorHandle {
    /// This handle's mutator slot index.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Per-buffer statistics (logged / flushes / max depth).
    pub fn buffer_stats(&self) -> crate::safepoint::SatbBufferStats {
        self.buf.stats
    }

    fn acked_current(&self) -> bool {
        self.ctl.acks[self.tid].load(Ordering::SeqCst) == self.ctl.epoch.load(Ordering::SeqCst)
    }

    /// The thread's local view of "is marking in progress". Call while
    /// holding the heap lock — the lock is what orders this against the
    /// snapshot point (see module docs).
    pub fn local_marking(&self, heap: &Heap) -> bool {
        heap.gc.is_marking() && self.acked_current()
    }

    /// SATB write-barrier payload: logs `old` into the thread-local
    /// buffer when the thread's local view says marking is on. Call
    /// while holding the heap lock, before the overwriting store.
    pub fn barrier_log(&mut self, heap: &Heap, old: GcRef) {
        if self.local_marking(heap) {
            self.buf.log(old);
        }
    }

    /// May this thread run statically-elided (barrier-free) code right
    /// now? True when no epoch is pending or the thread has
    /// acknowledged the current one; otherwise the thread must take
    /// the conservative full-barrier path (and a gating event is
    /// counted).
    pub fn elide_allowed(&self) -> bool {
        let phase = self.ctl.phase.load(Ordering::SeqCst);
        if phase == PHASE_IDLE || self.acked_current() {
            true
        } else {
            self.ctl.c_gated.fetch_add(1, Ordering::SeqCst);
            false
        }
    }

    /// Safepoint poll. Acknowledges a pending epoch, flushes the SATB
    /// buffer, and parks for the duration of a stop-the-world
    /// rendezvous. Call regularly from mutator loops, **without**
    /// holding the heap lock (the poll takes it internally to flush).
    ///
    /// # Errors
    ///
    /// [`StwError::Timeout`] if a rendezvous park is never released —
    /// the coordinator died or stalled. The thread un-parks before
    /// returning so the coordinator (if it recovers) does not count a
    /// ghost park.
    pub fn safepoint(&mut self, heap: &Mutex<Heap>) -> Result<(), StwError> {
        loop {
            match self.ctl.phase.load(Ordering::SeqCst) {
                PHASE_ARMED => {
                    self.ack();
                    // Ack handshake: give the marker a chance to take
                    // the snapshot before this thread resumes.
                    thread::yield_now();
                    return Ok(());
                }
                PHASE_STOPPING => {
                    self.flush(heap);
                    self.ctl.parked[self.tid].store(true, Ordering::SeqCst);
                    self.ctl.c_parks.fetch_add(1, Ordering::SeqCst);
                    let mut backoff = Backoff::new(self.ctl.wait_timeout());
                    while self.ctl.phase.load(Ordering::SeqCst) == PHASE_STOPPING {
                        if !backoff.wait() {
                            self.ctl.parked[self.tid].store(false, Ordering::SeqCst);
                            return Err(self.ctl.watchdog_timeout("resume", backoff.spins));
                        }
                    }
                    self.ctl.parked[self.tid].store(false, Ordering::SeqCst);
                    // Re-poll: the world may have resumed straight into
                    // a newly armed epoch.
                }
                _ => {
                    if self.buf.depth() > 0 {
                        self.flush(heap);
                    }
                    return Ok(());
                }
            }
        }
    }

    /// Retires the mutator: final flush, then the coordinator stops
    /// waiting on this thread for acknowledgements and rendezvous.
    pub fn retire(mut self, heap: &Mutex<Heap>) {
        self.flush(heap);
        self.ctl.retired[self.tid].store(true, Ordering::SeqCst);
    }

    fn ack(&mut self) {
        let epoch = self.ctl.epoch.load(Ordering::SeqCst);
        if self.ctl.acks[self.tid].swap(epoch, Ordering::SeqCst) != epoch {
            self.ctl.c_acks.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn flush(&mut self, heap: &Mutex<Heap>) {
        let depth = {
            let mut h = heap.lock();
            self.buf.flush_into(&mut h.gc)
        };
        self.depth_hist.record(depth as u64);
        self.ctl.c_flushes.fetch_add(1, Ordering::SeqCst);
        self.ctl
            .c_flushed_entries
            .fetch_add(depth as u64, Ordering::SeqCst);
    }
}

/// What the stop-the-world rendezvous did.
#[derive(Clone, Copy, Debug, Default)]
pub struct StwReport {
    /// The remark pause (empty if the cycle never reached its
    /// snapshot).
    pub pause: PauseReport,
    /// Mark units the marker thread completed concurrently.
    pub concurrent_units: u64,
    /// Objects freed by the in-rendezvous sweep.
    pub swept: usize,
    /// Whether the cycle actually took its snapshot (false when
    /// finished before the ack handshake completed).
    pub cycle_ran: bool,
}

/// Handle to a running concurrent marking cycle.
pub struct ConcurrentCycle {
    heap: Arc<Mutex<Heap>>,
    ctl: Arc<SafepointCtl>,
    stop: Arc<AtomicBool>,
    marker: Option<thread::JoinHandle<u64>>,
}

impl std::fmt::Debug for ConcurrentCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentCycle")
            .field("running", &self.marker.is_some())
            .finish()
    }
}

impl ConcurrentCycle {
    /// Arms a new marking epoch and spawns the marker thread. The
    /// marker waits for every registered mutator to acknowledge at a
    /// safepoint, takes the snapshot (`begin_marking` from statics +
    /// `roots`), then runs `step_budget`-unit mark slices until
    /// [`ConcurrentCycle::finish`].
    ///
    /// Registered mutators must keep polling
    /// [`MutatorHandle::safepoint`] (or retire); otherwise the snapshot
    /// handshake never completes.
    ///
    /// # Errors
    ///
    /// [`CycleInProgress`] if a cycle is already running — on this
    /// coordinator or on the heap's collector.
    pub fn start(
        heap: Arc<Mutex<Heap>>,
        ctl: Arc<SafepointCtl>,
        roots: &[GcRef],
        step_budget: usize,
    ) -> Result<ConcurrentCycle, CycleInProgress> {
        if ctl
            .phase
            .compare_exchange(PHASE_IDLE, PHASE_ARMED, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Err(CycleInProgress);
        }
        if heap.lock().gc.is_marking() {
            ctl.phase.store(PHASE_IDLE, Ordering::SeqCst);
            return Err(CycleInProgress);
        }
        let epoch = ctl.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let stop = Arc::new(AtomicBool::new(false));
        let marker = {
            let heap = Arc::clone(&heap);
            let ctl = Arc::clone(&ctl);
            let stop = Arc::clone(&stop);
            let roots = roots.to_vec();
            thread::spawn(move || {
                // Snapshot handshake: every live mutator acks first.
                // Bounded — a mutator that stops polling abandons the
                // cycle (finish() reports `cycle_ran: false`) instead of
                // spinning the marker forever.
                let mut backoff = Backoff::new(ctl.wait_timeout());
                while !ctl.all_acked(epoch) {
                    if stop.load(Ordering::Acquire) {
                        return 0; // finished before the handshake
                    }
                    ctl.c_handshake_spins.fetch_add(1, Ordering::SeqCst);
                    if !backoff.wait() {
                        let _ = ctl.watchdog_timeout("acks", backoff.spins);
                        return 0;
                    }
                }
                {
                    let mut h = heap.lock();
                    let mut all_roots = h.static_roots();
                    all_roots.extend_from_slice(&roots);
                    let h = &mut *h;
                    if h.gc.try_begin_marking(&mut h.store, &all_roots).is_err() {
                        // Checked at start(); only reachable if the
                        // driver started a cycle behind our back.
                        return 0;
                    }
                    // Publish MARKING while still inside the snapshot's
                    // critical section; losing the race to a concurrent
                    // finish() (PHASE_STOPPING) is fine — the remark
                    // then covers everything under the stopped world.
                    let _ = ctl.phase.compare_exchange(
                        PHASE_ARMED,
                        PHASE_MARKING,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                }
                let mut total = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let did = {
                        let mut h = heap.lock();
                        let h = &mut *h;
                        h.gc.mark_step(&mut h.store, step_budget)
                    };
                    total += did as u64;
                    if did == 0 {
                        thread::yield_now();
                    }
                }
                total
            })
        };
        Ok(ConcurrentCycle {
            heap,
            ctl,
            stop,
            marker: Some(marker),
        })
    }

    /// Stop-the-world rendezvous: requests a stop, waits for every
    /// registered mutator to flush and park at a safepoint, joins the
    /// marker, then remarks (statics + `final_roots`) and sweeps with
    /// the world stopped before resuming it.
    ///
    /// # Errors
    ///
    /// * [`StwError::Timeout`] if a registered mutator never parks
    ///   (stopped polling without retiring). The marker is stopped and
    ///   the world resumed before returning, so the caller can retry or
    ///   escalate; the collector may be left mid-cycle, which the next
    ///   [`ConcurrentCycle::start`] reports.
    /// * [`StwError::MarkerPanicked`] if the marker thread panicked;
    ///   its concurrent work is lost.
    pub fn finish(mut self, final_roots: &[GcRef]) -> Result<StwReport, StwError> {
        self.ctl.phase.store(PHASE_STOPPING, Ordering::SeqCst);
        let mut backoff = Backoff::new(self.ctl.wait_timeout());
        while !self.ctl.all_parked() {
            if !backoff.wait() {
                // A mutator never reached its safepoint. Clean up —
                // stop the marker, resume the world — then surface the
                // stall instead of hanging the coordinator.
                self.stop.store(true, Ordering::Release);
                if let Some(m) = self.marker.take() {
                    let _ = m.join();
                }
                self.ctl.phase.store(PHASE_IDLE, Ordering::SeqCst);
                let err = self.ctl.watchdog_timeout("parks", backoff.spins);
                self.ctl.publish_metrics();
                return Err(err);
            }
        }
        self.stop.store(true, Ordering::Release);
        let concurrent_units = match self.marker.take().expect("finish called once").join() {
            Ok(units) => units,
            Err(_) => {
                self.ctl.phase.store(PHASE_IDLE, Ordering::SeqCst);
                self.ctl.publish_metrics();
                return Err(StwError::MarkerPanicked);
            }
        };
        let mut report = StwReport {
            concurrent_units,
            ..StwReport::default()
        };
        {
            let mut h = self.heap.lock();
            if h.gc.is_marking() {
                let mut roots = h.static_roots();
                roots.extend_from_slice(final_roots);
                let h = &mut *h;
                report.pause = h.gc.remark(&mut h.store, &roots);
                report.swept = h.gc.sweep(&mut h.store);
                report.cycle_ran = true;
            }
        }
        self.ctl.phase.store(PHASE_IDLE, Ordering::SeqCst);
        self.ctl.publish_metrics();
        Ok(report)
    }
}

impl Drop for ConcurrentCycle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(m) = self.marker.take() {
            let _ = m.join();
        }
        // Release parked/acking mutators; the collector may be left
        // mid-cycle (no remark ran), which the next start() reports.
        self.ctl.phase.store(PHASE_IDLE, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::MarkStyle;
    use crate::value::{FieldShape, Value};

    #[test]
    fn threaded_cycle_marks_reachable_objects() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(0);
        let (root, children) = {
            let mut h = heap.lock();
            let root = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
            let mut children = Vec::new();
            let mut prev = root;
            for _ in 0..50 {
                let c = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
                h.set_field(prev, 0, Value::from(c)).unwrap();
                children.push(c);
                prev = c;
            }
            (root, children)
        };
        let cycle = ConcurrentCycle::start(Arc::clone(&heap), ctl, &[root], 4).unwrap();
        // Mutator keeps allocating while the marker runs.
        for _ in 0..20 {
            let mut h = heap.lock();
            let _ = h.alloc_object(0, &[]).unwrap();
        }
        let report = cycle.finish(&[root]).unwrap();
        assert!(report.cycle_ran);
        let h = heap.lock();
        for c in children {
            assert!(h.gc.is_marked(c));
        }
        // New allocations were black, so the pause never scanned them
        // and the in-rendezvous sweep freed nothing reachable.
        assert!(report.pause.objects_scanned <= 51);
        assert_eq!(report.swept, 0);
    }

    #[test]
    fn starting_twice_reports_cycle_in_progress() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(0);
        let root = {
            let mut h = heap.lock();
            h.alloc_object(0, &[]).unwrap()
        };
        let cycle =
            ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root], 2).unwrap();
        assert_eq!(
            ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root], 2).unwrap_err(),
            CycleInProgress
        );
        let report = cycle.finish(&[root]).unwrap();
        assert!(report.cycle_ran);
        // After a clean finish the next cycle starts fine.
        let cycle = ConcurrentCycle::start(Arc::clone(&heap), ctl, &[root], 2).unwrap();
        cycle.finish(&[root]).unwrap();
    }

    #[test]
    fn collector_already_marking_reports_cycle_in_progress() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(0);
        let root = {
            let mut h = heap.lock();
            let root = h.alloc_object(0, &[]).unwrap();
            let h = &mut *h;
            h.gc.begin_marking(&mut h.store, &[root]);
            root
        };
        // A fresh coordinator, but the heap's collector is mid-cycle.
        assert_eq!(
            ConcurrentCycle::start(Arc::clone(&heap), ctl, &[root], 2).unwrap_err(),
            CycleInProgress
        );
    }

    #[test]
    fn unacked_thread_is_gated_until_its_safepoint() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(1);
        let mut handle = ctl.register();
        let root = {
            let mut h = heap.lock();
            h.alloc_object(0, &[FieldShape::Ref]).unwrap()
        };
        assert!(handle.elide_allowed(), "idle: elision always allowed");
        let cycle =
            ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root], 2).unwrap();
        // Epoch armed, not yet acked: elided code must not run.
        assert!(!handle.elide_allowed());
        assert!(!handle.local_marking(&heap.lock()));
        handle.safepoint(&heap).unwrap();
        assert!(handle.elide_allowed(), "acked: elision allowed again");
        // Retire before finish: the rendezvous waits for every
        // registered mutator to park or retire, and this one lives on
        // the finishing thread.
        handle.retire(&heap);
        let report = cycle.finish(&[root]).unwrap();
        assert!(report.cycle_ran, "handshake completed via the safepoint");
        let c = ctl.counters();
        assert_eq!(c.acks, 1);
        assert_eq!(c.gated_elisions, 1);
    }

    #[test]
    fn barrier_log_buffers_and_flush_reaches_collector() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(1);
        let mut handle = ctl.register();
        let (a, b) = {
            let mut h = heap.lock();
            let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
            let b = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
            h.set_field(a, 0, Value::from(b)).unwrap();
            (a, b)
        };
        let cycle = ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[a], 1).unwrap();
        handle.safepoint(&heap).unwrap(); // ack; snapshot may now be taken
        loop {
            // Wait for the marker to take the snapshot so the unlink
            // below happens during marking (needs the log to be sound).
            let h = heap.lock();
            if handle.local_marking(&h) {
                // Unlink b with the per-thread SATB barrier.
                let mut h = h;
                if let Value::Ref(Some(old)) = h.get_field(a, 0).unwrap() {
                    handle.barrier_log(&h, old);
                }
                h.set_field(a, 0, Value::NULL).unwrap();
                break;
            }
            drop(h);
            thread::yield_now();
        }
        assert_eq!(handle.buffer_stats().logged, 1, "buffered locally");
        handle.safepoint(&heap).unwrap(); // flush into the collector
        handle.retire(&heap); // rendezvous must not wait on this thread
        let report = cycle.finish(&[a]).unwrap();
        assert!(report.cycle_ran);
        let h = heap.lock();
        assert!(h.gc.is_marked(b), "snapshot preserved via buffered log");
        assert!(ctl.counters().flushed_entries >= 1);
    }

    #[test]
    fn stalled_mutator_times_out_instead_of_hanging() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(1);
        let _stalled = ctl.register(); // never polls, never retires
        ctl.set_wait_timeout(Duration::from_millis(50));
        let root = {
            let mut h = heap.lock();
            h.alloc_object(0, &[]).unwrap()
        };
        let cycle =
            ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root], 2).unwrap();
        let err = cycle.finish(&[root]).unwrap_err();
        assert!(
            matches!(
                err,
                StwError::Timeout {
                    waiting_for: "parks",
                    ..
                }
            ),
            "got {err:?}"
        );
        // Both the coordinator's park wait and the marker's handshake
        // gave up (the stalled thread never acked either).
        assert!(ctl.counters().watchdog_timeouts >= 1);
        // The world resumed: a fresh cycle can still be started.
        let cycle =
            ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root], 2).unwrap();
        drop(cycle);
    }

    #[test]
    fn dropping_cycle_stops_marker() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let ctl = SafepointCtl::new(0);
        let root = {
            let mut h = heap.lock();
            h.alloc_object(0, &[]).unwrap()
        };
        let cycle =
            ConcurrentCycle::start(Arc::clone(&heap), Arc::clone(&ctl), &[root], 2).unwrap();
        drop(cycle); // must not deadlock or leak the thread
        let marking = heap.lock().gc.is_marking();
        if marking {
            // Abandoned mid-cycle: the next start reports it rather
            // than panicking.
            assert_eq!(
                ConcurrentCycle::start(Arc::clone(&heap), ctl, &[root], 2).unwrap_err(),
                CycleInProgress
            );
        }
    }
}
