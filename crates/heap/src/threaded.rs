//! Real-thread concurrent marking.
//!
//! The stepped mode in [`crate::gc`] is deterministic and is what the
//! tests and experiments use. This module provides the "actually
//! concurrent" flavor for demos: a marker thread repeatedly takes small
//! locked steps while mutator threads run, then a stop-the-world remark
//! finishes the cycle.
//!
//! Synchronization is deliberately coarse (one [`Mutex`] around the whole
//! heap): the goal is to demonstrate mutator/collector interleaving with
//! the same barrier contract, not to build a scalable runtime.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use crate::gc::PauseReport;
use crate::heap::Heap;
use crate::value::GcRef;

/// Handle to a running concurrent marking cycle.
pub struct ConcurrentCycle {
    heap: Arc<Mutex<Heap>>,
    stop: Arc<AtomicBool>,
    marker: Option<thread::JoinHandle<u64>>,
}

impl std::fmt::Debug for ConcurrentCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentCycle")
            .field("running", &self.marker.is_some())
            .finish()
    }
}

impl ConcurrentCycle {
    /// Begins marking from `roots` and spawns a marker thread that takes
    /// `step_budget`-unit steps until [`ConcurrentCycle::finish`] is
    /// called (or it runs out of work and idles).
    ///
    /// # Panics
    ///
    /// Panics if a cycle is already in progress on the heap.
    pub fn start(heap: Arc<Mutex<Heap>>, roots: &[GcRef], step_budget: usize) -> Self {
        {
            let mut h = heap.lock();
            let mut all_roots = h.static_roots();
            all_roots.extend_from_slice(roots);
            let h = &mut *h;
            h.gc.begin_marking(&mut h.store, &all_roots);
        }
        let stop = Arc::new(AtomicBool::new(false));
        let marker = {
            let heap = Arc::clone(&heap);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut total = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let did = {
                        let mut h = heap.lock();
                        let h = &mut *h;
                        h.gc.mark_step(&mut h.store, step_budget)
                    };
                    total += did as u64;
                    if did == 0 {
                        thread::yield_now();
                    }
                }
                total
            })
        };
        ConcurrentCycle {
            heap,
            stop,
            marker: Some(marker),
        }
    }

    /// Stops the marker thread and performs the stop-the-world remark
    /// with the given final roots. Returns the pause report and the
    /// number of units the marker completed concurrently.
    pub fn finish(mut self, final_roots: &[GcRef]) -> (PauseReport, u64) {
        self.stop.store(true, Ordering::Release);
        let concurrent = self
            .marker
            .take()
            .expect("finish called once")
            .join()
            .expect("marker thread panicked");
        let mut h = self.heap.lock();
        let mut roots = h.static_roots();
        roots.extend_from_slice(final_roots);
        let h = &mut *h;
        let pause = h.gc.remark(&mut h.store, &roots);
        (pause, concurrent)
    }
}

impl Drop for ConcurrentCycle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(m) = self.marker.take() {
            let _ = m.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::MarkStyle;
    use crate::value::{FieldShape, Value};

    #[test]
    fn threaded_cycle_marks_reachable_objects() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let (root, children) = {
            let mut h = heap.lock();
            let root = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
            let mut children = Vec::new();
            let mut prev = root;
            for _ in 0..50 {
                let c = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
                h.set_field(prev, 0, Value::from(c)).unwrap();
                children.push(c);
                prev = c;
            }
            (root, children)
        };
        let cycle = ConcurrentCycle::start(Arc::clone(&heap), &[root], 4);
        // Mutator keeps allocating while the marker runs.
        for _ in 0..20 {
            let mut h = heap.lock();
            let _ = h.alloc_object(0, &[]).unwrap();
        }
        let (pause, _concurrent) = cycle.finish(&[root]);
        let h = heap.lock();
        for c in children {
            assert!(h.gc.is_marked(c));
        }
        // New allocations were black, so the pause never scanned them.
        assert!(pause.objects_scanned <= 51);
    }

    #[test]
    fn threaded_cycle_with_mutation_and_barrier() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let (a, b) = {
            let mut h = heap.lock();
            let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
            let b = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
            h.set_field(a, 0, Value::from(b)).unwrap();
            (a, b)
        };
        let cycle = ConcurrentCycle::start(Arc::clone(&heap), &[a], 1);
        {
            // Unlink b with the SATB barrier.
            let mut h = heap.lock();
            if let Value::Ref(Some(old)) = h.get_field(a, 0).unwrap() {
                h.gc.satb_log(old);
            }
            h.set_field(a, 0, Value::NULL).unwrap();
        }
        let (_pause, _units) = cycle.finish(&[a]);
        let h = heap.lock();
        assert!(h.gc.is_marked(b), "snapshot preserved under concurrency");
    }

    #[test]
    fn dropping_cycle_stops_marker() {
        let heap = Arc::new(Mutex::new(Heap::new(MarkStyle::Satb)));
        let root = {
            let mut h = heap.lock();
            h.alloc_object(0, &[]).unwrap()
        };
        let cycle = ConcurrentCycle::start(Arc::clone(&heap), &[root], 2);
        drop(cycle); // must not deadlock or leak the thread
                     // Heap is still usable (phase stays Marking; finish was skipped).
        let h = heap.lock();
        assert!(h.gc.is_marking());
    }
}
