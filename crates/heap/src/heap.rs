//! The heap proper: slot store, zeroing allocator, statics, accessors.

use std::fmt;

use crate::fault::FaultPlan;
use crate::gc::{GcState, MarkStyle};
use crate::object::{HeapObject, ObjKind, TraceState};
use crate::value::{FieldShape, GcRef, Value};
use crate::witness::WitnessTable;

/// Errors from heap accessors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The reference does not denote a live object (freed or never
    /// allocated).
    DanglingRef(GcRef),
    /// An object access used the wrong payload kind (e.g. field access on
    /// an array).
    WrongKind(GcRef),
    /// Field offset out of range for the object.
    FieldOutOfRange {
        /// Receiver.
        obj: GcRef,
        /// Offset requested.
        offset: usize,
    },
    /// Array index out of bounds (this is the trap the paper's §3.6
    /// overflow argument relies on).
    IndexOutOfBounds {
        /// Receiver.
        arr: GcRef,
        /// Index requested.
        index: i64,
        /// Array length.
        len: usize,
    },
    /// Static id out of range.
    StaticOutOfRange(usize),
    /// Negative array length at allocation.
    NegativeArrayLength(i64),
    /// Allocation failed (injected by a [`FaultPlan`] or genuine
    /// exhaustion). Recoverable: collecting may free space, so drivers
    /// retry after an emergency pause.
    AllocationFailed,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::DanglingRef(r) => write!(f, "dangling reference {r}"),
            HeapError::WrongKind(r) => write!(f, "wrong object kind for access at {r}"),
            HeapError::FieldOutOfRange { obj, offset } => {
                write!(f, "field offset {offset} out of range on {obj}")
            }
            HeapError::IndexOutOfBounds { arr, index, len } => {
                write!(f, "array index {index} out of bounds (len {len}) on {arr}")
            }
            HeapError::StaticOutOfRange(i) => write!(f, "static {i} out of range"),
            HeapError::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
            HeapError::AllocationFailed => write!(f, "allocation failed"),
        }
    }
}

impl std::error::Error for HeapError {}

/// The slot store: object storage decoupled from GC state so the marker
/// can walk objects while the mutator-facing [`Heap`] API is borrowed.
#[derive(Debug, Default)]
pub struct Store {
    slots: Vec<Option<HeapObject>>,
    free: Vec<u32>,
}

impl Store {
    /// Number of slots ever allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of live objects.
    pub fn live_count(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Returns the object at `r`.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`] if `r` is not live.
    pub fn get(&self, r: GcRef) -> Result<&HeapObject, HeapError> {
        self.slots
            .get(r.index())
            .and_then(|s| s.as_ref())
            .ok_or(HeapError::DanglingRef(r))
    }

    /// Returns the object at `r` mutably.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`] if `r` is not live.
    pub fn get_mut(&mut self, r: GcRef) -> Result<&mut HeapObject, HeapError> {
        self.slots
            .get_mut(r.index())
            .and_then(|s| s.as_mut())
            .ok_or(HeapError::DanglingRef(r))
    }

    /// Installs `obj` in a free slot (or a new one) and returns its ref.
    pub fn insert(&mut self, obj: HeapObject) -> GcRef {
        if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(obj);
            GcRef(idx)
        } else {
            let idx = u32::try_from(self.slots.len()).expect("heap slot overflow");
            self.slots.push(Some(obj));
            GcRef(idx)
        }
    }

    /// Frees the slot at `r`. Idempotent on already-free slots.
    pub fn remove(&mut self, r: GcRef) {
        if let Some(slot) = self.slots.get_mut(r.index()) {
            if slot.take().is_some() {
                self.free.push(r.0);
            }
        }
    }

    /// True if `r` denotes a live object.
    pub fn is_live(&self, r: GcRef) -> bool {
        self.slots.get(r.index()).is_some_and(|s| s.is_some())
    }

    /// Iterates over live `(GcRef, &HeapObject)` pairs.
    pub fn iter_live(&self) -> impl Iterator<Item = (GcRef, &HeapObject)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|o| (GcRef(i as u32), o)))
    }
}

/// Allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Objects allocated.
    pub allocations: u64,
    /// Total words allocated (header + slots).
    pub words_allocated: u64,
    /// Objects freed by sweeps.
    pub frees: u64,
}

/// The managed heap: slot store, GC state, statics, statistics.
///
/// All allocation goes through the zeroing allocator: new objects have
/// null reference fields/elements and zero integers, which is what makes
/// initializing stores pre-null.
#[derive(Debug)]
pub struct Heap {
    /// Object storage.
    pub store: Store,
    /// Collector state (marker style, phase, mark bits, buffers).
    pub gc: GcState,
    /// Static (global) variables.
    statics: Vec<Value>,
    /// Allocation statistics.
    pub stats: HeapStats,
    /// Optional deterministic fault schedule. When present, allocations
    /// consult it and may fail with [`HeapError::AllocationFailed`].
    pub fault: Option<FaultPlan>,
    /// Optional runtime witness side-table (see [`crate::witness`]).
    /// When present, allocations and reference stores record escape
    /// and provenance facts; absent (the default), every hook is a
    /// single `Option` check.
    pub witness: Option<WitnessTable>,
}

impl Heap {
    /// Creates an empty heap with the given marker style.
    pub fn new(style: MarkStyle) -> Self {
        Heap {
            store: Store::default(),
            gc: GcState::new(style),
            statics: Vec::new(),
            stats: HeapStats::default(),
            fault: None,
            witness: None,
        }
    }

    /// Installs an empty [`WitnessTable`]; subsequent allocations and
    /// reference stores are witnessed. Idempotent — an existing table
    /// (and its accumulated facts) is kept.
    pub fn enable_witnesses(&mut self) {
        if self.witness.is_none() {
            self.witness = Some(WitnessTable::new());
        }
    }

    /// Declares the static variables; statics start zeroed/null.
    pub fn register_statics(&mut self, shapes: &[FieldShape]) {
        self.statics = shapes.iter().map(|s| s.zero_value()).collect();
    }

    /// Number of registered statics.
    pub fn static_count(&self) -> usize {
        self.statics.len()
    }

    /// Reads static `i`.
    ///
    /// # Errors
    ///
    /// [`HeapError::StaticOutOfRange`] if `i` is unregistered.
    pub fn get_static(&self, i: usize) -> Result<Value, HeapError> {
        self.statics
            .get(i)
            .copied()
            .ok_or(HeapError::StaticOutOfRange(i))
    }

    /// Writes static `i`.
    ///
    /// # Errors
    ///
    /// [`HeapError::StaticOutOfRange`] if `i` is unregistered.
    pub fn set_static(&mut self, i: usize, v: Value) -> Result<(), HeapError> {
        *self
            .statics
            .get_mut(i)
            .ok_or(HeapError::StaticOutOfRange(i))? = v;
        if let (Some(w), Value::Ref(val)) = (self.witness.as_mut(), v) {
            w.note_static_store(val);
        }
        Ok(())
    }

    /// References currently stored in statics (GC roots).
    pub fn static_roots(&self) -> Vec<GcRef> {
        self.statics
            .iter()
            .filter_map(|v| match v {
                Value::Ref(Some(r)) => Some(*r),
                _ => None,
            })
            .collect()
    }

    /// Chaos hook: clears the mark bit of the lowest-index marked live
    /// object and returns it (`None` if nothing is marked). Injected by
    /// the soak harness after a remark to forge the corruption an
    /// unsound elision would cause; the recovery layer must then heal
    /// it with a fresh stop-the-world re-mark. Deterministic by
    /// construction — "lowest index" depends only on heap layout, which
    /// is itself a pure function of the run's seed.
    pub fn chaos_clear_mark(&mut self) -> Option<GcRef> {
        let victim = self
            .store
            .iter_live()
            .map(|(r, _)| r)
            .find(|&r| self.gc.is_marked(r))?;
        self.gc.clear_mark(victim);
        Some(victim)
    }

    /// References stored in statics with their static indices (for the
    /// invariant verifier's dangling-static reporting).
    pub fn static_ref_slots(&self) -> impl Iterator<Item = (usize, GcRef)> + '_ {
        self.statics
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v {
                Value::Ref(Some(r)) => Some((i, *r)),
                _ => None,
            })
    }

    /// Consults the fault plan (if any) before an allocation.
    fn check_alloc_fault(&mut self) -> Result<(), HeapError> {
        if let Some(plan) = self.fault.as_mut() {
            if plan.should_fail_alloc() {
                return Err(HeapError::AllocationFailed);
            }
        }
        Ok(())
    }

    fn finish_alloc(&mut self, obj: HeapObject) -> GcRef {
        let words = obj.size_words() as u64;
        let tag = obj.class_tag;
        let r = self.store.insert(obj);
        self.stats.allocations += 1;
        self.stats.words_allocated += words;
        self.gc.on_allocate(r);
        if let Some(w) = self.witness.as_mut() {
            w.note_alloc(r, tag);
        }
        r
    }

    /// Allocates an instance of a class with the given field shapes; all
    /// fields are zeroed (ints) or null (refs).
    ///
    /// # Errors
    ///
    /// [`HeapError::AllocationFailed`] if the fault plan injects a
    /// failure; otherwise infallible.
    pub fn alloc_object(
        &mut self,
        class_tag: u32,
        shapes: &[FieldShape],
    ) -> Result<GcRef, HeapError> {
        self.check_alloc_fault()?;
        let fields = shapes.iter().map(|s| s.zero_value()).collect();
        Ok(self.finish_alloc(HeapObject {
            class_tag,
            trace_state: TraceState::Untraced,
            kind: ObjKind::Object(fields),
        }))
    }

    /// Allocates a reference array with all elements null.
    ///
    /// # Errors
    ///
    /// [`HeapError::NegativeArrayLength`] if `len < 0`, or
    /// [`HeapError::AllocationFailed`] from the fault plan.
    pub fn alloc_ref_array(&mut self, class_tag: u32, len: i64) -> Result<GcRef, HeapError> {
        let n = usize::try_from(len).map_err(|_| HeapError::NegativeArrayLength(len))?;
        self.check_alloc_fault()?;
        Ok(self.finish_alloc(HeapObject {
            class_tag,
            trace_state: TraceState::Untraced,
            kind: ObjKind::RefArray(vec![None; n]),
        }))
    }

    /// Allocates an int array with all elements zero.
    ///
    /// # Errors
    ///
    /// [`HeapError::NegativeArrayLength`] if `len < 0`, or
    /// [`HeapError::AllocationFailed`] from the fault plan.
    pub fn alloc_int_array(&mut self, len: i64) -> Result<GcRef, HeapError> {
        let n = usize::try_from(len).map_err(|_| HeapError::NegativeArrayLength(len))?;
        self.check_alloc_fault()?;
        Ok(self.finish_alloc(HeapObject {
            class_tag: HeapObject::INT_ARRAY_TAG,
            trace_state: TraceState::Untraced,
            kind: ObjKind::IntArray(vec![0; n]),
        }))
    }

    /// Reads field `offset` of object `r`.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`], [`HeapError::WrongKind`], or
    /// [`HeapError::FieldOutOfRange`].
    pub fn get_field(&self, r: GcRef, offset: usize) -> Result<Value, HeapError> {
        match &self.store.get(r)?.kind {
            ObjKind::Object(fields) => fields
                .get(offset)
                .copied()
                .ok_or(HeapError::FieldOutOfRange { obj: r, offset }),
            _ => Err(HeapError::WrongKind(r)),
        }
    }

    /// Writes field `offset` of object `r`. This is the *raw* write: the
    /// interpreter executes (or elides) the SATB barrier before calling
    /// it.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`], [`HeapError::WrongKind`], or
    /// [`HeapError::FieldOutOfRange`].
    pub fn set_field(&mut self, r: GcRef, offset: usize, v: Value) -> Result<(), HeapError> {
        match &mut self.store.get_mut(r)?.kind {
            ObjKind::Object(fields) => {
                let slot = fields
                    .get_mut(offset)
                    .ok_or(HeapError::FieldOutOfRange { obj: r, offset })?;
                *slot = v;
                // Witness only reference stores (both engines funnel
                // their reference-field writes through here; int writes
                // take engine-specific paths and carry no escape fact).
                if let (Some(w), Value::Ref(val)) = (self.witness.as_mut(), v) {
                    w.note_ref_store(r, val);
                }
                Ok(())
            }
            _ => Err(HeapError::WrongKind(r)),
        }
    }

    fn check_index(r: GcRef, index: i64, len: usize) -> Result<usize, HeapError> {
        usize::try_from(index)
            .ok()
            .filter(|&i| i < len)
            .ok_or(HeapError::IndexOutOfBounds { arr: r, index, len })
    }

    /// Reads element `index` of reference array `r`.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`], [`HeapError::WrongKind`], or
    /// [`HeapError::IndexOutOfBounds`].
    pub fn get_elem(&self, r: GcRef, index: i64) -> Result<Option<GcRef>, HeapError> {
        match &self.store.get(r)?.kind {
            ObjKind::RefArray(elems) => {
                let i = Self::check_index(r, index, elems.len())?;
                Ok(elems[i])
            }
            _ => Err(HeapError::WrongKind(r)),
        }
    }

    /// Writes element `index` of reference array `r` (raw write; barrier
    /// is the interpreter's job).
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`], [`HeapError::WrongKind`], or
    /// [`HeapError::IndexOutOfBounds`].
    pub fn set_elem(&mut self, r: GcRef, index: i64, v: Option<GcRef>) -> Result<(), HeapError> {
        match &mut self.store.get_mut(r)?.kind {
            ObjKind::RefArray(elems) => {
                let len = elems.len();
                let i = Self::check_index(r, index, len)?;
                elems[i] = v;
                if let Some(w) = self.witness.as_mut() {
                    w.note_ref_store(r, v);
                }
                Ok(())
            }
            _ => Err(HeapError::WrongKind(r)),
        }
    }

    /// Reads element `index` of int array `r`.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`], [`HeapError::WrongKind`], or
    /// [`HeapError::IndexOutOfBounds`].
    pub fn get_int_elem(&self, r: GcRef, index: i64) -> Result<i64, HeapError> {
        match &self.store.get(r)?.kind {
            ObjKind::IntArray(elems) => {
                let i = Self::check_index(r, index, elems.len())?;
                Ok(elems[i])
            }
            _ => Err(HeapError::WrongKind(r)),
        }
    }

    /// Writes element `index` of int array `r`.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`], [`HeapError::WrongKind`], or
    /// [`HeapError::IndexOutOfBounds`].
    pub fn set_int_elem(&mut self, r: GcRef, index: i64, v: i64) -> Result<(), HeapError> {
        match &mut self.store.get_mut(r)?.kind {
            ObjKind::IntArray(elems) => {
                let len = elems.len();
                let i = Self::check_index(r, index, len)?;
                elems[i] = v;
                Ok(())
            }
            _ => Err(HeapError::WrongKind(r)),
        }
    }

    /// Length of the array at `r`.
    ///
    /// # Errors
    ///
    /// [`HeapError::DanglingRef`] or [`HeapError::WrongKind`] (objects
    /// have no length).
    pub fn array_len(&self, r: GcRef) -> Result<i64, HeapError> {
        match &self.store.get(r)?.kind {
            ObjKind::RefArray(e) => Ok(e.len() as i64),
            ObjKind::IntArray(e) => Ok(e.len() as i64),
            ObjKind::Object(_) => Err(HeapError::WrongKind(r)),
        }
    }

    /// Sweeps unmarked objects after a completed marking cycle. See
    /// [`GcState::sweep`]; this convenience method also updates
    /// [`HeapStats::frees`].
    pub fn sweep(&mut self) -> usize {
        let freed = self.gc.sweep(&mut self.store);
        self.stats.frees += freed as u64;
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> Heap {
        Heap::new(MarkStyle::Satb)
    }

    #[test]
    fn alloc_object_zeroes_fields() {
        let mut h = heap();
        let r = h
            .alloc_object(3, &[FieldShape::Ref, FieldShape::Int, FieldShape::Ref])
            .unwrap();
        assert_eq!(h.get_field(r, 0).unwrap(), Value::NULL);
        assert_eq!(h.get_field(r, 1).unwrap(), Value::Int(0));
        assert_eq!(h.get_field(r, 2).unwrap(), Value::NULL);
        assert_eq!(h.store.get(r).unwrap().class_tag, 3);
    }

    #[test]
    fn alloc_arrays_zeroed_and_bounded() {
        let mut h = heap();
        let a = h.alloc_ref_array(1, 4).unwrap();
        assert_eq!(h.array_len(a).unwrap(), 4);
        for i in 0..4 {
            assert_eq!(h.get_elem(a, i).unwrap(), None);
        }
        let ia = h.alloc_int_array(2).unwrap();
        assert_eq!(h.get_int_elem(ia, 1).unwrap(), 0);
        assert!(matches!(
            h.get_elem(a, 4),
            Err(HeapError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            h.get_elem(a, -1),
            Err(HeapError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_length_rejected() {
        let mut h = heap();
        assert_eq!(
            h.alloc_ref_array(0, -3),
            Err(HeapError::NegativeArrayLength(-3))
        );
        assert_eq!(
            h.alloc_int_array(-1),
            Err(HeapError::NegativeArrayLength(-1))
        );
    }

    #[test]
    fn field_writes_round_trip() {
        let mut h = heap();
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        let b = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        assert_eq!(h.get_field(a, 0).unwrap(), Value::Ref(Some(b)));
        assert!(matches!(
            h.set_field(a, 5, Value::Int(0)),
            Err(HeapError::FieldOutOfRange { .. })
        ));
    }

    #[test]
    fn wrong_kind_access_rejected() {
        let mut h = heap();
        let o = h.alloc_object(0, &[FieldShape::Int]).unwrap();
        let a = h.alloc_ref_array(0, 1).unwrap();
        assert!(matches!(h.get_elem(o, 0), Err(HeapError::WrongKind(_))));
        assert!(matches!(h.get_field(a, 0), Err(HeapError::WrongKind(_))));
        assert!(matches!(h.array_len(o), Err(HeapError::WrongKind(_))));
        assert!(matches!(h.get_int_elem(a, 0), Err(HeapError::WrongKind(_))));
    }

    #[test]
    fn statics_round_trip() {
        let mut h = heap();
        h.register_statics(&[FieldShape::Ref, FieldShape::Int]);
        assert_eq!(h.get_static(0).unwrap(), Value::NULL);
        let o = h.alloc_object(0, &[]).unwrap();
        h.set_static(0, Value::from(o)).unwrap();
        assert_eq!(h.static_roots(), vec![o]);
        assert!(matches!(
            h.get_static(7),
            Err(HeapError::StaticOutOfRange(7))
        ));
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut h = heap();
        let a = h.alloc_object(0, &[]).unwrap();
        h.store.remove(a);
        assert!(!h.store.is_live(a));
        assert!(matches!(h.get_field(a, 0), Err(HeapError::DanglingRef(_))));
        let b = h.alloc_object(1, &[]).unwrap();
        assert_eq!(a, b, "slot is reused");
        assert_eq!(h.store.live_count(), 1);
    }

    #[test]
    fn stats_track_allocation_words() {
        let mut h = heap();
        h.alloc_object(0, &[FieldShape::Int; 3]).unwrap();
        h.alloc_int_array(5).unwrap();
        assert_eq!(h.stats.allocations, 2);
        assert_eq!(h.stats.words_allocated, (2 + 3) + (2 + 5));
    }
}
