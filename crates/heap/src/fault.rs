//! Deterministic GC fault injection.
//!
//! A [`FaultPlan`] is a stream of perturbation decisions derived from a
//! single `u64` seed (SplitMix64). The interpreter consults it at fixed
//! points in execution — marking-start decisions, concurrent mark steps,
//! allocations — so the whole fault schedule is a pure function of the
//! seed and the instruction stream. Replaying the same program with the
//! same seed reproduces the same schedule bit for bit, which is what
//! makes failures found by the verification harness debuggable.
//!
//! The injected faults stress exactly the windows the paper's soundness
//! argument depends on: *when* a marking cycle starts and finishes
//! relative to mutator stores (SATB snapshot timing), how much SATB
//! buffer drain pressure the marker sees, and allocation failures that
//! force the emergency full-pause degradation path.

use std::fmt;

/// Probabilities (in per-mille) and knobs for one fault schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for the decision stream.
    pub seed: u64,
    /// ‰ chance a *due* marking start is deferred at that allocation
    /// (the trigger re-rolls on each subsequent allocation).
    pub defer_start_pm: u16,
    /// ‰ chance marking starts early at an allocation while idle.
    pub early_start_pm: u16,
    /// ‰ chance a scheduled concurrent mark step is skipped, delaying
    /// marking progress relative to mutator stores.
    pub skip_step_pm: u16,
    /// ‰ chance a scheduled mark step gets a drain-pressure boost
    /// (multiplied budget, forcing deep SATB-buffer drains).
    pub drain_boost_pm: u16,
    /// Budget multiplier applied on a drain-pressure boost.
    pub drain_boost_factor: usize,
    /// ‰ chance an allocation fails, exercising the emergency
    /// full-pause retry path.
    pub alloc_fail_pm: u16,
    /// Number of allocations guaranteed to succeed after an injected
    /// failure, so the mutator's retry always makes progress.
    pub alloc_grace: u32,
    /// ‰ chance the mark state is corrupted (one mark bit cleared)
    /// right after a cycle's remark — the chaos fault the recovery
    /// layer exists to heal. Zero in every standard schedule; the
    /// decision point is only consulted when non-zero, so enabling it
    /// does not perturb existing seeded streams.
    pub corrupt_mark_pm: u16,
    /// ‰ chance an arrival window in the serve world turns into an
    /// overload burst (a clump of extra requests landing at once),
    /// driving the pressure ladder. Zero in every standard schedule;
    /// like `corrupt_mark_pm`, the decision point is only consulted
    /// when non-zero, so enabling it does not perturb existing seeded
    /// streams.
    pub overload_burst_pm: u16,
    /// Extra requests injected per overload burst.
    pub overload_burst_len: u32,
}

impl FaultConfig {
    /// The standard schedule shape used by the verification harness.
    pub fn from_seed(seed: u64) -> Self {
        FaultConfig {
            seed,
            defer_start_pm: 250,
            early_start_pm: 60,
            skip_step_pm: 250,
            drain_boost_pm: 150,
            drain_boost_factor: 16,
            alloc_fail_pm: 15,
            alloc_grace: 16,
            corrupt_mark_pm: 0,
            overload_burst_pm: 0,
            overload_burst_len: 24,
        }
    }

    /// Scales the schedule for chaos-soak escalation `level` (0 = the
    /// standard schedule). Each level multiplies the perturbation rates
    /// (capped at 1000‰), shrinks the allocation grace window, and —
    /// from level 1 up — enables post-remark mark-state corruption so
    /// the recovery path is actually exercised.
    pub fn escalate(self, level: u32) -> Self {
        let scale = |pm: u16| -> u16 {
            let factor = 1 + u64::from(level.min(8));
            (u64::from(pm) * factor).min(1000) as u16
        };
        FaultConfig {
            seed: self.seed,
            defer_start_pm: scale(self.defer_start_pm),
            early_start_pm: scale(self.early_start_pm),
            skip_step_pm: scale(self.skip_step_pm),
            drain_boost_pm: scale(self.drain_boost_pm),
            drain_boost_factor: self.drain_boost_factor,
            alloc_fail_pm: scale(self.alloc_fail_pm),
            alloc_grace: (self.alloc_grace >> level.min(4)).max(2),
            corrupt_mark_pm: if level == 0 {
                self.corrupt_mark_pm
            } else {
                (25 * u16::try_from(level.min(8)).unwrap_or(8)).min(1000)
            },
            overload_burst_pm: scale(self.overload_burst_pm),
            overload_burst_len: self.overload_burst_len,
        }
    }
}

/// Counts of decisions taken, for reporting and reproducibility checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total decision points consulted.
    pub decisions: u64,
    /// Due marking starts deferred.
    pub deferred_starts: u64,
    /// Early marking starts forced.
    pub early_starts: u64,
    /// Concurrent mark steps skipped.
    pub skipped_steps: u64,
    /// Mark steps given a drain-pressure boost.
    pub drain_boosts: u64,
    /// Allocation failures injected.
    pub alloc_failures: u64,
    /// Post-remark mark-state corruptions injected.
    pub mark_corruptions: u64,
    /// Overload bursts injected into serve-world arrivals.
    pub overload_bursts: u64,
}

impl FaultStats {
    /// Total faults actually injected (not just decision points).
    pub fn injected(&self) -> u64 {
        self.deferred_starts
            + self.early_starts
            + self.skipped_steps
            + self.drain_boosts
            + self.alloc_failures
            + self.mark_corruptions
            + self.overload_bursts
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults ({} deferred starts, {} early starts, {} skipped steps, \
             {} drain boosts, {} alloc failures, {} mark corruptions, \
             {} overload bursts) over {} decisions",
            self.injected(),
            self.deferred_starts,
            self.early_starts,
            self.skipped_steps,
            self.drain_boosts,
            self.alloc_failures,
            self.mark_corruptions,
            self.overload_bursts,
            self.decisions
        )
    }
}

/// A seeded, deterministic fault schedule.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    state: u64,
    grace: u32,
    /// Decisions taken so far.
    pub stats: FaultStats,
}

impl FaultPlan {
    /// Builds a plan from an explicit configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultPlan {
            cfg,
            state: cfg.seed,
            grace: 0,
            stats: FaultStats::default(),
        }
    }

    /// Builds the standard plan for `seed`.
    pub fn from_seed(seed: u64) -> Self {
        FaultPlan::new(FaultConfig::from_seed(seed))
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// SplitMix64: the next raw value of the decision stream.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One biased coin flip with probability `pm`/1000.
    fn roll(&mut self, pm: u16) -> bool {
        self.stats.decisions += 1;
        self.next() % 1000 < u64::from(pm)
    }

    /// Should a *due* marking start be deferred at this allocation?
    pub fn defer_marking_start(&mut self) -> bool {
        let hit = self.roll(self.cfg.defer_start_pm);
        self.stats.deferred_starts += u64::from(hit);
        hit
    }

    /// Should marking start early at this allocation while idle?
    pub fn early_marking_start(&mut self) -> bool {
        let hit = self.roll(self.cfg.early_start_pm);
        self.stats.early_starts += u64::from(hit);
        hit
    }

    /// Should this scheduled concurrent mark step be skipped?
    pub fn skip_mark_step(&mut self) -> bool {
        let hit = self.roll(self.cfg.skip_step_pm);
        self.stats.skipped_steps += u64::from(hit);
        hit
    }

    /// Drain pressure: a budget multiplier for this mark step, if the
    /// schedule injects one.
    pub fn drain_pressure(&mut self) -> Option<usize> {
        if self.roll(self.cfg.drain_boost_pm) {
            self.stats.drain_boosts += 1;
            Some(self.cfg.drain_boost_factor)
        } else {
            None
        }
    }

    /// Should this allocation fail? After an injected failure, the next
    /// [`FaultConfig::alloc_grace`] allocations are guaranteed to
    /// succeed so the emergency-pause retry path always makes progress.
    pub fn should_fail_alloc(&mut self) -> bool {
        if self.grace > 0 {
            self.grace -= 1;
            return false;
        }
        let hit = self.roll(self.cfg.alloc_fail_pm);
        if hit {
            self.stats.alloc_failures += 1;
            self.grace = self.cfg.alloc_grace;
        }
        hit
    }

    /// Should the mark state be corrupted after this cycle's remark?
    /// Never consults the decision stream while the knob is zero, so
    /// standard (non-chaos) schedules keep bit-identical streams.
    pub fn corrupt_post_mark(&mut self) -> bool {
        if self.cfg.corrupt_mark_pm == 0 {
            return false;
        }
        let hit = self.roll(self.cfg.corrupt_mark_pm);
        self.stats.mark_corruptions += u64::from(hit);
        hit
    }

    /// Should this arrival window carry an overload burst, and if so,
    /// how many extra requests? Never consults the decision stream
    /// while the knob is zero, so standard schedules keep bit-identical
    /// streams.
    pub fn overload_burst(&mut self) -> Option<u32> {
        if self.cfg.overload_burst_pm == 0 {
            return None;
        }
        if self.roll(self.cfg.overload_burst_pm) {
            self.stats.overload_bursts += 1;
            Some(self.cfg.overload_burst_len)
        } else {
            None
        }
    }

    /// A digest of the plan's entire history: equal digests mean equal
    /// decision streams. Used to assert seed-reproducibility.
    pub fn digest(&self) -> u64 {
        let mut d = self.state ^ self.cfg.seed.rotate_left(17);
        for part in [
            self.stats.decisions,
            self.stats.deferred_starts,
            self.stats.early_starts,
            self.stats.skipped_steps,
            self.stats.drain_boosts,
            self.stats.alloc_failures,
            self.stats.mark_corruptions,
            self.stats.overload_bursts,
        ] {
            d = (d ^ part).wrapping_mul(0x100_0000_01b3);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultPlan::from_seed(42);
        let mut b = FaultPlan::from_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.defer_marking_start(), b.defer_marking_start());
            assert_eq!(a.skip_mark_step(), b.skip_mark_step());
            assert_eq!(a.drain_pressure(), b.drain_pressure());
            assert_eq!(a.should_fail_alloc(), b.should_fail_alloc());
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::from_seed(1);
        let mut b = FaultPlan::from_seed(2);
        let va: Vec<bool> = (0..256).map(|_| a.skip_mark_step()).collect();
        let vb: Vec<bool> = (0..256).map(|_| b.skip_mark_step()).collect();
        assert_ne!(va, vb);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn alloc_grace_guarantees_retry_progress() {
        let mut p = FaultPlan::new(FaultConfig {
            alloc_fail_pm: 1000, // always fail when not in grace
            alloc_grace: 3,
            ..FaultConfig::from_seed(7)
        });
        assert!(p.should_fail_alloc());
        assert!(!p.should_fail_alloc());
        assert!(!p.should_fail_alloc());
        assert!(!p.should_fail_alloc());
        assert!(p.should_fail_alloc(), "grace exhausted, fails again");
        assert_eq!(p.stats.alloc_failures, 2);
    }

    #[test]
    fn rates_roughly_match_per_mille() {
        let mut p = FaultPlan::from_seed(123);
        let n = 10_000;
        let hits = (0..n).filter(|_| p.roll(250)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn disabled_corruption_never_touches_the_stream() {
        let mut plain = FaultPlan::from_seed(42);
        let mut chaosless = FaultPlan::from_seed(42);
        for _ in 0..500 {
            assert!(!chaosless.corrupt_post_mark(), "knob is 0: never fires");
            assert_eq!(plain.skip_mark_step(), chaosless.skip_mark_step());
            assert_eq!(plain.should_fail_alloc(), chaosless.should_fail_alloc());
        }
        assert_eq!(
            plain.digest(),
            chaosless.digest(),
            "corrupt_post_mark with pm=0 must not consume decisions"
        );
    }

    #[test]
    fn enabled_corruption_fires_and_counts() {
        let mut p = FaultPlan::new(FaultConfig {
            corrupt_mark_pm: 1000,
            ..FaultConfig::from_seed(11)
        });
        assert!(p.corrupt_post_mark());
        assert_eq!(p.stats.mark_corruptions, 1);
        assert_eq!(p.stats.injected(), 1);
    }

    #[test]
    fn escalate_scales_rates_and_enables_corruption() {
        let base = FaultConfig::from_seed(3);
        assert_eq!(base.escalate(0), base, "level 0 is the identity");
        let l2 = base.escalate(2);
        assert_eq!(l2.seed, base.seed, "seed never changes");
        assert_eq!(l2.defer_start_pm, base.defer_start_pm * 3);
        assert!(l2.corrupt_mark_pm > 0, "chaos on from level 1 up");
        assert!(l2.alloc_grace < base.alloc_grace);
        // Rates saturate instead of overflowing.
        let hot = base.escalate(40);
        assert!(hot.defer_start_pm <= 1000);
        assert!(hot.alloc_grace >= 2, "grace floor keeps retries viable");
    }

    #[test]
    fn disabled_overload_never_touches_the_stream() {
        let mut plain = FaultPlan::from_seed(42);
        let mut quiet = FaultPlan::from_seed(42);
        for _ in 0..500 {
            assert!(quiet.overload_burst().is_none(), "knob is 0: never fires");
            assert_eq!(plain.skip_mark_step(), quiet.skip_mark_step());
            assert_eq!(plain.should_fail_alloc(), quiet.should_fail_alloc());
        }
        assert_eq!(
            plain.digest(),
            quiet.digest(),
            "overload_burst with pm=0 must not consume decisions"
        );
    }

    #[test]
    fn enabled_overload_fires_with_configured_length() {
        let mut p = FaultPlan::new(FaultConfig {
            overload_burst_pm: 1000,
            overload_burst_len: 7,
            ..FaultConfig::from_seed(11)
        });
        assert_eq!(p.overload_burst(), Some(7));
        assert_eq!(p.stats.overload_bursts, 1);
        assert_eq!(p.stats.injected(), 1);
        let e = FaultConfig::from_seed(11).escalate(2);
        assert_eq!(e.overload_burst_pm, 0, "scaling zero stays zero");
    }

    #[test]
    fn stats_display_and_injected() {
        let mut p = FaultPlan::new(FaultConfig {
            skip_step_pm: 1000,
            ..FaultConfig::from_seed(9)
        });
        assert!(p.skip_mark_step());
        assert_eq!(p.stats.injected(), 1);
        assert!(p.stats.to_string().contains("skipped steps"));
    }
}
