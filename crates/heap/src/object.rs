//! Heap object representation.

use crate::value::{GcRef, Value};

/// Tracing state of an object array, for the §4.3 optimistic
/// array-rearrangement protocol: the concurrent marker records whether it
/// has started/finished scanning the array, and rearrangement loops whose
/// barriers were elided consult the state to detect interference.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TraceState {
    /// The marker has not reached this array in the current cycle.
    #[default]
    Untraced,
    /// The marker is currently scanning this array.
    Tracing,
    /// The marker finished scanning this array in the current cycle.
    Traced,
}

/// Payload of a heap object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjKind {
    /// A class instance: one slot per declared field.
    Object(Vec<Value>),
    /// An array of nullable references.
    RefArray(Vec<Option<GcRef>>),
    /// An array of integers.
    IntArray(Vec<i64>),
}

/// A heap object: a class/array tag, the §4.3 tracing state, and the
/// payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeapObject {
    /// Class id for instances, element-class id for reference arrays,
    /// [`HeapObject::INT_ARRAY_TAG`] for int arrays. The heap never
    /// interprets the tag; the interpreter uses it for dynamic checks.
    pub class_tag: u32,
    /// §4.3 array tracing state (meaningful for arrays; kept on all
    /// objects for uniformity).
    pub trace_state: TraceState,
    /// Payload.
    pub kind: ObjKind,
}

impl HeapObject {
    /// Tag used for int arrays.
    pub const INT_ARRAY_TAG: u32 = u32::MAX;

    /// Number of payload slots (fields or elements).
    pub fn len(&self) -> usize {
        match &self.kind {
            ObjKind::Object(fields) => fields.len(),
            ObjKind::RefArray(elems) => elems.len(),
            ObjKind::IntArray(elems) => elems.len(),
        }
    }

    /// True if the payload has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the outgoing references of this object (the slots
    /// the garbage collector must trace).
    pub fn outgoing_refs(&self) -> impl Iterator<Item = GcRef> + '_ {
        let (fields, elems): (&[Value], &[Option<GcRef>]) = match &self.kind {
            ObjKind::Object(fields) => (fields.as_slice(), &[]),
            ObjKind::RefArray(elems) => (&[], elems.as_slice()),
            ObjKind::IntArray(_) => (&[], &[]),
        };
        fields
            .iter()
            .filter_map(|v| match v {
                Value::Ref(Some(r)) => Some(*r),
                _ => None,
            })
            .chain(elems.iter().filter_map(|e| *e))
    }

    /// Abstract size in "words" used by heap statistics and the pause
    /// model: header (2) plus one word per slot.
    pub fn size_words(&self) -> usize {
        2 + self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outgoing_refs_of_object() {
        let o = HeapObject {
            class_tag: 0,
            trace_state: TraceState::default(),
            kind: ObjKind::Object(vec![Value::Int(3), Value::Ref(Some(GcRef(7))), Value::NULL]),
        };
        assert_eq!(o.outgoing_refs().collect::<Vec<_>>(), vec![GcRef(7)]);
        assert_eq!(o.len(), 3);
        assert_eq!(o.size_words(), 5);
    }

    #[test]
    fn outgoing_refs_of_ref_array() {
        let o = HeapObject {
            class_tag: 1,
            trace_state: TraceState::Untraced,
            kind: ObjKind::RefArray(vec![None, Some(GcRef(2)), Some(GcRef(4))]),
        };
        assert_eq!(
            o.outgoing_refs().collect::<Vec<_>>(),
            vec![GcRef(2), GcRef(4)]
        );
    }

    #[test]
    fn int_arrays_have_no_outgoing_refs() {
        let o = HeapObject {
            class_tag: HeapObject::INT_ARRAY_TAG,
            trace_state: TraceState::Untraced,
            kind: ObjKind::IntArray(vec![1, 2, 3]),
        };
        assert_eq!(o.outgoing_refs().count(), 0);
        assert!(!o.is_empty());
    }
}
