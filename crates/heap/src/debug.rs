//! Heap introspection: summaries, object dumps, and reachability
//! statistics for debugging GC behaviour and writing assertions in
//! tests.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use crate::heap::Heap;
use crate::object::ObjKind;
use crate::value::{GcRef, Value};

/// Aggregate heap statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapSummary {
    /// Live objects.
    pub live: usize,
    /// Free (reusable) slots.
    pub free_slots: usize,
    /// Total live words (headers + payload).
    pub live_words: usize,
    /// Live objects per class tag.
    pub by_class: BTreeMap<u32, usize>,
    /// Total reference edges between live objects.
    pub ref_edges: usize,
}

/// Computes a [`HeapSummary`].
pub fn summarize(heap: &Heap) -> HeapSummary {
    let mut s = HeapSummary {
        free_slots: heap.store.capacity() - heap.store.live_count(),
        ..HeapSummary::default()
    };
    for (_, obj) in heap.store.iter_live() {
        s.live += 1;
        s.live_words += obj.size_words();
        *s.by_class.entry(obj.class_tag).or_default() += 1;
        s.ref_edges += obj.outgoing_refs().count();
    }
    s
}

impl fmt::Display for HeapSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} live objects ({} words, {} ref edges), {} free slots",
            self.live, self.live_words, self.ref_edges, self.free_slots
        )?;
        for (tag, n) in &self.by_class {
            writeln!(f, "  class #{tag}: {n}")?;
        }
        Ok(())
    }
}

/// FNV-1a over a byte stream; the digest primitive for world digests.
fn fnv1a(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn value_bytes(v: Value) -> [u8; 9] {
    let (tag, payload) = match v {
        Value::Int(i) => (0u8, i as u64),
        Value::Ref(None) => (1, 0),
        Value::Ref(Some(r)) => (2, u64::from(r.0)),
    };
    let mut out = [0u8; 9];
    out[0] = tag;
    out[1..].copy_from_slice(&payload.to_le_bytes());
    out
}

/// FNV-1a digest of the observable world: every live object's slot
/// index, class tag, and payload (in slot order), followed by the
/// statics. Two runs that build identical heaps produce identical
/// digests regardless of which execution engine drove the mutator —
/// the property the engine-equivalence tests pin.
pub fn world_digest(heap: &Heap) -> u64 {
    let mut h = fnv1a(0, (heap.store.live_count() as u64).to_le_bytes());
    for (r, obj) in heap.store.iter_live() {
        h = fnv1a(h, u64::from(r.0).to_le_bytes());
        h = fnv1a(h, u64::from(obj.class_tag).to_le_bytes());
        match &obj.kind {
            ObjKind::Object(fields) => {
                h = fnv1a(h, [0u8]);
                for &v in fields {
                    h = fnv1a(h, value_bytes(v));
                }
            }
            ObjKind::RefArray(elems) => {
                h = fnv1a(h, [1u8]);
                for &e in elems {
                    h = fnv1a(h, value_bytes(Value::Ref(e)));
                }
            }
            ObjKind::IntArray(elems) => {
                h = fnv1a(h, [2u8]);
                for &e in elems {
                    h = fnv1a(h, e.to_le_bytes());
                }
            }
        }
    }
    for i in 0..heap.static_count() {
        if let Ok(v) = heap.get_static(i) {
            h = fnv1a(h, value_bytes(v));
        }
    }
    h
}

/// Reachability statistics from a root set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Objects reachable from the roots.
    pub reachable: usize,
    /// Live objects not reachable (floating garbage).
    pub unreachable: usize,
    /// Longest shortest-path distance from any root (BFS depth).
    pub max_depth: usize,
}

/// BFS over the live object graph from `roots`.
pub fn graph_stats(heap: &Heap, roots: &[GcRef]) -> GraphStats {
    let mut seen: BTreeSet<GcRef> = BTreeSet::new();
    let mut queue: VecDeque<(GcRef, usize)> = VecDeque::new();
    for &r in roots {
        if heap.store.is_live(r) && seen.insert(r) {
            queue.push_back((r, 0));
        }
    }
    let mut max_depth = 0;
    while let Some((r, d)) = queue.pop_front() {
        max_depth = max_depth.max(d);
        if let Ok(obj) = heap.store.get(r) {
            for child in obj.outgoing_refs() {
                if heap.store.is_live(child) && seen.insert(child) {
                    queue.push_back((child, d + 1));
                }
            }
        }
    }
    GraphStats {
        reachable: seen.len(),
        unreachable: heap.store.live_count() - seen.len(),
        max_depth,
    }
}

/// Renders one object (shallow).
pub fn dump_object(heap: &Heap, r: GcRef) -> String {
    match heap.store.get(r) {
        Err(_) => format!("{r}: <dangling>"),
        Ok(obj) => {
            let body = match &obj.kind {
                ObjKind::Object(fields) => {
                    let fs: Vec<String> = fields.iter().map(|v| v.to_string()).collect();
                    format!("{{{}}}", fs.join(", "))
                }
                ObjKind::RefArray(elems) => {
                    let es: Vec<String> = elems
                        .iter()
                        .map(|e| e.map(|r| r.to_string()).unwrap_or_else(|| "null".into()))
                        .collect();
                    format!("[{}]", es.join(", "))
                }
                ObjKind::IntArray(elems) => format!("{elems:?}"),
            };
            format!(
                "{r}: class #{} {} ({:?})",
                obj.class_tag, body, obj.trace_state
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::MarkStyle;
    use crate::value::{FieldShape, Value};

    fn setup() -> (Heap, GcRef, GcRef, GcRef) {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = h
            .alloc_object(0, &[FieldShape::Ref, FieldShape::Int])
            .unwrap();
        let b = h.alloc_object(1, &[FieldShape::Ref]).unwrap();
        let arr = h.alloc_ref_array(2, 3).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.set_elem(arr, 0, Some(a)).unwrap();
        (h, a, b, arr)
    }

    #[test]
    fn summary_counts_everything() {
        let (h, ..) = setup();
        let s = summarize(&h);
        assert_eq!(s.live, 3);
        assert_eq!(s.free_slots, 0);
        assert_eq!(s.by_class.len(), 3);
        // a→b and arr[0]→a.
        assert_eq!(s.ref_edges, 2);
        assert!(s.to_string().contains("3 live objects"));
    }

    #[test]
    fn graph_stats_reports_depth_and_garbage() {
        let (h, a, _b, arr) = setup();
        let g = graph_stats(&h, &[arr]);
        assert_eq!(g.reachable, 3); // arr → a → b
        assert_eq!(g.unreachable, 0);
        assert_eq!(g.max_depth, 2);
        let g2 = graph_stats(&h, &[a]);
        assert_eq!(g2.reachable, 2);
        assert_eq!(g2.unreachable, 1, "arr floats");
    }

    #[test]
    fn object_dump_formats() {
        let (h, a, b, arr) = setup();
        let d = dump_object(&h, a);
        assert!(d.contains("class #0"), "{d}");
        assert!(d.contains(&b.to_string()), "{d}");
        let d = dump_object(&h, arr);
        assert!(d.contains("null"), "{d}");
        let mut h2 = h;
        h2.store.remove(b);
        assert!(dump_object(&h2, b).contains("dangling"));
    }
}
