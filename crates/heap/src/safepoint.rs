//! SATB safepoint protocol primitives.
//!
//! Shared by the deterministic scheduler ([`crate::sched`]) and the
//! real-thread demo ([`crate::threaded`]):
//!
//! * [`SatbBuffer`] — a per-thread SATB log buffer. The mutator's write
//!   barrier appends overwritten non-null references here instead of
//!   touching shared collector state; the buffer is drained into the
//!   collector at **safepoints** (and, finally, at the stop-the-world
//!   remark rendezvous). Thread-local buffering is what lets many
//!   mutators run barriers without a lock on the marker's queue, and the
//!   flush-at-safepoint rule is what keeps the snapshot invariant: every
//!   logged pre-value reaches the collector before the cycle's remark.
//! * [`EpochState`] — the marking-phase epoch. Starting a cycle *arms*
//!   a new epoch; each mutator acknowledges it at a safepoint. The
//!   snapshot (`begin_marking`) is taken only once **all** mutators have
//!   acknowledged, so any store executed after the snapshot point is
//!   executed by a thread that already knows marking is on and therefore
//!   logs its pre-values. A thread that has not yet acknowledged the
//!   current epoch must not run *elided* code either
//!   ([`EpochState::elide_allowed`]): until the thread has synchronized
//!   with the cycle, it takes the conservative full-barrier path.
//!
//! The types here are plain (no atomics): the deterministic scheduler
//! uses them directly, and the threaded demo wraps them behind its own
//! synchronization.

use std::fmt;

use crate::gc::GcState;
use crate::value::GcRef;

/// Error: a snapshot was attempted before every mutator had
/// acknowledged the armed epoch. Taking the snapshot anyway would let
/// an unsynchronized thread run elided (barrier-free) stores against a
/// snapshot it does not know exists — the exact unsoundness the epoch
/// protocol prevents. Release builds surface this as an error instead
/// of silently proceeding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotBeforeAck {
    /// The epoch the snapshot was attempted for.
    pub epoch: u64,
    /// Threads that had acknowledged it.
    pub acked: usize,
    /// Threads the epoch waits on in total.
    pub threads: usize,
}

impl fmt::Display for SnapshotBeforeAck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "snapshot before full acknowledgement: epoch {} acked by {}/{} threads",
            self.epoch, self.acked, self.threads
        )
    }
}

impl std::error::Error for SnapshotBeforeAck {}

/// Counters for one per-thread SATB buffer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SatbBufferStats {
    /// Entries logged by the owning thread's barriers.
    pub logged: u64,
    /// Flushes performed (safepoints + rendezvous).
    pub flushes: u64,
    /// Deepest the buffer ever got before a flush.
    pub max_depth: usize,
}

/// A per-thread SATB log buffer with flush accounting.
#[derive(Clone, Debug, Default)]
pub struct SatbBuffer {
    entries: Vec<GcRef>,
    /// Lifetime counters.
    pub stats: SatbBufferStats,
}

impl SatbBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        SatbBuffer::default()
    }

    /// Barrier payload: log an overwritten non-null reference.
    pub fn log(&mut self, old: GcRef) {
        self.entries.push(old);
        self.stats.logged += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.entries.len());
    }

    /// Current (unflushed) depth.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Drains the buffer into the collector's shared SATB queue.
    /// Returns the depth at flush time (what the telemetry histogram
    /// records).
    pub fn flush_into(&mut self, gc: &mut GcState) -> usize {
        let depth = self.entries.len();
        self.stats.flushes += 1;
        gc.satb_flush(self.entries.drain(..));
        depth
    }
}

/// Counters for the epoch protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Epochs armed (cycles requested).
    pub armed: u64,
    /// Acknowledgements recorded.
    pub acks: u64,
    /// Elision attempts gated because the thread had not yet
    /// acknowledged the armed epoch.
    pub gated_elisions: u64,
}

/// Phase of the marking-epoch protocol, as seen by the safepoint layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EpochPhase {
    /// No cycle requested; barriers may be skipped, elision always
    /// allowed.
    #[default]
    Idle,
    /// A cycle was requested; mutators acknowledge at safepoints. The
    /// snapshot has not been taken yet.
    Armed,
    /// All mutators acknowledged and the snapshot was taken
    /// (`begin_marking` ran); acknowledged threads log pre-values.
    Marking,
}

/// Marking-phase epoch bookkeeping for a fixed set of mutator threads.
#[derive(Clone, Debug)]
pub struct EpochState {
    epoch: u64,
    phase: EpochPhase,
    acks: Vec<u64>,
    /// Lifetime counters.
    pub stats: EpochStats,
}

impl EpochState {
    /// Creates epoch state for `threads` mutators, all caught up with
    /// epoch 0 (idle).
    pub fn new(threads: usize) -> Self {
        EpochState {
            epoch: 0,
            phase: EpochPhase::Idle,
            acks: vec![0; threads],
            stats: EpochStats::default(),
        }
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current protocol phase.
    pub fn phase(&self) -> EpochPhase {
        self.phase
    }

    /// Arms a new epoch: a marking cycle was requested. Returns the new
    /// epoch number. No mutator has acknowledged it yet.
    pub fn arm(&mut self) -> u64 {
        self.epoch += 1;
        self.phase = EpochPhase::Armed;
        self.stats.armed += 1;
        self.epoch
    }

    /// Records that the snapshot was taken (all mutators had
    /// acknowledged; `begin_marking` ran).
    ///
    /// # Errors
    ///
    /// [`SnapshotBeforeAck`] if some mutator has not acknowledged the
    /// current epoch — a protocol violation the caller must surface
    /// (the phase is left unchanged, so no thread observes a snapshot
    /// it never synchronized with).
    pub fn snapshot_taken(&mut self) -> Result<(), SnapshotBeforeAck> {
        if !self.all_acked() {
            return Err(SnapshotBeforeAck {
                epoch: self.epoch,
                acked: self.acks.iter().filter(|&&a| a == self.epoch).count(),
                threads: self.acks.len(),
            });
        }
        self.phase = EpochPhase::Marking;
        Ok(())
    }

    /// Ends the cycle: the remark + sweep completed and the world
    /// resumed.
    pub fn end_cycle(&mut self) {
        self.phase = EpochPhase::Idle;
    }

    /// Thread `tid` acknowledges the current epoch (at a safepoint).
    pub fn ack(&mut self, tid: usize) {
        if self.acks[tid] != self.epoch {
            self.acks[tid] = self.epoch;
            self.stats.acks += 1;
        }
    }

    /// Has `tid` acknowledged the current epoch?
    pub fn acked(&self, tid: usize) -> bool {
        self.acks[tid] == self.epoch
    }

    /// Have all threads acknowledged the current epoch?
    pub fn all_acked(&self) -> bool {
        self.acks.iter().all(|&a| a == self.epoch)
    }

    /// The thread's *local* view of "is marking in progress": true only
    /// once the thread has acknowledged an epoch whose snapshot exists.
    /// Stores by a thread whose local view is idle need not log — they
    /// happen (logically) before the snapshot point, whose root scan
    /// sees their effect.
    pub fn local_marking(&self, tid: usize) -> bool {
        self.phase == EpochPhase::Marking && self.acked(tid)
    }

    /// May `tid` run statically-elided (barrier-free) code right now?
    /// Allowed when no epoch is pending, or once the thread has
    /// acknowledged the current one. Records a gating event otherwise.
    pub fn elide_allowed(&mut self, tid: usize) -> bool {
        if self.phase == EpochPhase::Idle || self.acked(tid) {
            true
        } else {
            self.stats.gated_elisions += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::MarkStyle;
    use crate::heap::Heap;
    use crate::value::{FieldShape, Value};

    #[test]
    fn buffer_logs_flushes_and_tracks_depth() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        let b = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.gc.begin_marking(&mut h.store, &[a]);
        let mut buf = SatbBuffer::new();
        buf.log(a);
        buf.log(b);
        assert_eq!(buf.depth(), 2);
        assert_eq!(buf.flush_into(&mut h.gc), 2);
        assert_eq!(buf.depth(), 0);
        assert_eq!(buf.stats.logged, 2);
        assert_eq!(buf.stats.flushes, 1);
        assert_eq!(buf.stats.max_depth, 2);
        assert!(h.gc.has_pending_work());
    }

    #[test]
    fn idle_flush_drops_entries() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = h.alloc_object(0, &[]).unwrap();
        let mut buf = SatbBuffer::new();
        buf.log(a);
        assert_eq!(buf.flush_into(&mut h.gc), 1, "depth reported");
        assert!(!h.gc.has_pending_work(), "idle collector accepted nothing");
        assert_eq!(h.gc.stats.satb_logs, 0);
    }

    #[test]
    fn epoch_protocol_gates_elision_until_ack() {
        let mut e = EpochState::new(2);
        assert!(e.elide_allowed(0) && e.elide_allowed(1));
        e.arm();
        assert_eq!(e.phase(), EpochPhase::Armed);
        assert!(!e.elide_allowed(0), "unacked thread may not elide");
        assert!(!e.local_marking(0));
        e.ack(0);
        assert!(e.elide_allowed(0));
        assert!(!e.all_acked());
        assert!(!e.local_marking(0), "snapshot not yet taken");
        e.ack(1);
        assert!(e.all_acked());
        e.snapshot_taken().unwrap();
        assert!(e.local_marking(0) && e.local_marking(1));
        e.end_cycle();
        assert!(!e.local_marking(0));
        assert!(e.elide_allowed(0));
        assert_eq!(e.stats.armed, 1);
        assert_eq!(e.stats.acks, 2);
        assert_eq!(e.stats.gated_elisions, 1);
    }

    #[test]
    fn premature_snapshot_is_a_real_error() {
        let mut e = EpochState::new(3);
        e.arm();
        e.ack(0);
        let err = e.snapshot_taken().unwrap_err();
        assert_eq!(
            err,
            SnapshotBeforeAck {
                epoch: 1,
                acked: 1,
                threads: 3
            }
        );
        assert!(err.to_string().contains("1/3"));
        assert_eq!(e.phase(), EpochPhase::Armed, "phase unchanged on rejection");
        e.ack(1);
        e.ack(2);
        e.snapshot_taken().unwrap();
        assert_eq!(e.phase(), EpochPhase::Marking);
    }

    #[test]
    fn reacking_same_epoch_counts_once() {
        let mut e = EpochState::new(1);
        e.arm();
        e.ack(0);
        e.ack(0);
        assert_eq!(e.stats.acks, 1);
    }

    #[test]
    fn pre_snapshot_store_is_sound_without_logging() {
        // A store executed after arm but before the snapshot needs no
        // log: the snapshot's root scan sees the post-store heap, so the
        // overwritten value is not part of the snapshot obligation.
        let mut h = Heap::new(MarkStyle::Satb);
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        let b = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.set_field(a, 0, Value::from(b)).unwrap();
        let mut e = EpochState::new(1);
        e.arm();
        // Mutator (unacked, local view idle): a.f0 = null, no log.
        assert!(!e.local_marking(0));
        h.set_field(a, 0, Value::NULL).unwrap();
        e.ack(0);
        h.gc.begin_marking(&mut h.store, &[a]);
        e.snapshot_taken().unwrap();
        h.gc.remark(&mut h.store, &[a]);
        e.end_cycle();
        assert!(!h.gc.is_marked(b), "b died before the snapshot");
        assert_eq!(h.sweep(), 1);
    }
}
