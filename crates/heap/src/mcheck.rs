//! Interleaving model checker for elided barriers.
//!
//! Explores many schedules of the deterministic multi-mutator world in
//! [`crate::sched`] and audits each one with the lost-object invariant:
//! no object in the snapshot-reachable set recorded at `begin_marking`
//! may be freed by that cycle's sweep. Two exploration strategies:
//!
//! * **Random** ([`CheckerConfig::systematic`] = false): schedule `k`
//!   runs under seed `mix64(base_seed, k)`; a failing schedule is
//!   reported with its exact seed, and replaying that seed reproduces
//!   the identical trace digest.
//! * **Systematic**: preemption-bounded DFS. The first schedule is the
//!   non-preemptive default; after each run the explorer branches at
//!   the deepest step whose runnable set offered an untried choice,
//!   provided the resulting prefix stays within the preemption bound.
//!   Failing schedules are reported with the forced choice prefix that
//!   replays them.
//!
//! Both strategies stop early once [`CheckerConfig::max_failures`]
//! failing schedules are collected, and both cap total work at
//! [`CheckerConfig::schedules`] runs.

use std::fmt;

use crate::sched::{
    run_schedule, SchedConfig, SchedCounters, ScheduleOutcome, SchedulePolicy, ScheduleViolation,
};

/// SplitMix64 finalizer mixing a base seed with a schedule index —
/// the same derivation the verification harness uses for workload
/// fault seeds, so seed reporting is uniform across tools.
pub fn mix_seed(base: u64, k: u64) -> u64 {
    let mut z = base ^ k.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Model-checker configuration.
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// The world being explored.
    pub sched: SchedConfig,
    /// Maximum schedules to run.
    pub schedules: u64,
    /// Base seed (random mode) — per-schedule seeds derive from it.
    pub seed: u64,
    /// Use the systematic preemption-bounded DFS explorer.
    pub systematic: bool,
    /// Preemption bound for the systematic explorer.
    pub preempt_bound: usize,
    /// Stop exploring after this many failing schedules.
    pub max_failures: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            sched: SchedConfig::default(),
            schedules: 50,
            seed: 1,
            systematic: false,
            preempt_bound: 2,
            max_failures: 3,
        }
    }
}

/// How to replay one failing schedule exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Replay {
    /// Random mode: rerun with this exact schedule seed.
    Seed(u64),
    /// Systematic mode: rerun with this forced choice prefix.
    Prefix(Vec<u8>),
}

impl Replay {
    /// The [`SchedulePolicy`] that reproduces the schedule.
    pub fn policy(&self) -> SchedulePolicy {
        match self {
            Replay::Seed(seed) => SchedulePolicy::Random { seed: *seed },
            Replay::Prefix(prefix) => SchedulePolicy::Scripted {
                prefix: prefix.clone(),
            },
        }
    }
}

impl fmt::Display for Replay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Replay::Seed(seed) => write!(f, "--replay {seed:#x}"),
            Replay::Prefix(prefix) => {
                write!(f, "prefix[{}]=", prefix.len())?;
                for &c in prefix.iter().take(64) {
                    write!(f, "{c:x}")?;
                }
                if prefix.len() > 64 {
                    write!(f, "…")?;
                }
                Ok(())
            }
        }
    }
}

/// One failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct FailingSchedule {
    /// Index of the schedule in exploration order.
    pub index: u64,
    /// Exact replay handle (seed or choice prefix).
    pub replay: Replay,
    /// Trace digest; a replay must reproduce this value.
    pub digest: u64,
    /// The violations observed.
    pub violations: Vec<ScheduleViolation>,
    /// Tail of the schedule trace (thread choice per step, marker =
    /// `threads`), for human inspection.
    pub trace_tail: Vec<u8>,
}

impl fmt::Display for FailingSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule #{} digest={:#018x} replay: {}",
            self.index, self.digest, self.replay
        )?;
        write!(f, "  trace tail:")?;
        for &c in &self.trace_tail {
            write!(f, " {c}")?;
        }
        writeln!(f)?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// Aggregate result of one model-checking run.
#[derive(Clone, Debug)]
pub struct McheckReport {
    /// Schedules actually executed.
    pub explored: u64,
    /// Marking cycles completed across all schedules.
    pub cycles: u64,
    /// Scheduler steps executed across all schedules.
    pub steps: u64,
    /// Counter totals across all schedules.
    pub totals: SchedCounters,
    /// Failing schedules (empty ⇔ every explored schedule was sound).
    pub failures: Vec<FailingSchedule>,
}

impl McheckReport {
    /// True when no explored schedule violated the invariants.
    pub fn sound(&self) -> bool {
        self.failures.is_empty()
    }
}

fn accumulate(report: &mut McheckReport, out: &ScheduleOutcome) {
    report.explored += 1;
    report.cycles += out.counters.cycles;
    report.steps += out.counters.steps;
    report.totals.merge(&out.counters);
}

fn record_failure(report: &mut McheckReport, index: u64, replay: Replay, out: &ScheduleOutcome) {
    let tail_start = out.trace.len().saturating_sub(24);
    report.failures.push(FailingSchedule {
        index,
        replay,
        digest: out.digest(),
        violations: out.violations.clone(),
        trace_tail: out.trace[tail_start..].to_vec(),
    });
}

/// Runs the model checker per `cfg` and returns the aggregate report.
pub fn run_mcheck(cfg: &CheckerConfig) -> McheckReport {
    let mut report = McheckReport {
        explored: 0,
        cycles: 0,
        steps: 0,
        totals: SchedCounters::default(),
        failures: Vec::new(),
    };
    if cfg.systematic {
        explore_systematic(cfg, &mut report);
    } else {
        for k in 0..cfg.schedules {
            let seed = mix_seed(cfg.seed, k);
            let out = run_schedule(&cfg.sched, &SchedulePolicy::Random { seed });
            accumulate(&mut report, &out);
            if !out.violations.is_empty() {
                record_failure(&mut report, k, Replay::Seed(seed), &out);
                if report.failures.len() >= cfg.max_failures {
                    break;
                }
            }
        }
    }
    report
}

/// Replays one schedule by its random-mode seed.
pub fn replay_seed(sched: &SchedConfig, seed: u64) -> ScheduleOutcome {
    run_schedule(sched, &SchedulePolicy::Random { seed })
}

/// Preemptions in `trace` given the per-step runnable masks, counting
/// only steps at index ≥ 1 (the first step cannot preempt).
fn preemptions_upto(trace: &[u8], runnable: &[u32], upto: usize) -> usize {
    let mut n = 0;
    for t in 1..upto.min(trace.len()) {
        let prev = trace[t - 1];
        if trace[t] != prev && runnable[t] & (1u32 << prev) != 0 {
            n += 1;
        }
    }
    n
}

/// Preemption-bounded systematic exploration in iterative
/// context-bounding order (Musuvathi & Qadeer): the frontier is
/// explored fewest-preemptions-first, shallowest-first. The first
/// schedule is the non-preemptive default; each executed schedule
/// contributes branch points — steps beyond its forced prefix where
/// another thread was runnable — pruned against the preemption bound.
/// Low-preemption schedules are both the cheapest to enumerate and,
/// empirically, where concurrency bugs live: the demo-unsound elision
/// is caught by a single ill-timed context switch.
fn explore_systematic(cfg: &CheckerConfig, report: &mut McheckReport) {
    // Frontier entries: (preemptions of the forced prefix, prefix).
    let mut frontier: Vec<(usize, Vec<u8>)> = vec![(0, Vec::new())];
    // Bound frontier memory independently of trace lengths.
    let frontier_cap = (cfg.schedules as usize).saturating_mul(8).max(64);
    while !frontier.is_empty() {
        if report.explored >= cfg.schedules || report.failures.len() >= cfg.max_failures {
            break;
        }
        // Pop the fewest-preemption, shallowest prefix.
        let best = frontier
            .iter()
            .enumerate()
            .min_by_key(|(_, (p, prefix))| (*p, prefix.len()))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let (_, prefix) = frontier.swap_remove(best);
        let index = report.explored;
        let out = run_schedule(
            &cfg.sched,
            &SchedulePolicy::Scripted {
                prefix: prefix.clone(),
            },
        );
        accumulate(report, &out);
        if !out.violations.is_empty() {
            // The full trace is the replay prefix: forcing every choice
            // reproduces the schedule exactly.
            record_failure(report, index, Replay::Prefix(out.trace.clone()), &out);
            continue;
        }
        // New branch points beyond the forced prefix.
        'branches: for t in prefix.len()..out.trace.len() {
            let chosen = out.trace[t];
            let mask = out.runnable[t];
            // Preemptions inside `trace[..t]` — the shared part of every
            // prefix branched at `t`.
            let base = preemptions_upto(&out.trace, &out.runnable, t);
            for alt in 0..=cfg.sched.threads as u8 {
                if alt == chosen || mask & (1u32 << alt) == 0 {
                    continue;
                }
                let extra = usize::from(
                    t > 0 && alt != out.trace[t - 1] && mask & (1u32 << out.trace[t - 1]) != 0,
                );
                if base + extra > cfg.preempt_bound {
                    continue;
                }
                let mut branched = out.trace[..t].to_vec();
                branched.push(alt);
                frontier.push((base + extra, branched));
                if frontier.len() >= frontier_cap {
                    break 'branches;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Scenario, ViolationKind};

    #[test]
    fn mix_seed_matches_harness_derivation() {
        // Pinned: this must stay equal to wbe-harness's mix_seed.
        assert_eq!(mix_seed(1, 0), mix_seed(1, 0));
        assert_ne!(mix_seed(1, 0), mix_seed(1, 1));
        assert_ne!(mix_seed(1, 0), mix_seed(2, 0));
    }

    #[test]
    fn random_exploration_is_sound_on_stock_world() {
        let cfg = CheckerConfig {
            sched: SchedConfig {
                threads: 3,
                scenario: Scenario::Shared,
                ..SchedConfig::default()
            },
            schedules: 30,
            seed: 1,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        assert!(report.sound(), "{:?}", report.failures);
        assert_eq!(report.explored, 30);
        assert!(report.cycles >= 30, "every schedule completes ≥1 cycle");
    }

    #[test]
    fn random_mode_finds_demo_unsound_and_replays_to_same_digest() {
        let cfg = CheckerConfig {
            sched: SchedConfig {
                threads: 2,
                scenario: Scenario::Churn,
                demo_unsound: true,
                ..SchedConfig::default()
            },
            schedules: 200,
            seed: 1,
            max_failures: 1,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        assert!(!report.sound(), "demo-unsound must be caught");
        let fail = &report.failures[0];
        assert!(fail
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::LostObject));
        let Replay::Seed(seed) = fail.replay else {
            panic!("random mode reports seeds");
        };
        let replay = replay_seed(&cfg.sched, seed);
        assert_eq!(replay.digest(), fail.digest, "replay digest must match");
        assert_eq!(replay.violations, fail.violations);
    }

    #[test]
    fn systematic_exploration_is_sound_and_branches() {
        let cfg = CheckerConfig {
            sched: SchedConfig {
                threads: 2,
                ops_per_thread: 12,
                scenario: Scenario::Churn,
                ..SchedConfig::default()
            },
            schedules: 40,
            systematic: true,
            preempt_bound: 1,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        assert!(report.sound(), "{:?}", report.failures);
        assert!(report.explored > 1, "DFS must branch beyond the root");
        assert_eq!(report.explored, 40, "explores up to the schedule cap");
    }

    #[test]
    fn systematic_mode_finds_demo_unsound_with_replayable_prefix() {
        let cfg = CheckerConfig {
            sched: SchedConfig {
                threads: 2,
                ops_per_thread: 16,
                scenario: Scenario::Churn,
                demo_unsound: true,
                ..SchedConfig::default()
            },
            schedules: 400,
            systematic: true,
            preempt_bound: 2,
            max_failures: 1,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        assert!(
            !report.sound(),
            "systematic explorer must catch the elision"
        );
        let fail = &report.failures[0];
        let out = run_schedule(&cfg.sched, &fail.replay.policy());
        assert_eq!(out.digest(), fail.digest, "prefix replay must match");
    }

    #[test]
    fn failure_report_formats_with_replay_handle() {
        let cfg = CheckerConfig {
            sched: SchedConfig {
                threads: 2,
                scenario: Scenario::Churn,
                demo_unsound: true,
                ..SchedConfig::default()
            },
            schedules: 200,
            seed: 1,
            max_failures: 1,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        let text = report.failures[0].to_string();
        assert!(text.contains("--replay"), "{text}");
        assert!(text.contains("lost-object"), "{text}");
    }
}
