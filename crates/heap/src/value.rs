//! Runtime values and heap references.

use std::fmt;

/// A reference to a heap object: an index into the heap's slot table.
///
/// `GcRef` is never null; nullable references are `Option<GcRef>`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GcRef(pub u32);

impl GcRef {
    /// Raw slot index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GcRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Display for GcRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A runtime value: a 64-bit integer or a nullable reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Reference value; `None` is null.
    Ref(Option<GcRef>),
}

impl Value {
    /// The null reference.
    pub const NULL: Value = Value::Ref(None);

    /// Returns the integer, or `None` if this is a reference.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Ref(_) => None,
        }
    }

    /// Returns the (nullable) reference, or `None` if this is an integer.
    pub fn as_ref_value(self) -> Option<Option<GcRef>> {
        match self {
            Value::Ref(r) => Some(r),
            Value::Int(_) => None,
        }
    }

    /// True if this is a reference (including null).
    pub fn is_ref(self) -> bool {
        matches!(self, Value::Ref(_))
    }

    /// True if this is the null reference.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Ref(None))
    }
}

impl Default for Value {
    /// The default value is the integer zero (the allocator picks
    /// [`Value::NULL`] for reference-shaped slots via [`FieldShape`]).
    fn default() -> Self {
        Value::Int(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Option<GcRef>> for Value {
    fn from(r: Option<GcRef>) -> Self {
        Value::Ref(r)
    }
}

impl From<GcRef> for Value {
    fn from(r: GcRef) -> Self {
        Value::Ref(Some(r))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Ref(None) => write!(f, "null"),
            Value::Ref(Some(r)) => write!(f, "{r}"),
        }
    }
}

/// Shape of one field slot, used by the zeroing allocator: reference
/// fields start null, integer fields start zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FieldShape {
    /// Integer field (zero-initialized).
    Int,
    /// Reference field (null-initialized).
    Ref,
}

impl FieldShape {
    /// The zero value for this shape.
    pub fn zero_value(self) -> Value {
        match self {
            FieldShape::Int => Value::Int(0),
            FieldShape::Ref => Value::NULL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection() {
        assert!(Value::NULL.is_null());
        assert!(Value::NULL.is_ref());
        assert!(!Value::Int(0).is_ref());
        assert!(!Value::Ref(Some(GcRef(1))).is_null());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from(GcRef(3)), Value::Ref(Some(GcRef(3))));
        assert_eq!(Value::from(None::<GcRef>), Value::NULL);
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_ref_value(), None);
        assert_eq!(Value::NULL.as_ref_value(), Some(None));
    }

    #[test]
    fn zero_values_match_shapes() {
        assert_eq!(FieldShape::Int.zero_value(), Value::Int(0));
        assert_eq!(FieldShape::Ref.zero_value(), Value::NULL);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::NULL.to_string(), "null");
        assert_eq!(Value::Ref(Some(GcRef(9))).to_string(), "#9");
    }

    #[test]
    fn value_fits_two_words() {
        assert!(std::mem::size_of::<Value>() <= 16);
    }
}
