//! Runtime recovery: barrier panic mode and elision revocation.
//!
//! The static analyses *prove* elisions sound, and two dynamic oracles
//! check those proofs at run time: the per-site pre-null oracle
//! (`Trap::UnsoundElision` in the interpreter) and the cycle-boundary
//! heap-invariant verifier ([`crate::verify`]). Until now both oracles
//! were terminal — any detected violation killed the run. This module
//! turns them into *bounded self-healing*, the runtime counterpart of
//! the analysis layer's "degraded ⇒ elide nothing" rule:
//!
//! 1. On a detected violation the [`RecoveryController`] enters
//!    **barrier panic mode**: every statically-elided barrier site is
//!    globally revoked, so the mutator takes the conservative
//!    full-barrier path from then on. The interpreter's barrier
//!    dispatch consults the controller before trusting an elision.
//! 2. The runtime forces a full **stop-the-world re-mark** from the
//!    roots, rebuilding the mark state the violation corrupted, then
//!    re-verifies the invariants and sweeps.
//! 3. On success the mutator **resumes** (with barriers conservatively
//!    restored); each elided site that executes afterwards is recorded
//!    in a per-site revocation table, joined into the elision
//!    provenance ledger so `wbe_tool ledger`/`explain` show runtime
//!    revocations alongside the static keep-codes.
//! 4. Only after [`RecoveryPolicy::max_attempts`] *consecutive failed*
//!    recoveries (the re-mark itself re-violates) does the original
//!    trap fire — persistent corruption (e.g. dangling references that
//!    no amount of re-marking can repair) still terminates the run.
//!
//! The controller is a plain struct (no atomics), like the rest of the
//! safepoint layer: the deterministic interpreter owns one directly.

use std::collections::BTreeSet;
use std::fmt;

/// A barrier site as the runtime identifies it: `(method ordinal,
/// block, instruction index)`. The heap crate has no IR types; the
/// interpreter maps its `(MethodId, InsnAddr)` pairs into this key.
pub type SiteKey = (u64, u32, u32);

/// What the controller tells the caller to do about a violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Enter panic mode, force a stop-the-world re-mark, and resume.
    Recover,
    /// The consecutive-failure budget is exhausted: raise the original
    /// trap.
    Trap,
}

/// Tunables for the recovery layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// `K`: consecutive failed recovery attempts before the original
    /// trap fires.
    pub max_attempts: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_attempts: 3 }
    }
}

/// Lifetime counters, mirrored into the registry as `gc.recovery.*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Recovery attempts started (violations that entered panic mode).
    pub attempted: u64,
    /// Attempts whose re-mark re-established the invariants.
    pub succeeded: u64,
    /// Attempts whose re-mark re-violated.
    pub failed: u64,
    /// Distinct sites with a runtime revocation record.
    pub revoked_sites: u64,
    /// Elided executions gated to the full-barrier path by panic mode.
    pub gated_elisions: u64,
    /// Transitions into panic mode (at most one per controller: panic
    /// is sticky).
    pub panic_entries: u64,
}

/// One runtime revocation: an elided site whose barrier was restored
/// because the run entered panic mode (or because its own oracle
/// fired). Joined into the provenance ledger by the harness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RevocationRecord {
    /// Method name, as the ledger spells it.
    pub method: String,
    /// Block id of the store.
    pub block: u32,
    /// Instruction index within the block.
    pub index: u32,
    /// Human-readable reason: the triggering check and its detail.
    pub reason: String,
    /// Short classifier of the trigger: `"oracle"` for a per-site
    /// pre-null oracle failure, `"invariant"` for a verifier failure.
    pub trigger: &'static str,
    /// The recovery attempt ordinal in force when the site was revoked.
    pub attempt: u64,
}

impl RevocationRecord {
    /// The ledger's site key rendering: `method@B<block>[<index>]`.
    pub fn site_key(&self) -> String {
        format!("{}@B{}[{}]", self.method, self.block, self.index)
    }
}

impl fmt::Display for RevocationRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "REVOKED {} — {} ({})",
            self.site_key(),
            self.reason,
            self.trigger
        )
    }
}

/// The recovery state machine: panic mode, the per-site revocation
/// table, and the consecutive-failure budget.
#[derive(Clone, Debug)]
pub struct RecoveryController {
    policy: RecoveryPolicy,
    panic_mode: bool,
    /// Reason panic mode was entered (the first triggering check);
    /// copied into revocation records created while gating.
    panic_reason: String,
    consecutive_failures: u32,
    in_attempt: bool,
    revoked: BTreeSet<SiteKey>,
    revocations: Vec<RevocationRecord>,
    /// Monotonic revocation generation: bumped on every panic-mode
    /// entry and every per-site revocation. Compiled execution engines
    /// bake elided fast paths against generation 0 and fall back to the
    /// guarded slow path once the counter moves, so self-healing
    /// revocations invalidate stale superinstructions without patching
    /// code.
    generation: u64,
    /// Lifetime counters.
    pub stats: RecoveryStats,
    published: RecoveryStats,
}

impl RecoveryController {
    /// A controller in normal (non-panic) mode.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryController {
            policy,
            panic_mode: false,
            panic_reason: String::new(),
            consecutive_failures: 0,
            in_attempt: false,
            revoked: BTreeSet::new(),
            revocations: Vec::new(),
            generation: 0,
            stats: RecoveryStats::default(),
            published: RecoveryStats::default(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Is barrier panic mode engaged? Panic is sticky: once a violation
    /// is detected, elisions stay revoked for the rest of the run even
    /// after a successful re-mark ("degraded ⇒ elide nothing").
    pub fn in_panic(&self) -> bool {
        self.panic_mode
    }

    /// The reason panic mode was entered (empty in normal mode).
    pub fn panic_reason(&self) -> &str {
        &self.panic_reason
    }

    /// The revocation generation. Zero means no elision has ever been
    /// invalidated: compiled fast paths for statically-elided sites are
    /// valid exactly while this stays 0. Bumped on panic entry and on
    /// each per-site revocation; never reset (panic is sticky and
    /// revocations are first-wins, so staleness is monotonic too).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Reports a detected violation. Returns [`RecoveryAction::Recover`]
    /// while the consecutive-failure budget lasts — entering (sticky)
    /// panic mode and opening a recovery attempt — or
    /// [`RecoveryAction::Trap`] once `max_attempts` consecutive
    /// recoveries have failed.
    pub fn on_violation(&mut self, reason: &str) -> RecoveryAction {
        if self.consecutive_failures >= self.policy.max_attempts {
            return RecoveryAction::Trap;
        }
        if !self.panic_mode {
            self.panic_mode = true;
            self.panic_reason = reason.to_string();
            self.stats.panic_entries += 1;
            self.generation += 1;
        }
        self.stats.attempted += 1;
        self.in_attempt = true;
        RecoveryAction::Recover
    }

    /// The open recovery attempt's re-mark re-violated.
    pub fn attempt_failed(&mut self) {
        if !self.in_attempt {
            return;
        }
        self.in_attempt = false;
        self.stats.failed += 1;
        self.consecutive_failures += 1;
    }

    /// The open recovery attempt's re-mark re-established the
    /// invariants; execution resumes (elisions stay revoked).
    pub fn recovered(&mut self) {
        if !self.in_attempt {
            return;
        }
        self.in_attempt = false;
        self.stats.succeeded += 1;
        self.consecutive_failures = 0;
    }

    /// Barrier-dispatch consult: may the statically-elided site run
    /// without its barrier? False once panic mode engaged or the site
    /// was individually revoked; each gating is counted.
    pub fn elide_allowed(&mut self, site: SiteKey) -> bool {
        if self.panic_mode || self.revoked.contains(&site) {
            self.stats.gated_elisions += 1;
            false
        } else {
            true
        }
    }

    /// Is there a revocation record for `site` already?
    pub fn site_revoked(&self, site: SiteKey) -> bool {
        self.revoked.contains(&site)
    }

    /// Records a per-site revocation (first revocation of a site wins;
    /// later calls are no-ops). `method` is the ledger-facing method
    /// name; `reason`/`trigger` name the check that forced it.
    pub fn revoke(&mut self, site: SiteKey, method: &str, reason: &str, trigger: &'static str) {
        if !self.revoked.insert(site) {
            return;
        }
        self.generation += 1;
        self.stats.revoked_sites += 1;
        self.revocations.push(RevocationRecord {
            method: method.to_string(),
            block: site.1,
            index: site.2,
            reason: reason.to_string(),
            trigger,
            attempt: self.stats.attempted,
        });
    }

    /// The revocation table, in revocation order.
    pub fn revocations(&self) -> &[RevocationRecord] {
        &self.revocations
    }

    /// Mirrors counter deltas since the previous publish into the
    /// global registry under `gc.recovery.*`.
    pub fn publish_metrics(&mut self) {
        if !wbe_telemetry::metrics_enabled() {
            return;
        }
        let (s, p) = (&self.stats, &self.published);
        for (name, cur, old) in [
            ("gc.recovery.attempted", s.attempted, p.attempted),
            ("gc.recovery.succeeded", s.succeeded, p.succeeded),
            ("gc.recovery.failed", s.failed, p.failed),
            (
                "gc.recovery.revoked_sites",
                s.revoked_sites,
                p.revoked_sites,
            ),
            (
                "gc.recovery.gated_elisions",
                s.gated_elisions,
                p.gated_elisions,
            ),
            (
                "gc.recovery.panic_entries",
                s.panic_entries,
                p.panic_entries,
            ),
        ] {
            wbe_telemetry::counter(name).add(cur - old);
        }
        self.published = self.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_until_budget_then_traps() {
        let mut rc = RecoveryController::new(RecoveryPolicy { max_attempts: 2 });
        assert_eq!(rc.on_violation("post-mark"), RecoveryAction::Recover);
        assert!(rc.in_panic());
        rc.attempt_failed();
        assert_eq!(rc.on_violation("post-mark"), RecoveryAction::Recover);
        rc.attempt_failed();
        assert_eq!(
            rc.on_violation("post-mark"),
            RecoveryAction::Trap,
            "K consecutive failures exhaust the budget"
        );
        assert_eq!(rc.stats.attempted, 2);
        assert_eq!(rc.stats.failed, 2);
        assert_eq!(rc.stats.succeeded, 0);
    }

    #[test]
    fn success_resets_failure_budget_but_panic_sticks() {
        let mut rc = RecoveryController::new(RecoveryPolicy { max_attempts: 1 });
        assert_eq!(rc.on_violation("a"), RecoveryAction::Recover);
        rc.recovered();
        assert!(rc.in_panic(), "panic mode is sticky after recovery");
        assert_eq!(rc.panic_reason(), "a");
        // A fresh violation gets a fresh budget.
        assert_eq!(rc.on_violation("b"), RecoveryAction::Recover);
        rc.attempt_failed();
        assert_eq!(rc.on_violation("b"), RecoveryAction::Trap);
        assert_eq!(rc.stats.succeeded, 1);
        assert_eq!(rc.stats.panic_entries, 1, "one sticky entry");
    }

    #[test]
    fn panic_gates_elision_and_records_each_site_once() {
        let mut rc = RecoveryController::new(RecoveryPolicy::default());
        let site = (3, 1, 0);
        assert!(rc.elide_allowed(site), "normal mode: elision allowed");
        rc.on_violation("post-sweep: unmarked live");
        assert!(!rc.elide_allowed(site));
        rc.revoke(site, "churn", "post-sweep: unmarked live", "invariant");
        rc.revoke(site, "churn", "later duplicate", "invariant");
        assert_eq!(rc.revocations().len(), 1, "first revocation wins");
        assert_eq!(rc.stats.revoked_sites, 1);
        assert!(!rc.elide_allowed(site), "still gated after revocation");
        assert_eq!(rc.stats.gated_elisions, 2);
        assert_eq!(rc.revocations()[0].site_key(), "churn@B1[0]");
        assert!(rc.site_revoked(site));
    }

    #[test]
    fn empty_revocation_table_is_inert() {
        let mut rc = RecoveryController::new(RecoveryPolicy::default());
        assert!(rc.revocations().is_empty());
        assert!(!rc.site_revoked((0, 0, 0)));
        assert_eq!(rc.stats.revoked_sites, 0);
        // Every site elides freely and nothing is counted as gated.
        for site in [(0, 0, 0), (7, 3, 2), (u64::MAX, u32::MAX, u32::MAX)] {
            assert!(rc.elide_allowed(site));
        }
        assert_eq!(rc.stats.gated_elisions, 0);
        // Publishing an empty table is a no-op, not a panic.
        rc.publish_metrics();
        assert!(!rc.in_panic());
        assert_eq!(rc.panic_reason(), "");
    }

    #[test]
    fn repeated_revocation_is_idempotent_across_attempts() {
        let mut rc = RecoveryController::new(RecoveryPolicy::default());
        let site = (5, 2, 7);
        rc.on_violation("first");
        rc.revoke(site, "m", "first", "invariant");
        rc.recovered();
        let snapshot = rc.revocations().to_vec();
        // Re-revoking the same site later — other attempt, other reason,
        // other trigger — changes nothing: first revocation wins.
        rc.on_violation("second");
        rc.revoke(site, "m", "second", "oracle");
        rc.revoke(site, "renamed", "third", "invariant");
        rc.recovered();
        assert_eq!(rc.revocations(), snapshot.as_slice());
        assert_eq!(rc.stats.revoked_sites, 1);
        assert_eq!(rc.revocations()[0].reason, "first");
        assert_eq!(rc.revocations()[0].attempt, 1, "records the first attempt");
        assert!(rc.site_revoked(site));
    }

    #[test]
    fn revocation_during_inflight_remark_lands_in_the_open_attempt() {
        let mut rc = RecoveryController::new(RecoveryPolicy { max_attempts: 3 });
        // First violation + successful re-mark: attempt 1 closes.
        rc.on_violation("warmup");
        rc.recovered();
        // Second violation opens attempt 2; the STW re-mark it forces
        // discovers a bad site *while the attempt is still open*.
        assert_eq!(
            rc.on_violation("post-mark: lost snapshot"),
            RecoveryAction::Recover
        );
        let site = (9, 4, 1);
        rc.revoke(site, "m", "unmarked reachable during re-mark", "invariant");
        assert_eq!(
            rc.revocations()[0].attempt,
            2,
            "attributed to the open attempt"
        );
        // The site is gated immediately, before the attempt resolves.
        assert!(!rc.elide_allowed(site));
        rc.recovered();
        // Resolution doesn't disturb the table, and the budget reset
        // didn't clear the sticky panic or the revocation.
        assert_eq!(rc.revocations().len(), 1);
        assert!(rc.in_panic());
        assert!(rc.site_revoked(site));
        assert_eq!(rc.stats.succeeded, 2);
        // A failed re-mark after the revocation leaves the record alone.
        rc.on_violation("again");
        rc.attempt_failed();
        assert_eq!(rc.revocations().len(), 1);
        assert_eq!(rc.stats.revoked_sites, 1);
    }

    #[test]
    fn generation_moves_on_panic_entry_and_each_revocation() {
        let mut rc = RecoveryController::new(RecoveryPolicy::default());
        assert_eq!(rc.generation(), 0, "fresh controller: fast paths valid");
        rc.on_violation("post-mark");
        assert_eq!(rc.generation(), 1, "panic entry bumps");
        rc.on_violation("post-mark again");
        assert_eq!(rc.generation(), 1, "sticky panic: no second bump");
        rc.revoke((1, 0, 0), "m", "oracle", "oracle");
        rc.revoke((1, 0, 1), "m", "oracle", "oracle");
        assert_eq!(rc.generation(), 3, "each distinct revocation bumps");
        rc.revoke((1, 0, 0), "m", "dup", "oracle");
        assert_eq!(rc.generation(), 3, "duplicate revocation does not");
        rc.recovered();
        assert_eq!(rc.generation(), 3, "recovery never rolls back");
    }

    #[test]
    fn single_site_revocation_without_panic() {
        let mut rc = RecoveryController::new(RecoveryPolicy::default());
        let bad = (0, 2, 5);
        let good = (0, 2, 6);
        rc.revoke(bad, "m", "non-null pre-value", "oracle");
        assert!(!rc.elide_allowed(bad), "revoked site is gated");
        assert!(rc.elide_allowed(good), "other sites unaffected");
        assert_eq!(rc.revocations()[0].trigger, "oracle");
        let shown = rc.revocations()[0].to_string();
        assert!(shown.contains("REVOKED m@B2[5]"), "{shown}");
    }
}
