//! Deterministic server world: open-loop load against the pressure
//! ladder.
//!
//! Where [`crate::sched`] interleaves a handful of list-churning
//! mutators to hunt *soundness* races, this module models the workload
//! shape ROADMAP item 4 asks for — a session-store/request-handler
//! server — to exercise *robustness under pressure*: per-request
//! allocation bursts, shared LRU-cache churn, and connection-table
//! turnover, all driven by a seeded **open-loop** arrival process that
//! does not slow down when the collector falls behind. That is exactly
//! the regime where an unprotected heap cliff-dives into the emergency
//! stop-the-world pause; here the [`crate::pressure::PressureController`]
//! stands in the way with its degradation ladder:
//!
//! * **pacing** — the marker arms early and marks with a boosted
//!   budget while occupancy is above the pace threshold;
//! * **throttling** — connections lose every other work slice, halving
//!   the allocation rate;
//! * **shedding** — the admission queue rejects arriving requests;
//! * **emergency** — a forced stop-the-world collection, rate-limited
//!   by the controller's cooldown.
//!
//! Connections speak the same SATB safepoint protocol as the scheduler
//! worlds (per-thread [`SatbBuffer`]s, epoch arm/ack, stop-the-world
//! rendezvous), so the overload run is also a soundness run: the
//! snapshot audit and heap invariant checks from [`crate::verify`] run
//! at every cycle boundary.
//!
//! Everything is a pure function of [`ServeWorldConfig`]: arrivals,
//! request mixes, scheduling choices, and fault decisions all come from
//! SplitMix64 streams seeded by `cfg.seed`, and latency is measured in
//! logical scheduler steps — so a run's entire outcome (counters,
//! latency samples, ladder transitions) replays bit for bit.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::fault::{FaultConfig, FaultPlan};
use crate::gc::MarkStyle;
use crate::heap::{Heap, HeapError};
use crate::pressure::{PressureConfig, PressureController, PressureLevel, PressureTransition};
use crate::safepoint::{EpochState, SatbBuffer};
use crate::value::{FieldShape, GcRef, Value};
use crate::verify;

/// Hard cap on scheduler steps per serve run; exceeding it surfaces as
/// a protocol violation rather than a hang.
const STEP_CAP: usize = 4_000_000;

/// Field shape of session/cache/connection nodes: `f0` = next link,
/// `f1` = payload cross-reference.
const NODE: [FieldShape; 2] = [FieldShape::Ref, FieldShape::Ref];

/// A session chain is reset (its old nodes becoming garbage) after this
/// many consecutive head inserts, bounding the live set so the
/// collector has something to reclaim.
const CHAIN_RESET: u64 = 8;

/// SplitMix64 — the repo's standard deterministic stream generator.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a over a byte stream (digest primitive, same as the scheduler).
fn fnv1a(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Request-mix shape: relative weights of the three request types
/// (session put, cache publish, connection churn).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeScenario {
    /// Session-store dominated: mostly per-request allocation bursts
    /// linked into tenant session chains.
    #[default]
    Session,
    /// Shared-LRU dominated: cache publishes and evictions.
    Cache,
    /// Connection-table dominated: maximal churn, maximal garbage.
    Churn,
}

impl ServeScenario {
    /// Relative request-type weights `[session_put, cache_publish,
    /// conn_churn]`.
    fn weights(self) -> [u16; 3] {
        match self {
            ServeScenario::Session => [6, 2, 2],
            ServeScenario::Cache => [2, 6, 2],
            ServeScenario::Churn => [2, 2, 6],
        }
    }

    /// The stock mix set the serve CLI accepts.
    pub const ALL: [ServeScenario; 3] = [
        ServeScenario::Session,
        ServeScenario::Cache,
        ServeScenario::Churn,
    ];

    /// Mix name as used by `wbe_tool serve --mix`.
    pub fn name(self) -> &'static str {
        match self {
            ServeScenario::Session => "session",
            ServeScenario::Cache => "cache",
            ServeScenario::Churn => "churn",
        }
    }
}

impl std::str::FromStr for ServeScenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "session" => Ok(ServeScenario::Session),
            "cache" => Ok(ServeScenario::Cache),
            "churn" => Ok(ServeScenario::Churn),
            other => Err(format!("unknown request mix `{other}`")),
        }
    }
}

impl fmt::Display for ServeScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one serve world.
#[derive(Clone, Debug)]
pub struct ServeWorldConfig {
    /// Tenants (each owns a session chain slot).
    pub tenants: usize,
    /// Connections: the mutator logical threads requests are handled on.
    pub connections: usize,
    /// Request mix.
    pub scenario: ServeScenario,
    /// Total requests the open-loop generator offers.
    pub requests: usize,
    /// Scheduler steps between arrival windows (open-loop cadence —
    /// arrivals never wait for the server).
    pub arrival_interval: u32,
    /// Requests arriving per window before overload bursts.
    pub arrivals_per_window: u32,
    /// Allocation-burst length: work units (≈ allocations) per request.
    pub request_ops: u32,
    /// Shared-LRU cache slots.
    pub lru_slots: usize,
    /// Workload ops between safepoint polls per connection.
    pub poll_interval: u32,
    /// Marker steps between cycles (shrunk to zero while pacing).
    pub cycle_gap: u32,
    /// Concurrent-marking budget per scheduled marker step (doubled
    /// while pacing).
    pub mark_budget: usize,
    /// Seed for arrivals, request mixes, and scheduling choices.
    pub seed: u64,
    /// The pressure ladder in force.
    pub pressure: PressureConfig,
    /// Optional fault schedule (allocation failures, skipped/boosted
    /// mark steps, overload bursts) composed into the run.
    pub fault: Option<FaultConfig>,
}

impl Default for ServeWorldConfig {
    fn default() -> Self {
        ServeWorldConfig {
            tenants: 4,
            connections: 4,
            scenario: ServeScenario::Session,
            requests: 256,
            arrival_interval: 8,
            arrivals_per_window: 2,
            request_ops: 6,
            lru_slots: 8,
            poll_interval: 4,
            cycle_gap: 6,
            mark_budget: 4,
            seed: 0x5e12_7e00,
            pressure: PressureConfig::default(),
            fault: None,
        }
    }
}

/// Deterministic per-run counters; part of the outcome digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Scheduler steps executed.
    pub steps: u64,
    /// Requests offered by the open-loop generator.
    pub offered: u64,
    /// Requests admitted to a connection queue.
    pub admitted: u64,
    /// Requests rejected at admission (ladder ≥ shedding).
    pub shed: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests that overlapped at least one STW pause.
    pub stw_overlapped: u64,
    /// Request work units executed.
    pub ops: u64,
    /// Work slices forfeited to throttling.
    pub throttle_stalls: u64,
    /// Objects allocated by request handlers.
    pub allocs: u64,
    /// Allocation failures injected by the fault plan.
    pub alloc_faults: u64,
    /// Overload bursts injected into arrival windows.
    pub overload_bursts: u64,
    /// Elided pre-null stores executed by handlers.
    pub elided_stores: u64,
    /// SATB entries logged into per-connection buffers.
    pub satb_logged: u64,
    /// Per-connection buffer flushes.
    pub flushes: u64,
    /// Safepoint polls that acknowledged a new epoch.
    pub safepoint_acks: u64,
    /// Safepoint polls that parked for a rendezvous.
    pub parks: u64,
    /// Concurrent mark work units performed.
    pub mark_work: u64,
    /// Marking cycles completed (including emergency collections).
    pub cycles: u64,
    /// Forced emergency stop-the-world collections.
    pub emergency_stw: u64,
    /// Total STW pause cost, in remark work units.
    pub pause_work: u64,
    /// Objects freed by sweeps.
    pub swept: u64,
}

impl ServeCounters {
    /// The counters as a fixed field array (digest + reporting order).
    pub fn fields(&self) -> [u64; 22] {
        [
            self.steps,
            self.offered,
            self.admitted,
            self.shed,
            self.completed,
            self.stw_overlapped,
            self.ops,
            self.throttle_stalls,
            self.allocs,
            self.alloc_faults,
            self.overload_bursts,
            self.elided_stores,
            self.satb_logged,
            self.flushes,
            self.safepoint_acks,
            self.parks,
            self.mark_work,
            self.cycles,
            self.emergency_stw,
            self.pause_work,
            self.swept,
            0,
        ]
    }

    /// Mirrors the counters into the global telemetry registry under
    /// `serve.*`.
    pub fn publish(&self) {
        let pairs: [(&str, u64); 12] = [
            ("serve.steps", self.steps),
            ("serve.requests.offered", self.offered),
            ("serve.requests.admitted", self.admitted),
            ("serve.requests.shed", self.shed),
            ("serve.requests.completed", self.completed),
            ("serve.requests.stw_overlapped", self.stw_overlapped),
            ("serve.throttle_stalls", self.throttle_stalls),
            ("serve.allocs", self.allocs),
            ("serve.alloc_faults", self.alloc_faults),
            ("serve.overload_bursts", self.overload_bursts),
            ("serve.gc.cycles", self.cycles),
            ("serve.gc.emergency_stw", self.emergency_stw),
        ];
        for (name, v) in pairs {
            wbe_telemetry::counter(name).add(v);
        }
    }
}

/// A soundness violation observed during a serve run (the serve world
/// runs the same snapshot audit and invariant checks as the scheduler
/// worlds; any entry here is a reproduction-level bug).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeViolation {
    /// Scheduler step at which it was detected.
    pub step: usize,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for ServeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step {}: {}", self.step, self.detail)
    }
}

/// The result of one serve run.
#[derive(Clone, Debug)]
pub struct ServeOutcome {
    /// Deterministic counters.
    pub counters: ServeCounters,
    /// Per-request latency samples, in scheduler steps, in completion
    /// order.
    pub latencies: Vec<u64>,
    /// Every pressure-ladder transition, in order.
    pub transitions: Vec<PressureTransition>,
    /// The ladder's lifetime counters.
    pub pressure: crate::pressure::PressureStats,
    /// The highest rung the run reached.
    pub high_water: PressureLevel,
    /// Soundness violations (empty ⇔ the run is sound).
    pub violations: Vec<ServeViolation>,
}

impl ServeOutcome {
    /// Digest over counters, latencies, and the transition log: two
    /// runs with equal digests executed the same world.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(
            0,
            self.counters
                .fields()
                .into_iter()
                .flat_map(u64::to_le_bytes),
        );
        h = fnv1a(h, self.latencies.iter().flat_map(|l| l.to_le_bytes()));
        for t in &self.transitions {
            h = fnv1a(h, t.reason.bytes());
            h = fnv1a(h, t.at_observation.to_le_bytes());
        }
        fnv1a(h, [self.violations.len() as u8, self.high_water as u8])
    }
}

/// One queued request.
#[derive(Clone, Copy, Debug)]
struct Request {
    arrived_at: usize,
    ops_left: u32,
    /// Request-type index into the scenario weights.
    kind: usize,
    /// Tenant the request addresses.
    tenant: usize,
    /// STW pauses completed at admission; if more have completed by the
    /// time the request finishes, it overlapped a pause.
    pauses_at_admit: u64,
}

/// Per-connection logical-thread state.
#[derive(Debug)]
struct Connection {
    satb: SatbBuffer,
    queue: VecDeque<Request>,
    since_poll: u32,
    /// Alternates under throttling: every other slice is forfeited.
    stalled_last: bool,
    parked: bool,
    /// Consecutive head inserts per tenant chain are counted globally;
    /// this is the connection's scratch reference (a local GC root).
    held: Option<GcRef>,
}

/// Marker logical-thread state machine (the scheduler-world protocol).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MarkerState {
    Idle { countdown: u32 },
    Arming,
    Marking,
    Rendezvous,
}

/// The serve world: heap, epoch protocol, connections, marker, ladder.
pub struct ServeWorld {
    cfg: ServeWorldConfig,
    heap: Heap,
    epoch: EpochState,
    conns: Vec<Connection>,
    marker: MarkerState,
    stop_requested: bool,
    /// Shared root array: slots `[0..tenants)` = session-chain heads,
    /// `[tenants..tenants+lru_slots)` = LRU cache, the rest (one per
    /// connection) = connection-table entries.
    shared: GcRef,
    /// Head inserts per tenant since the chain was last reset.
    chain_age: Vec<u64>,
    snapshot: Option<BTreeSet<GcRef>>,
    pressure: PressureController,
    current_level: PressureLevel,
    emergency_requested: bool,
    arrivals_left: usize,
    next_conn: usize,
    next_lru: usize,
    rng_arrivals: SplitMix64,
    rng_sched: SplitMix64,
    counters: ServeCounters,
    latencies: Vec<u64>,
    violations: Vec<ServeViolation>,
    step: usize,
    latency_hist: wbe_telemetry::Histogram,
}

impl ServeWorld {
    /// Builds the world: tenant tables, LRU slots, and connection-table
    /// entries are pre-allocated (bypassing the fault plan, which is
    /// installed afterwards).
    pub fn new(cfg: &ServeWorldConfig) -> Result<ServeWorld, HeapError> {
        let mut heap = Heap::new(MarkStyle::Satb);
        let slots = cfg.tenants + cfg.lru_slots + cfg.connections;
        let shared = heap.alloc_ref_array(u32::MAX, slots as i64)?;
        for t in 0..cfg.tenants {
            let head = heap.alloc_object(t as u32, &NODE)?;
            heap.set_elem(shared, t as i64, Some(head))?;
        }
        for c in 0..cfg.connections {
            let entry = heap.alloc_object(u32::MAX - 1, &NODE)?;
            heap.set_elem(
                shared,
                (cfg.tenants + cfg.lru_slots + c) as i64,
                Some(entry),
            )?;
        }
        heap.fault = cfg.fault.map(FaultPlan::new);
        Ok(ServeWorld {
            cfg: cfg.clone(),
            heap,
            epoch: EpochState::new(cfg.connections),
            conns: (0..cfg.connections)
                .map(|_| Connection {
                    satb: SatbBuffer::new(),
                    queue: VecDeque::new(),
                    since_poll: 0,
                    stalled_last: false,
                    parked: false,
                    held: None,
                })
                .collect(),
            marker: MarkerState::Idle {
                countdown: cfg.cycle_gap,
            },
            stop_requested: false,
            shared,
            chain_age: vec![0; cfg.tenants],
            snapshot: None,
            pressure: PressureController::new(cfg.pressure),
            current_level: PressureLevel::Nominal,
            emergency_requested: false,
            arrivals_left: cfg.requests,
            next_conn: 0,
            next_lru: 0,
            rng_arrivals: SplitMix64(cfg.seed ^ 0xa11c_0de5),
            rng_sched: SplitMix64(cfg.seed.rotate_left(32) ^ 0x5c4e_d01e),
            counters: ServeCounters::default(),
            latencies: Vec::new(),
            violations: Vec::new(),
            step: 0,
            latency_hist: wbe_telemetry::histogram("serve.request.latency_steps"),
        })
    }

    fn violation(&mut self, detail: String) {
        self.violations.push(ServeViolation {
            step: self.step,
            detail,
        });
    }

    fn work_drained(&self) -> bool {
        self.arrivals_left == 0 && self.conns.iter().all(|c| c.queue.is_empty())
    }

    fn all_parked(&self) -> bool {
        self.conns.iter().all(|c| c.parked)
    }

    fn finished(&self) -> bool {
        self.work_drained()
            && matches!(self.marker, MarkerState::Idle { .. })
            && !self.emergency_requested
            && self.counters.cycles > 0
    }

    /// GC roots: the shared table plus every connection's held scratch.
    fn roots(&self) -> Vec<GcRef> {
        let mut roots = vec![self.shared];
        roots.extend(self.conns.iter().filter_map(|c| c.held));
        roots
    }

    /// Feeds occupancy to the ladder and latches its actuation signals
    /// for this window.
    fn observe_pressure(&mut self) {
        self.current_level = self.pressure.observe(self.heap.store.live_count());
        if self.pressure.emergency_pause_due() {
            self.emergency_requested = true;
        }
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::counter_event(
                "serve.heap.occupancy",
                self.heap.store.live_count() as u64,
            );
        }
    }

    /// One arrival window of the open-loop generator: admit (or shed)
    /// the base arrivals plus any fault-injected overload burst.
    fn arrival_window(&mut self) {
        self.observe_pressure();
        let mut n = u64::from(self.cfg.arrivals_per_window);
        if let Some(extra) = self.heap.fault.as_mut().and_then(FaultPlan::overload_burst) {
            self.counters.overload_bursts += 1;
            n += u64::from(extra);
            if wbe_telemetry::tracing_enabled() {
                wbe_telemetry::trace::event(
                    "serve.fault.overload_burst",
                    format!("+{extra} requests step {}", self.step),
                );
            }
        }
        let weights = self.cfg.scenario.weights();
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        for _ in 0..n {
            if self.arrivals_left == 0 {
                break;
            }
            self.arrivals_left -= 1;
            self.counters.offered += 1;
            // Request identity is drawn whether or not it is admitted,
            // so shedding never shifts the arrival stream.
            let mut roll = self.rng_arrivals.next() % total;
            let mut kind = 0;
            for (i, &w) in weights.iter().enumerate() {
                if roll < u64::from(w) {
                    kind = i;
                    break;
                }
                roll -= u64::from(w);
            }
            let tenant = (self.rng_arrivals.next() % self.cfg.tenants as u64) as usize;
            if self.current_level >= PressureLevel::Shedding {
                self.counters.shed += 1;
                self.pressure.note_shed();
                continue;
            }
            self.counters.admitted += 1;
            let conn = self.next_conn;
            self.next_conn = (self.next_conn + 1) % self.cfg.connections;
            self.conns[conn].queue.push_back(Request {
                arrived_at: self.step,
                ops_left: self.cfg.request_ops.max(1),
                kind,
                tenant,
                pauses_at_admit: self.counters.cycles,
            });
        }
    }

    /// Bitmask of runnable logical threads (bit `connections` = marker).
    fn runnable_mask(&self) -> u32 {
        let mut mask = 0u32;
        for (tid, c) in self.conns.iter().enumerate() {
            let has_duty = !c.queue.is_empty() || !self.epoch.acked(tid) || self.stop_requested;
            if has_duty && !c.parked {
                mask |= 1 << tid;
            }
        }
        let marker_runnable = self.emergency_requested
            || match self.marker {
                MarkerState::Idle { .. } => {
                    if self.work_drained() {
                        self.counters.cycles == 0
                    } else {
                        true
                    }
                }
                MarkerState::Arming => self.epoch.all_acked(),
                MarkerState::Marking => true,
                MarkerState::Rendezvous => self.all_parked(),
            };
        if marker_runnable {
            mask |= 1 << self.cfg.connections;
        }
        mask
    }

    /// SATB deletion barrier for `old`, via the per-connection buffer.
    fn barrier_log(&mut self, tid: usize, old: GcRef) {
        if self.epoch.local_marking(tid) {
            self.conns[tid].satb.log(old);
            self.counters.satb_logged += 1;
        }
    }

    fn flush_buffer(&mut self, tid: usize) {
        if self.conns[tid].satb.depth() == 0 {
            return;
        }
        self.conns[tid].satb.flush_into(&mut self.heap.gc);
        self.counters.flushes += 1;
    }

    /// One step of connection `tid`: a safepoint poll when one is due
    /// (or when idle with protocol duties pending), a forfeited slice
    /// under throttling, else one unit of request work.
    fn connection_step(&mut self, tid: usize) {
        let idle = self.conns[tid].queue.is_empty();
        let poll_due = self.conns[tid].since_poll >= self.cfg.poll_interval;
        if idle || poll_due {
            self.conns[tid].since_poll = 0;
            self.flush_buffer(tid);
            if !self.epoch.acked(tid) {
                self.epoch.ack(tid);
                self.counters.safepoint_acks += 1;
            }
            if self.stop_requested {
                self.conns[tid].parked = true;
                self.counters.parks += 1;
            }
            return;
        }
        if self.current_level >= PressureLevel::Throttling && !self.conns[tid].stalled_last {
            // Backpressure: forfeit this slice. The open-loop generator
            // keeps arriving, so the queue (and latency) grows — which
            // is the point: the mutator burns less, the marker catches
            // up.
            self.conns[tid].stalled_last = true;
            self.counters.throttle_stalls += self.pressure.note_throttle_stall();
            return;
        }
        self.conns[tid].stalled_last = false;
        self.conns[tid].since_poll += 1;
        self.counters.ops += 1;
        let req = self.conns[tid].queue.front().copied();
        let Some(mut req) = req else { return };
        self.request_op(tid, &req);
        req.ops_left -= 1;
        if req.ops_left == 0 {
            self.conns[tid].queue.pop_front();
            self.counters.completed += 1;
            let latency = (self.step - req.arrived_at) as u64;
            self.latencies.push(latency);
            self.latency_hist.record(latency);
            if self.counters.cycles > req.pauses_at_admit {
                self.counters.stw_overlapped += 1;
            }
        } else {
            *self.conns[tid].queue.front_mut().expect("front exists") = req;
        }
    }

    /// One work unit of a request: an allocation plus the store pattern
    /// of its request type.
    fn request_op(&mut self, tid: usize, req: &Request) {
        let new = match self.heap.alloc_object(req.tenant as u32, &NODE) {
            Ok(r) => r,
            Err(HeapError::AllocationFailed) => {
                self.counters.alloc_faults += 1;
                return;
            }
            Err(e) => {
                self.violation(format!("alloc failed: {e}"));
                return;
            }
        };
        self.counters.allocs += 1;
        self.conns[tid].held = Some(new);
        match req.kind {
            // Session put: head-insert into the tenant chain. The
            // `new.f0 = old_head` store is the paper's elidable pre-null
            // initializing store; the slot overwrite carries the full
            // deletion barrier. Every CHAIN_RESET inserts the chain is
            // dropped wholesale (its nodes become garbage).
            0 => {
                let t = req.tenant as i64;
                let old_head = self.heap.get_elem(self.shared, t).ok().flatten();
                self.chain_age[req.tenant] += 1;
                if !self.chain_age[req.tenant].is_multiple_of(CHAIN_RESET) {
                    if let Some(h) = old_head {
                        if self.epoch.elide_allowed(tid) {
                            self.counters.elided_stores += 1;
                        }
                        let _ = self.heap.set_field(new, 0, Value::from(h));
                    }
                }
                if let Some(old) = old_head {
                    self.barrier_log(tid, old);
                }
                let _ = self.heap.set_elem(self.shared, t, Some(new));
            }
            // Cache publish: round-robin LRU slot overwrite; the
            // evicted entry becomes garbage.
            1 => {
                let slot = (self.cfg.tenants + self.next_lru) as i64;
                self.next_lru = (self.next_lru + 1) % self.cfg.lru_slots;
                if let Ok(Some(old)) = self.heap.get_elem(self.shared, slot) {
                    self.barrier_log(tid, old);
                }
                let _ = self.heap.set_elem(self.shared, slot, Some(new));
            }
            // Connection churn: replace this connection's table entry,
            // cross-linking the new entry to the old (the old entry and
            // its history die together at the next reset).
            _ => {
                let slot = (self.cfg.tenants + self.cfg.lru_slots + tid) as i64;
                if let Ok(Some(old)) = self.heap.get_elem(self.shared, slot) {
                    self.barrier_log(tid, old);
                    let _ = self.heap.set_field(new, 1, Value::from(old));
                }
                let _ = self.heap.set_elem(self.shared, slot, Some(new));
            }
        }
    }

    /// One step of the marker's state machine, with ladder pacing: at
    /// `Pacing` or above the idle countdown collapses (the cycle arms
    /// now) and the marking budget doubles.
    fn marker_step(&mut self) {
        if self.emergency_requested {
            self.emergency_stw();
            return;
        }
        match self.marker {
            MarkerState::Idle { countdown } => {
                let pacing = self.current_level >= PressureLevel::Pacing;
                if countdown == 0 || self.work_drained() || pacing {
                    if pacing && countdown > 0 {
                        self.pressure.note_pace_start();
                        if wbe_telemetry::tracing_enabled() {
                            wbe_telemetry::trace::event(
                                "serve.pressure.pace_start",
                                format!("cycle armed early step {}", self.step),
                            );
                        }
                    }
                    self.epoch.arm();
                    self.marker = MarkerState::Arming;
                } else {
                    self.marker = MarkerState::Idle {
                        countdown: countdown - 1,
                    };
                }
            }
            MarkerState::Arming => {
                if !self.epoch.all_acked() {
                    return;
                }
                let roots = self.roots();
                if let Err(e) = self.heap.gc.try_begin_marking(&mut self.heap.store, &roots) {
                    self.violation(e.to_string());
                    self.marker = MarkerState::Idle {
                        countdown: self.cfg.cycle_gap,
                    };
                    return;
                }
                self.snapshot = Some(verify::reachable_set(&self.heap, &roots));
                if let Err(e) = self.epoch.snapshot_taken() {
                    self.violation(e.to_string());
                }
                self.marker = MarkerState::Marking;
            }
            MarkerState::Marking => {
                let mut budget = self.cfg.mark_budget;
                if self.current_level >= PressureLevel::Pacing {
                    budget *= 2;
                }
                if let Some(plan) = self.heap.fault.as_mut() {
                    if plan.skip_mark_step() {
                        return;
                    }
                    if let Some(factor) = plan.drain_pressure() {
                        budget = budget.saturating_mul(factor);
                    }
                }
                let did = self.heap.gc.mark_step(&mut self.heap.store, budget);
                self.counters.mark_work += did as u64;
                if did == 0 {
                    self.stop_requested = true;
                    self.marker = MarkerState::Rendezvous;
                }
            }
            MarkerState::Rendezvous => {
                if !self.all_parked() {
                    return;
                }
                self.finish_cycle_stw(false);
            }
        }
    }

    /// The ladder's final rung: a forced stop-the-world collection as
    /// one atomic step — every connection is flushed by fiat (an
    /// emergency safepoint), a cycle is opened if none is running, and
    /// the remark + sweep complete immediately.
    fn emergency_stw(&mut self) {
        self.emergency_requested = false;
        self.pressure.note_emergency_pause();
        self.counters.emergency_stw += 1;
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::event(
                "serve.pressure.emergency_stw",
                format!("forced collection step {}", self.step),
            );
        }
        let epoch_open = !matches!(self.marker, MarkerState::Idle { .. });
        if !self.heap.gc.is_marking() {
            let roots = self.roots();
            if self
                .heap
                .gc
                .try_begin_marking(&mut self.heap.store, &roots)
                .is_err()
            {
                // Cannot happen (not marking ⇒ a cycle can start), but
                // the no-panic policy wants a reportable path.
                self.violation("emergency cycle failed to open".to_string());
                return;
            }
        }
        self.finish_cycle_stw(epoch_open);
        self.observe_pressure();
    }

    /// Stop-the-world tail of a cycle: final flushes, remark, invariant
    /// checks, sweep, snapshot audit, resume. `end_epoch` says whether
    /// an armed/marking epoch must be closed (false for an emergency
    /// collection forced from marker-idle, where no epoch is open).
    fn finish_cycle_stw(&mut self, end_epoch_override: bool) {
        let end_epoch = end_epoch_override || !matches!(self.marker, MarkerState::Idle { .. });
        for tid in 0..self.cfg.connections {
            self.flush_buffer(tid);
        }
        let roots = self.roots();
        let pause = self.heap.gc.remark(&mut self.heap.store, &roots);
        self.counters.pause_work += pause.work_units() as u64;
        self.counters.cycles += 1;
        for v in verify::verify_post_mark(&self.heap, &roots) {
            self.violation(v.to_string());
        }
        let swept = self.heap.sweep();
        self.counters.swept += swept as u64;
        if let Some(snapshot) = self.snapshot.take() {
            for obj in snapshot {
                if !self.heap.store.is_live(obj) {
                    self.violation(format!("snapshot-reachable {obj} freed by sweep"));
                }
            }
        }
        for v in verify::verify_post_sweep(&self.heap) {
            self.violation(v.to_string());
        }
        if end_epoch {
            self.epoch.end_cycle();
        }
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::event(
                "serve.gc.stw",
                format!(
                    "cycle {} pause {} swept {swept} step {}",
                    self.counters.cycles,
                    pause.work_units(),
                    self.step
                ),
            );
        }
        self.stop_requested = false;
        for c in &mut self.conns {
            c.parked = false;
        }
        self.marker = MarkerState::Idle {
            countdown: self.cfg.cycle_gap,
        };
        self.observe_pressure();
    }

    /// Runs the world to completion.
    fn run(mut self) -> ServeOutcome {
        while !self.finished() {
            if self.step >= STEP_CAP {
                self.violation(format!("no termination after {STEP_CAP} steps"));
                break;
            }
            if self.step.is_multiple_of(self.cfg.arrival_interval as usize)
                && self.arrivals_left > 0
            {
                self.arrival_window();
            }
            let mask = self.runnable_mask();
            if mask == 0 {
                self.violation("no runnable thread".to_string());
                break;
            }
            let n = mask.count_ones() as u64;
            let mut k = self.rng_sched.next() % n;
            let mut pick = self.cfg.connections;
            for t in 0..=self.cfg.connections {
                if mask & (1 << t) != 0 {
                    if k == 0 {
                        pick = t;
                        break;
                    }
                    k -= 1;
                }
            }
            self.counters.steps += 1;
            if pick == self.cfg.connections {
                self.marker_step();
            } else {
                self.connection_step(pick);
            }
            self.step += 1;
        }
        self.pressure.publish_metrics();
        self.heap.gc.publish_metrics();
        self.counters.publish();
        ServeOutcome {
            counters: self.counters,
            latencies: self.latencies,
            transitions: self.pressure.transitions().to_vec(),
            pressure: self.pressure.stats,
            high_water: self.pressure.high_water(),
            violations: self.violations,
        }
    }
}

/// Runs one serve world to completion. Fully deterministic: equal
/// configurations give equal outcomes, bit for bit.
pub fn run_serve(cfg: &ServeWorldConfig) -> ServeOutcome {
    match ServeWorld::new(cfg) {
        Ok(world) => world.run(),
        Err(e) => ServeOutcome {
            counters: ServeCounters::default(),
            latencies: Vec::new(),
            transitions: Vec::new(),
            pressure: crate::pressure::PressureStats::default(),
            high_water: PressureLevel::Nominal,
            violations: vec![ServeViolation {
                step: 0,
                detail: format!("world construction failed: {e}"),
            }],
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light() -> ServeWorldConfig {
        ServeWorldConfig {
            pressure: PressureConfig::with_budget(1_000_000),
            ..ServeWorldConfig::default()
        }
    }

    fn overloaded() -> ServeWorldConfig {
        ServeWorldConfig {
            requests: 2000,
            arrivals_per_window: 6,
            request_ops: 8,
            scenario: ServeScenario::Session,
            pressure: PressureConfig::with_budget(220),
            ..ServeWorldConfig::default()
        }
    }

    #[test]
    fn light_load_stays_nominal_and_completes_everything() {
        let out = run_serve(&light());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.high_water, PressureLevel::Nominal);
        assert_eq!(out.counters.shed, 0);
        assert_eq!(out.counters.completed, out.counters.admitted);
        assert_eq!(out.counters.offered, 256);
        assert_eq!(out.latencies.len() as u64, out.counters.completed);
        assert!(out.counters.cycles > 0, "GC ran");
    }

    #[test]
    fn overload_walks_the_ladder_in_order() {
        let out = run_serve(&overloaded());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.high_water, PressureLevel::Emergency);
        // Every rung was entered, each with its own reason, and the
        // *first* occurrence of each ascend reason is in ladder order.
        let order: Vec<&str> = [
            PressureLevel::Pacing,
            PressureLevel::Throttling,
            PressureLevel::Shedding,
            PressureLevel::Emergency,
        ]
        .iter()
        .map(|l| l.ascend_reason())
        .collect();
        let firsts: Vec<usize> = order
            .iter()
            .map(|r| {
                out.transitions
                    .iter()
                    .position(|t| t.reason == *r)
                    .unwrap_or_else(|| panic!("rung reason {r} never fired"))
            })
            .collect();
        assert!(
            firsts.windows(2).all(|w| w[0] < w[1]),
            "rungs out of order: {firsts:?}"
        );
        for l in [
            PressureLevel::Pacing,
            PressureLevel::Throttling,
            PressureLevel::Shedding,
            PressureLevel::Emergency,
        ] {
            assert!(out.pressure.entries(l) >= 1, "{l} never entered");
        }
        assert!(out.counters.shed > 0, "admission control shed requests");
        assert!(out.counters.throttle_stalls > 0, "mutators were throttled");
        assert!(out.pressure.pace_starts > 0, "marking was paced early");
        assert!(out.counters.emergency_stw > 0, "final rung reached");
    }

    #[test]
    fn same_config_same_outcome() {
        for cfg in [light(), overloaded()] {
            let a = run_serve(&cfg);
            let b = run_serve(&cfg);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.latencies, b.latencies);
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(a.digest(), b.digest());
        }
        let mut other = overloaded();
        other.seed ^= 1;
        assert_ne!(
            run_serve(&overloaded()).digest(),
            run_serve(&other).digest(),
            "different seeds diverge"
        );
    }

    #[test]
    fn overload_bursts_compose_from_the_fault_plan() {
        let cfg = ServeWorldConfig {
            fault: Some(FaultConfig {
                overload_burst_pm: 500,
                overload_burst_len: 8,
                // Quiet the other knobs so only bursts perturb the run.
                defer_start_pm: 0,
                early_start_pm: 0,
                skip_step_pm: 0,
                drain_boost_pm: 0,
                alloc_fail_pm: 0,
                ..FaultConfig::from_seed(77)
            }),
            ..light()
        };
        let out = run_serve(&cfg);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.counters.overload_bursts > 0, "no burst ever fired");
        assert_eq!(run_serve(&cfg).digest(), out.digest());
    }

    #[test]
    fn shedding_caps_queue_growth() {
        let out = run_serve(&overloaded());
        // Offered = admitted + shed, and everything admitted completed
        // (the generator is finite, so queues eventually drain).
        assert_eq!(
            out.counters.offered,
            out.counters.admitted + out.counters.shed
        );
        assert_eq!(out.counters.completed, out.counters.admitted);
    }

    #[test]
    fn mixes_differ_but_each_is_deterministic() {
        let mut digests = Vec::new();
        for mix in ServeScenario::ALL {
            let cfg = ServeWorldConfig {
                scenario: mix,
                ..light()
            };
            let out = run_serve(&cfg);
            assert!(out.violations.is_empty(), "{mix}: {:?}", out.violations);
            digests.push(out.digest());
        }
        digests.dedup();
        assert_eq!(digests.len(), 3, "mixes produced identical worlds");
    }
}
