//! Runtime witnesses: per-object dynamic facts that refute (or fail to
//! refute) the static analysis's keep-codes.
//!
//! The elision judgment keeps a barrier when it cannot prove the
//! receiver thread-local (`receiver-may-escape`, `array-may-escape`) or
//! the overwritten field null (`field-may-be-non-null`). Those are
//! *may* facts — conservative static approximations. This side-table
//! records the corresponding *did* facts observed at run time:
//!
//! * **escape**: did this object ever become reachable from another
//!   logical thread? Three events establish escape: being stored into a
//!   static (globally reachable), being stored into an already-escaped
//!   object (transitive at store time), or its fields being written by
//!   a thread other than its allocating thread (observable under the
//!   deterministic scheduler's logical thread ids).
//! * **allocation provenance**: which logical thread allocated the
//!   object and under which class tag, aggregated per class so a
//!   whole allocation site's behavior is visible at once.
//!
//! A kept site whose receiver *never* escaped across every execution we
//! threw at it carries a refuted `receiver-may-escape`: a perfectly
//! precise analysis could have elided it on these executions. The
//! nullness witness needs no table — the interpreter's per-site
//! `pre_null` counter already records every observed-null overwrite.
//!
//! Escape here is deliberately *not* retroactive: an object that
//! escapes at time T is not back-dated as escaped for stores before T,
//! because the barrier decision at a store only needs the facts in
//! force at that store. Nor is it transitively closed over the existing
//! points-to graph at escape time (only values stored *into* an escaped
//! object afterwards escape); this under-approximates escapement, which
//! is the safe direction for an upper-bound instrument — it can only
//! make the oracle report *less* refutation headroom, never more.
//!
//! The table is updated inside the shared raw heap writes
//! ([`crate::Heap::set_field`] / `set_elem` / `set_static`) and the
//! allocator, which both execution engines funnel through, so the
//! witness stream — and everything derived from it — is byte-identical
//! across engines by construction.

use std::collections::BTreeMap;

use crate::value::GcRef;

/// Witness state for one heap slot (reset on every allocation into the
/// slot, since slots are reused after a sweep).
#[derive(Clone, Copy, Debug)]
struct SlotWitness {
    /// Logical thread that allocated the current occupant.
    alloc_thread: u32,
    /// Class tag of the current occupant.
    class_tag: u32,
    /// Whether the current occupant has escaped (see module docs).
    escaped: bool,
}

/// Per-class aggregation of the slot witnesses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassWitness {
    /// Objects allocated under this class tag.
    pub allocated: u64,
    /// Of those, how many ever escaped.
    pub escaped: u64,
}

/// The runtime witness side-table. Install with
/// [`crate::Heap::enable_witnesses`]; absent (the default), every hook
/// is a single `Option` check.
#[derive(Clone, Debug, Default)]
pub struct WitnessTable {
    /// The logical thread id charged to subsequent allocations and
    /// stores. Single-threaded drivers leave it at 0; the deterministic
    /// scheduler sets it at every context switch.
    current_thread: u32,
    /// Per-slot witness state, indexed by `GcRef` slot index.
    slots: Vec<Option<SlotWitness>>,
    /// Per-class rollups, keyed by class tag (deterministic order).
    classes: BTreeMap<u32, ClassWitness>,
    /// Total escape events (distinct objects, not stores).
    escapes: u64,
    /// Of those, escapes established by a cross-thread store.
    cross_thread_escapes: u64,
}

impl WitnessTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        WitnessTable::default()
    }

    /// Sets the logical thread id charged to subsequent events.
    pub fn set_current_thread(&mut self, thread: u32) {
        self.current_thread = thread;
    }

    /// Records an allocation: the slot's previous occupant (if any) is
    /// forgotten and the new object starts thread-local to the
    /// allocating thread.
    pub fn note_alloc(&mut self, r: GcRef, class_tag: u32) {
        let i = r.index();
        if i >= self.slots.len() {
            self.slots.resize(i + 1, None);
        }
        self.slots[i] = Some(SlotWitness {
            alloc_thread: self.current_thread,
            class_tag,
            escaped: false,
        });
        self.classes.entry(class_tag).or_default().allocated += 1;
    }

    /// Records a reference store `receiver.slot = value`. Escape
    /// events: a store performed by a thread other than the receiver's
    /// allocating thread escapes the receiver, and any value stored
    /// into an escaped receiver escapes with it.
    pub fn note_ref_store(&mut self, receiver: GcRef, value: Option<GcRef>) {
        let cross = self
            .slot(receiver)
            .is_some_and(|s| s.alloc_thread != self.current_thread);
        if cross {
            self.escape(receiver, true);
        }
        if self.is_escaped(receiver) {
            if let Some(v) = value {
                self.escape(v, false);
            }
        }
    }

    /// Records a static store: the stored value becomes globally
    /// reachable, the strongest form of escape.
    pub fn note_static_store(&mut self, value: Option<GcRef>) {
        if let Some(v) = value {
            self.escape(v, false);
        }
    }

    /// Whether `r`'s current occupant has escaped.
    pub fn is_escaped(&self, r: GcRef) -> bool {
        self.slot(r).is_some_and(|s| s.escaped)
    }

    /// Number of distinct objects that ever escaped.
    pub fn escaped_objects(&self) -> u64 {
        self.escapes
    }

    /// Number of escapes established by a cross-thread store.
    pub fn cross_thread_escapes(&self) -> u64 {
        self.cross_thread_escapes
    }

    /// Number of objects the table has witnessed allocations for.
    pub fn allocated_objects(&self) -> u64 {
        self.classes.values().map(|c| c.allocated).sum()
    }

    /// Per-class rollups in ascending class-tag order.
    pub fn class_rows(&self) -> impl Iterator<Item = (u32, &ClassWitness)> {
        self.classes.iter().map(|(&tag, w)| (tag, w))
    }

    fn slot(&self, r: GcRef) -> Option<&SlotWitness> {
        self.slots.get(r.index()).and_then(|s| s.as_ref())
    }

    fn escape(&mut self, r: GcRef, cross_thread: bool) {
        let Some(slot) = self.slots.get_mut(r.index()).and_then(|s| s.as_mut()) else {
            return;
        };
        if slot.escaped {
            return;
        }
        slot.escaped = true;
        self.escapes += 1;
        if cross_thread {
            self.cross_thread_escapes += 1;
        }
        if let Some(c) = self.classes.get_mut(&slot.class_tag) {
            c.escaped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::MarkStyle;
    use crate::heap::Heap;
    use crate::value::{FieldShape, Value};

    fn heap() -> Heap {
        let mut h = Heap::new(MarkStyle::Satb);
        h.enable_witnesses();
        h.register_statics(&[FieldShape::Ref]);
        h
    }

    #[test]
    fn objects_start_thread_local() {
        let mut h = heap();
        let a = h.alloc_object(3, &[FieldShape::Ref]).unwrap();
        let w = h.witness.as_ref().unwrap();
        assert!(!w.is_escaped(a));
        assert_eq!(w.allocated_objects(), 1);
        assert_eq!(
            w.class_rows().next(),
            Some((
                3,
                &ClassWitness {
                    allocated: 1,
                    escaped: 0,
                }
            ))
        );
    }

    #[test]
    fn static_store_escapes_the_value() {
        let mut h = heap();
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.set_static(0, Value::from(a)).unwrap();
        assert!(h.witness.as_ref().unwrap().is_escaped(a));
        assert_eq!(h.witness.as_ref().unwrap().escaped_objects(), 1);
    }

    #[test]
    fn store_into_escaped_object_escapes_transitively_at_store_time() {
        let mut h = heap();
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        let b = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        let c = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        // b stored into thread-local a: no escape.
        h.set_field(a, 0, Value::from(b)).unwrap();
        assert!(!h.witness.as_ref().unwrap().is_escaped(b));
        // a escapes via a static; b is NOT back-dated (non-retroactive).
        h.set_static(0, Value::from(a)).unwrap();
        assert!(!h.witness.as_ref().unwrap().is_escaped(b));
        // But a store into the now-escaped a escapes the value.
        h.set_field(a, 0, Value::from(c)).unwrap();
        assert!(h.witness.as_ref().unwrap().is_escaped(c));
    }

    #[test]
    fn cross_thread_store_escapes_the_receiver() {
        let mut h = heap();
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.witness.as_mut().unwrap().set_current_thread(2);
        h.set_field(a, 0, Value::NULL).unwrap();
        let w = h.witness.as_ref().unwrap();
        assert!(w.is_escaped(a), "thread 2 touched thread 0's object");
        assert_eq!(w.cross_thread_escapes(), 1);
    }

    #[test]
    fn int_stores_and_disabled_table_are_inert() {
        let mut h = Heap::new(MarkStyle::Satb);
        // No table installed: nothing to witness.
        let a = h.alloc_object(0, &[FieldShape::Int]).unwrap();
        h.set_field(a, 0, Value::Int(7)).unwrap();
        assert!(h.witness.is_none());

        let mut h = heap();
        let a = h.alloc_object(0, &[FieldShape::Int]).unwrap();
        h.witness.as_mut().unwrap().set_current_thread(5);
        // Int stores carry no reference and are not witnessed at all,
        // so even a cross-thread int store does not escape.
        h.set_field(a, 0, Value::Int(7)).unwrap();
        assert!(!h.witness.as_ref().unwrap().is_escaped(a));
    }

    #[test]
    fn slot_reuse_resets_the_witness() {
        let mut h = heap();
        let a = h.alloc_object(0, &[FieldShape::Ref]).unwrap();
        h.set_static(0, Value::from(a)).unwrap();
        assert!(h.witness.as_ref().unwrap().is_escaped(a));
        h.set_static(0, Value::NULL).unwrap();
        h.store.remove(a);
        let b = h.alloc_object(1, &[FieldShape::Ref]).unwrap();
        assert_eq!(a, b, "slot is reused");
        assert!(
            !h.witness.as_ref().unwrap().is_escaped(b),
            "the new occupant starts thread-local"
        );
    }
}
