//! Heap-invariant verification.
//!
//! Three checks, run by drivers at GC cycle boundaries:
//!
//! * **Reference integrity** ([`verify_refs`]): no live object or static
//!   holds a reference to a freed slot. An unsound barrier elision
//!   eventually violates this — the collector sweeps an object the
//!   mutator can still reach.
//! * **SATB snapshot reachability** ([`verify_post_mark`]): between
//!   `remark` and `sweep`, everything reachable from the roots must be
//!   marked. Reachable-now is a subset of the SATB obligation
//!   (snapshot ∪ allocated-during-cycle), so an unmarked reachable
//!   object proves a lost snapshot edge.
//! * **Mark/sweep bitmap consistency** ([`verify_post_sweep`]): right
//!   after a sweep, every surviving object carries a mark bit — the
//!   sweep kept exactly the marked ones.
//!
//! All checks are read-only and return the full violation list rather
//! than failing fast, so a harness can report everything at once.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::heap::Heap;
use crate::value::GcRef;

/// A single invariant violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A live object references a freed slot.
    DanglingField {
        /// The referencing live object.
        from: GcRef,
        /// The dead referent.
        target: GcRef,
    },
    /// A static variable references a freed slot.
    DanglingStatic {
        /// The static's index.
        index: usize,
        /// The dead referent.
        target: GcRef,
    },
    /// After remark (before sweep): a root-reachable object is unmarked
    /// and would be freed by the sweep — a lost SATB snapshot edge.
    UnmarkedReachable {
        /// The reachable-but-unmarked object.
        obj: GcRef,
    },
    /// After sweep: a surviving object carries no mark bit, so the
    /// sweep and the mark bitmap disagree.
    UnmarkedLive {
        /// The surviving unmarked object.
        obj: GcRef,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DanglingField { from, target } => {
                write!(f, "live object {from} references freed slot {target}")
            }
            Violation::DanglingStatic { index, target } => {
                write!(f, "static #{index} references freed slot {target}")
            }
            Violation::UnmarkedReachable { obj } => {
                write!(
                    f,
                    "reachable object {obj} unmarked after remark (lost SATB edge)"
                )
            }
            Violation::UnmarkedLive { obj } => {
                write!(f, "object {obj} survived the sweep without a mark bit")
            }
        }
    }
}

/// Reference integrity: every reference held by a live object or a
/// static must denote a live object.
pub fn verify_refs(heap: &Heap) -> Vec<Violation> {
    let mut out = Vec::new();
    for (from, obj) in heap.store.iter_live() {
        for target in obj.outgoing_refs() {
            if !heap.store.is_live(target) {
                out.push(Violation::DanglingField { from, target });
            }
        }
    }
    for (index, target) in heap.static_ref_slots() {
        if !heap.store.is_live(target) {
            out.push(Violation::DanglingStatic { index, target });
        }
    }
    out
}

/// BFS from `roots` over live objects. Public so the concurrency model
/// checker ([`crate::mcheck`]) can record the snapshot-reachable set at
/// `begin_marking` and audit it against every later sweep.
pub fn reachable_set(heap: &Heap, roots: &[GcRef]) -> BTreeSet<GcRef> {
    let mut seen: BTreeSet<GcRef> = BTreeSet::new();
    let mut queue: VecDeque<GcRef> = VecDeque::new();
    for &r in roots {
        if heap.store.is_live(r) && seen.insert(r) {
            queue.push_back(r);
        }
    }
    while let Some(r) = queue.pop_front() {
        if let Ok(obj) = heap.store.get(r) {
            for child in obj.outgoing_refs() {
                if heap.store.is_live(child) && seen.insert(child) {
                    queue.push_back(child);
                }
            }
        }
    }
    seen
}

/// SATB snapshot reachability, checked between `remark` and `sweep`:
/// every object reachable from `roots` must be marked. Includes
/// [`verify_refs`].
pub fn verify_post_mark(heap: &Heap, roots: &[GcRef]) -> Vec<Violation> {
    let mut out = verify_refs(heap);
    for obj in reachable_set(heap, roots) {
        if !heap.gc.is_marked(obj) {
            out.push(Violation::UnmarkedReachable { obj });
        }
    }
    out
}

/// Mark/sweep bitmap consistency, checked immediately after a sweep
/// (before any further allocation): every surviving object is marked.
/// Includes [`verify_refs`].
pub fn verify_post_sweep(heap: &Heap) -> Vec<Violation> {
    let mut out = verify_refs(heap);
    for (obj, _) in heap.store.iter_live() {
        if !heap.gc.is_marked(obj) {
            out.push(Violation::UnmarkedLive { obj });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::MarkStyle;
    use crate::value::{FieldShape, Value};

    fn obj(h: &mut Heap) -> GcRef {
        h.alloc_object(0, &[FieldShape::Ref, FieldShape::Ref])
            .unwrap()
    }

    #[test]
    fn clean_heap_has_no_violations() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.register_statics(&[FieldShape::Ref]);
        h.set_static(0, Value::from(a)).unwrap();
        assert!(verify_refs(&h).is_empty());
        h.gc.begin_marking(&mut h.store, &[a]);
        h.gc.remark(&mut h.store, &[a]);
        assert!(verify_post_mark(&h, &[a]).is_empty());
        h.sweep();
        assert!(verify_post_sweep(&h).is_empty());
    }

    #[test]
    fn dangling_field_and_static_detected() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.register_statics(&[FieldShape::Ref]);
        h.set_static(0, Value::from(b)).unwrap();
        h.store.remove(b);
        let v = verify_refs(&h);
        assert!(v.contains(&Violation::DanglingField { from: a, target: b }));
        assert!(v.contains(&Violation::DanglingStatic {
            index: 0,
            target: b
        }));
        assert!(v[0].to_string().contains("freed slot"));
    }

    /// The exact failure an unsound elision produces: unlink during
    /// marking with no SATB log, then re-link into an already-scanned
    /// object. The lost referent is reachable but unmarked at post-mark,
    /// and dangling after the sweep.
    #[test]
    fn unsound_elision_interleaving_is_caught() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        let x = obj(&mut h);
        h.set_field(b, 0, Value::from(x)).unwrap();
        // Roots [b, a]: the LIFO grey stack scans a first, leaving b
        // (and its edge to x) unscanned when the mutator races.
        h.gc.begin_marking(&mut h.store, &[b, a]);
        h.gc.mark_step(&mut h.store, 1); // scans a only
                                         // Mutator: t = b.f0; b.f0 = null — barrier UNSOUNDLY elided, so
                                         // x is never logged; then a.f0 = t re-links x behind the marker.
        h.set_field(b, 0, Value::NULL).unwrap();
        h.set_field(a, 0, Value::from(x)).unwrap();
        h.gc.remark(&mut h.store, &[a, b]);
        let post_mark = verify_post_mark(&h, &[a, b]);
        assert!(
            post_mark.contains(&Violation::UnmarkedReachable { obj: x }),
            "{post_mark:?}"
        );
        h.sweep();
        let post_sweep = verify_post_sweep(&h);
        assert!(
            post_sweep.contains(&Violation::DanglingField { from: a, target: x }),
            "{post_sweep:?}"
        );
    }

    /// With the barrier in place, the same interleaving is clean — the
    /// verifier does not false-positive on sound schedules.
    #[test]
    fn sound_barrier_interleaving_is_clean() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        let x = obj(&mut h);
        h.set_field(b, 0, Value::from(x)).unwrap();
        h.gc.begin_marking(&mut h.store, &[b, a]);
        h.gc.mark_step(&mut h.store, 1); // scans a only
        h.gc.satb_log(x); // the barrier the elision would have removed
        h.set_field(b, 0, Value::NULL).unwrap();
        h.set_field(a, 0, Value::from(x)).unwrap();
        h.gc.remark(&mut h.store, &[a, b]);
        assert!(verify_post_mark(&h, &[a, b]).is_empty());
        h.sweep();
        assert!(verify_post_sweep(&h).is_empty());
    }

    #[test]
    fn unmarked_live_detected_after_inconsistent_sweep() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        h.gc.begin_marking(&mut h.store, &[a]);
        h.gc.remark(&mut h.store, &[a]);
        // Allocate after the cycle: idle allocation is unmarked, and no
        // sweep ran to reconcile — the post-sweep check must flag it if
        // asked at the wrong time.
        let n = obj(&mut h);
        let v = verify_post_sweep(&h);
        assert!(v.contains(&Violation::UnmarkedLive { obj: n }));
    }

    #[test]
    fn violations_display() {
        let v = Violation::UnmarkedReachable { obj: GcRef(3) };
        assert!(v.to_string().contains("SATB"));
        let v = Violation::UnmarkedLive { obj: GcRef(3) };
        assert!(v.to_string().contains("sweep"));
    }
}
