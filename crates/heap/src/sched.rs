//! Deterministic cooperative multi-mutator scheduler.
//!
//! Runs N mutator machines plus the concurrent marker as *logical*
//! threads over one [`Heap`]. Every step, a scheduling policy picks one
//! runnable logical thread and lets it execute exactly one atomic
//! action; the resulting interleaving is a pure function of the policy
//! (a seed, or an explicit choice script), so any schedule — including
//! a failing one — replays bit for bit.
//!
//! The mutators speak the real SATB safepoint protocol from
//! [`crate::safepoint`]:
//!
//! * barriers append to a **per-thread** [`SatbBuffer`], flushed into
//!   the collector only at safepoint polls;
//! * a marking cycle begins with an **epoch arm**; the snapshot is
//!   taken only after every mutator has acknowledged the epoch at a
//!   safepoint, and un-acknowledged threads may not run elided code
//!   ([`EpochState::elide_allowed`]);
//! * the cycle ends with a **stop-the-world rendezvous**: the marker
//!   requests a stop, every mutator flushes and parks at its next
//!   poll, and the remark + sweep run with the world stopped.
//!
//! Two scheduling *hints* model the pacing a real runtime exhibits:
//! the marker **rests** for one scheduling decision after the snapshot
//! and after each marking slice (incremental collectors yield between
//! slices), and a mutator **yields** one decision after acknowledging
//! an epoch (the safepoint handshake returns to the scheduler). Hints
//! only bias the choice — a policy that would otherwise pick a resting
//! thread falls back to the full runnable set — but they put the
//! mutator-store-into-marking-window races within reach of a small
//! preemption bound for the systematic explorer.
//!
//! Each schedule audits itself: the snapshot-reachable set recorded at
//! `begin_marking` must still be fully live after that cycle's sweep
//! (the SATB guarantee the paper's elision argument rests on), and the
//! [`crate::verify`] invariant checks run at both cycle boundaries.
//! `demo_unsound` mode deliberately elides the (non-pre-null) unlink
//! barrier on thread 0 — the negative control the model checker in
//! [`crate::mcheck`] must catch.

use std::collections::BTreeSet;
use std::fmt;

use crate::fault::{FaultConfig, FaultPlan};
use crate::gc::MarkStyle;
use crate::heap::{Heap, HeapError};
use crate::safepoint::{EpochState, SatbBuffer};
use crate::value::{FieldShape, GcRef, Value};
use crate::verify;

/// Hard cap on scheduler steps per schedule; exceeding it is reported
/// as a livelock violation rather than hanging the checker.
const STEP_CAP: usize = 1_000_000;

/// Objects pre-built per mutator chain before scheduling starts, so
/// every cycle's snapshot contains white, losable objects.
const WARMUP_CHAIN: usize = 4;

/// Field shape of every chain node: `f0` = next link, `f1` = cross-link.
const NODE: [FieldShape; 2] = [FieldShape::Ref, FieldShape::Ref];

/// SplitMix64 — the same deterministic stream generator the fault layer
/// uses; kept private and tiny so the scheduler has no RNG dependency.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Workload shape: relative weights of the four mutator operations
/// (alloc-link, unlink, publish, cross-link).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scenario {
    /// Allocation-heavy private chains: mostly elided pre-null stores.
    #[default]
    Chain,
    /// Alloc/unlink churn: maximal pressure on the deletion barrier.
    Churn,
    /// Publication and cross-thread links: escaping receivers.
    Shared,
}

impl Scenario {
    /// Relative op weights `[alloc_link, unlink, publish, cross_link]`.
    fn weights(self) -> [u16; 4] {
        match self {
            Scenario::Chain => [6, 2, 1, 1],
            Scenario::Churn => [4, 4, 1, 1],
            Scenario::Shared => [3, 2, 3, 4],
        }
    }

    /// The stock scenario set the `mcheck` CLI runs by default.
    pub const ALL: [Scenario; 3] = [Scenario::Chain, Scenario::Churn, Scenario::Shared];

    /// Scenario name as used by the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Chain => "chain",
            Scenario::Churn => "churn",
            Scenario::Shared => "shared",
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "chain" => Ok(Scenario::Chain),
            "churn" => Ok(Scenario::Churn),
            "shared" => Ok(Scenario::Shared),
            other => Err(format!("unknown scenario `{other}`")),
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one scheduled world.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Number of mutator logical threads.
    pub threads: usize,
    /// Workload operations each mutator executes.
    pub ops_per_thread: usize,
    /// Workload shape.
    pub scenario: Scenario,
    /// Marker steps between the end of one cycle and arming the next.
    pub cycle_gap: u32,
    /// Workload ops between safepoint polls (the compiler-inserted
    /// poll cadence). Larger values widen the window in which an armed
    /// epoch is not yet acknowledged.
    pub poll_interval: u32,
    /// Concurrent-marking budget per scheduled marker step.
    pub mark_budget: usize,
    /// Deliberately elide the (non-pre-null) unlink barrier on thread 0
    /// — the negative control.
    pub demo_unsound: bool,
    /// Optional PR 2 fault schedule (allocation failures, skipped and
    /// boosted mark steps) composed into the run.
    pub fault: Option<FaultConfig>,
    /// Safepoint-watchdog deadline, in scheduler steps: how long an
    /// armed epoch may wait for acknowledgements before the watchdog
    /// escalates. Past the deadline an unacked mutator's next step is
    /// forced to poll (a pacing hint); past twice the deadline the
    /// marker performs an emergency rendezvous, abandoning the arm so
    /// the world cannot stall. The default is far beyond any healthy
    /// schedule, so the watchdog observes without interfering.
    pub arm_deadline: u32,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            threads: 2,
            ops_per_thread: 40,
            scenario: Scenario::Chain,
            cycle_gap: 6,
            poll_interval: 4,
            mark_budget: 2,
            demo_unsound: false,
            fault: None,
            arm_deadline: 10_000,
        }
    }
}

/// How the scheduler picks the next logical thread.
#[derive(Clone, Debug)]
pub enum SchedulePolicy {
    /// Uniform choice among runnable threads from a seeded stream.
    Random {
        /// The schedule seed; equal seeds give bit-identical schedules.
        seed: u64,
    },
    /// Forced choice prefix (thread ids; the marker is id `threads`).
    /// Beyond the prefix: continue the last thread while runnable, else
    /// the lowest-id runnable thread — the non-preemptive default the
    /// systematic explorer branches from.
    Scripted {
        /// The forced prefix of thread choices.
        prefix: Vec<u8>,
    },
}

/// What went wrong in a schedule, if anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// A snapshot-reachable object was freed by that cycle's sweep —
    /// the SATB guarantee was broken (a lost object).
    LostObject,
    /// A [`crate::verify`] heap-invariant check failed.
    Invariant,
    /// The elision oracle observed a non-null overwritten value at a
    /// statically-elided (assumed pre-null) store site.
    Oracle,
    /// The schedule exceeded the step cap without terminating.
    Livelock,
    /// Internal protocol error (e.g. a cycle started twice).
    Protocol,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::LostObject => "lost-object",
            ViolationKind::Invariant => "invariant",
            ViolationKind::Oracle => "oracle",
            ViolationKind::Livelock => "livelock",
            ViolationKind::Protocol => "protocol",
        })
    }
}

/// One soundness violation observed under one schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleViolation {
    /// Violation class.
    pub kind: ViolationKind,
    /// Scheduler step at which it was detected.
    pub step: usize,
    /// Marking cycle (1-based) it was detected in, 0 if outside one.
    pub cycle: u64,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] step {} cycle {}: {}",
            self.kind, self.step, self.cycle, self.detail
        )
    }
}

/// Deterministic per-schedule counters. Part of the schedule digest, so
/// two runs agree on a digest only if they agree on every count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Scheduler steps executed.
    pub steps: u64,
    /// Mutator workload operations completed.
    pub mutator_ops: u64,
    /// Alloc-link ops (elided pre-null stores).
    pub alloc_links: u64,
    /// Unlink ops (deletion-barrier stores).
    pub unlinks: u64,
    /// Publish ops (shared-array stores).
    pub publishes: u64,
    /// Cross-link ops (cross-thread reference stores).
    pub cross_links: u64,
    /// Stores executed with the barrier statically elided.
    pub elided_stores: u64,
    /// Elision attempts gated by an unacknowledged epoch (the thread
    /// took the conservative barrier path instead).
    pub gated_elisions: u64,
    /// Unsound (demo) elisions executed inside a marking window.
    pub unsound_elisions: u64,
    /// SATB entries logged into per-thread buffers.
    pub satb_logged: u64,
    /// Per-thread buffer flushes.
    pub flushes: u64,
    /// Entries moved into the collector by those flushes.
    pub flushed_entries: u64,
    /// Safepoint polls that acknowledged a new epoch.
    pub safepoint_acks: u64,
    /// Safepoint polls that parked for the rendezvous.
    pub parks: u64,
    /// Marker steps spent waiting (for acks or for parks).
    pub marker_waits: u64,
    /// Concurrent mark work units performed.
    pub mark_work: u64,
    /// Mark steps skipped by the fault plan.
    pub fault_skipped_steps: u64,
    /// Allocation failures injected by the fault plan.
    pub alloc_faults: u64,
    /// Marking cycles completed (arm → snapshot → remark → sweep).
    pub cycles: u64,
    /// Objects freed by sweeps.
    pub swept: u64,
    /// SATB entries drained during stop-the-world remarks.
    pub remark_drained: u64,
    /// Watchdog pacing hints: overdue-arm polls forced on unacked
    /// mutators past [`SchedConfig::arm_deadline`].
    pub watchdog_pacing: u64,
    /// Watchdog emergency rendezvous: arms abandoned past twice the
    /// deadline so the world cannot stall waiting for an ack.
    pub watchdog_emergency: u64,
}

impl SchedCounters {
    /// The counters as a fixed field array (digest + reporting order).
    pub fn fields(&self) -> [u64; 24] {
        [
            self.steps,
            self.mutator_ops,
            self.alloc_links,
            self.unlinks,
            self.publishes,
            self.cross_links,
            self.elided_stores,
            self.gated_elisions,
            self.unsound_elisions,
            self.satb_logged,
            self.flushes,
            self.flushed_entries,
            self.safepoint_acks,
            self.parks,
            self.marker_waits,
            self.mark_work,
            self.fault_skipped_steps,
            self.alloc_faults,
            self.cycles,
            self.swept,
            self.remark_drained,
            self.watchdog_pacing,
            self.watchdog_emergency,
            0,
        ]
    }

    /// Accumulates `other` into `self` field-by-field (for aggregating
    /// counters across schedules).
    pub fn merge(&mut self, other: &SchedCounters) {
        self.steps += other.steps;
        self.mutator_ops += other.mutator_ops;
        self.alloc_links += other.alloc_links;
        self.unlinks += other.unlinks;
        self.publishes += other.publishes;
        self.cross_links += other.cross_links;
        self.elided_stores += other.elided_stores;
        self.gated_elisions += other.gated_elisions;
        self.unsound_elisions += other.unsound_elisions;
        self.satb_logged += other.satb_logged;
        self.flushes += other.flushes;
        self.flushed_entries += other.flushed_entries;
        self.safepoint_acks += other.safepoint_acks;
        self.parks += other.parks;
        self.marker_waits += other.marker_waits;
        self.mark_work += other.mark_work;
        self.fault_skipped_steps += other.fault_skipped_steps;
        self.alloc_faults += other.alloc_faults;
        self.cycles += other.cycles;
        self.swept += other.swept;
        self.remark_drained += other.remark_drained;
        self.watchdog_pacing += other.watchdog_pacing;
        self.watchdog_emergency += other.watchdog_emergency;
    }

    /// Mirrors the counters into the global telemetry registry under
    /// `sched.*`.
    pub fn publish(&self) {
        let pairs: [(&str, u64); 14] = [
            ("sched.steps", self.steps),
            ("sched.ops", self.mutator_ops),
            ("sched.elided_stores", self.elided_stores),
            ("sched.gated_elisions", self.gated_elisions),
            ("sched.satb.logged", self.satb_logged),
            ("sched.satb.flushes", self.flushes),
            ("sched.safepoint.acks", self.safepoint_acks),
            ("sched.safepoint.parks", self.parks),
            ("sched.safepoint.marker_waits", self.marker_waits),
            ("sched.cycles", self.cycles),
            ("sched.swept", self.swept),
            ("sched.alloc_faults", self.alloc_faults),
            ("sched.watchdog.pacing_hints", self.watchdog_pacing),
            (
                "sched.watchdog.emergency_rendezvous",
                self.watchdog_emergency,
            ),
        ];
        for (name, v) in pairs {
            wbe_telemetry::counter(name).add(v);
        }
    }
}

/// FNV-1a over a byte stream; the digest primitive for schedule traces.
fn fnv1a(seed: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The result of running one schedule to completion.
#[derive(Clone, Debug)]
pub struct ScheduleOutcome {
    /// The choice sequence actually executed (thread ids; marker =
    /// `threads`).
    pub trace: Vec<u8>,
    /// Per-step runnable sets as bitmasks (bit `t` = thread `t`
    /// runnable), aligned with `trace`. The systematic explorer
    /// branches on these.
    pub runnable: Vec<u32>,
    /// Deterministic counters.
    pub counters: SchedCounters,
    /// Violations detected (empty ⇔ the schedule is sound).
    pub violations: Vec<ScheduleViolation>,
}

impl ScheduleOutcome {
    /// Digest of the schedule: trace bytes plus every counter. Two runs
    /// with the same digest executed the same interleaving and observed
    /// the same counts.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a(0, self.trace.iter().copied());
        h = fnv1a(
            h,
            self.counters
                .fields()
                .into_iter()
                .flat_map(u64::to_le_bytes),
        );
        fnv1a(h, [self.violations.len() as u8])
    }

    /// The number of preemptions in the trace: steps that switched
    /// threads while the previous thread was still runnable.
    pub fn preemptions(&self) -> usize {
        let mut n = 0;
        for t in 1..self.trace.len() {
            let prev = self.trace[t - 1];
            if self.trace[t] != prev && self.runnable[t] & (1 << prev) != 0 {
                n += 1;
            }
        }
        n
    }
}

/// Per-mutator logical-thread state.
#[derive(Debug)]
struct Mutator {
    rng: SplitMix64,
    satb: SatbBuffer,
    /// Last node of this thread's chain (a thread-local GC root).
    tail: Option<GcRef>,
    ops_done: usize,
    /// Ops executed since the last safepoint poll.
    since_poll: u32,
    /// Set for one scheduling decision after an epoch-ack handshake:
    /// the thread yields its slice, as a real safepoint handshake
    /// would. Creates a free (non-preemptive) switch point.
    yielded: bool,
    parked: bool,
    done: bool,
}

/// The marker's logical-thread state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MarkerState {
    /// Between cycles; arms a new epoch when the countdown expires.
    Idle { countdown: u32 },
    /// Epoch armed; waiting for every mutator to acknowledge before
    /// taking the snapshot.
    Arming,
    /// Snapshot taken; performing budgeted concurrent mark steps.
    Marking,
    /// Stop requested; waiting for every mutator to park, then runs the
    /// stop-the-world remark + sweep + audit as one atomic step.
    Rendezvous,
}

/// The scheduled world: heap, epoch protocol, mutators, marker.
struct World {
    cfg: SchedConfig,
    heap: Heap,
    epoch: EpochState,
    mutators: Vec<Mutator>,
    marker: MarkerState,
    /// Set after each marking slice: the marker is *paced* — it yields
    /// to runnable mutators for one scheduling decision between
    /// slices, like a real incremental collector interleaving with
    /// mutator time. Without pacing, a non-preemptive schedule would
    /// always mark to completion in one run, hiding every race.
    marker_rest: bool,
    stop_requested: bool,
    /// The shared root array: slot `tid` = chain head, slot
    /// `threads + tid` = the thread's published object.
    shared: GcRef,
    /// Snapshot-reachable set recorded at the current cycle's
    /// `begin_marking`, audited at its sweep.
    snapshot: Option<BTreeSet<GcRef>>,
    /// Step at which the current epoch was armed; the watchdog measures
    /// ack latency against this.
    armed_at: Option<usize>,
    counters: SchedCounters,
    violations: Vec<ScheduleViolation>,
    step: usize,
    depth_hist: wbe_telemetry::Histogram,
}

/// The marker's logical thread id.
fn marker_id(threads: usize) -> u8 {
    threads as u8
}

impl World {
    fn new(cfg: &SchedConfig, world_seed: u64) -> Result<World, HeapError> {
        let mut heap = Heap::new(MarkStyle::Satb);
        // Fault injection must not break world construction: warmup
        // allocations bypass the plan (it is installed afterwards).
        let shared = heap.alloc_ref_array(u32::MAX, 2 * cfg.threads as i64)?;
        let mut mutators = Vec::with_capacity(cfg.threads);
        for tid in 0..cfg.threads {
            let mut prev: Option<GcRef> = None;
            for _ in 0..WARMUP_CHAIN {
                let node = heap.alloc_object(tid as u32, &NODE)?;
                match prev {
                    None => heap.set_elem(shared, tid as i64, Some(node))?,
                    Some(p) => heap.set_field(p, 0, Value::from(node))?,
                }
                prev = Some(node);
            }
            mutators.push(Mutator {
                rng: SplitMix64(world_seed ^ (tid as u64).wrapping_mul(0x9e37_79b9)),
                satb: SatbBuffer::new(),
                tail: prev,
                ops_done: 0,
                since_poll: 0,
                yielded: false,
                parked: false,
                done: false,
            });
        }
        heap.fault = cfg.fault.map(FaultPlan::new);
        Ok(World {
            cfg: cfg.clone(),
            heap,
            epoch: EpochState::new(cfg.threads),
            mutators,
            marker: MarkerState::Idle {
                countdown: cfg.cycle_gap,
            },
            marker_rest: false,
            stop_requested: false,
            shared,
            snapshot: None,
            armed_at: None,
            counters: SchedCounters::default(),
            violations: Vec::new(),
            step: 0,
            depth_hist: wbe_telemetry::histogram("sched.satb.buffer_depth"),
        })
    }

    fn violation(&mut self, kind: ViolationKind, detail: String) {
        self.violations.push(ScheduleViolation {
            kind,
            step: self.step,
            cycle: self.counters.cycles + u64::from(self.snapshot.is_some()),
            detail,
        });
    }

    fn all_done(&self) -> bool {
        self.mutators.iter().all(|m| m.done)
    }

    fn all_parked(&self) -> bool {
        self.mutators.iter().all(|m| m.done || m.parked)
    }

    /// Steps the current epoch has been armed without full
    /// acknowledgement (0 when no epoch is armed).
    fn arm_age(&self) -> usize {
        match (self.marker, self.armed_at) {
            (MarkerState::Arming, Some(at)) => self.step.saturating_sub(at),
            _ => 0,
        }
    }

    /// Watchdog level 1: past the deadline, stalled mutators are paced
    /// (their next step polls immediately).
    fn arm_overdue(&self) -> bool {
        self.arm_age() > self.cfg.arm_deadline as usize
    }

    /// Watchdog level 2: past twice the deadline, the marker abandons
    /// the arm in an emergency rendezvous rather than stall the world.
    fn arm_emergency_due(&self) -> bool {
        self.arm_age() > 2 * self.cfg.arm_deadline as usize
    }

    /// Bitmask of runnable logical threads. A thread is runnable only
    /// if its next step makes progress — waiting states are modelled as
    /// not-runnable, so no policy can livelock the protocol. With
    /// `honor_rests`, threads that yielded (ack handshake) and a paced
    /// marker are additionally excluded; the scheduler retries without
    /// rests if that empties the mask.
    fn runnable_mask(&self, honor_rests: bool) -> u32 {
        let mut mask = 0u32;
        for (tid, m) in self.mutators.iter().enumerate() {
            let resting = honor_rests && m.yielded;
            if !(m.done || m.parked || resting) {
                mask |= 1 << tid;
            }
        }
        let marker_runnable = match self.marker {
            MarkerState::Idle { .. } => {
                if self.all_done() {
                    // One final cycle if none completed, else finished.
                    self.counters.cycles == 0
                } else {
                    true
                }
            }
            MarkerState::Arming => self.epoch.all_acked() || self.arm_emergency_due(),
            MarkerState::Marking => !(honor_rests && self.marker_rest),
            MarkerState::Rendezvous => self.all_parked(),
        };
        if marker_runnable {
            mask |= 1 << self.cfg.threads;
        }
        mask
    }

    /// True when the schedule is complete.
    fn finished(&self) -> bool {
        self.all_done()
            && matches!(self.marker, MarkerState::Idle { .. })
            && self.counters.cycles > 0
    }

    /// GC roots: the shared array plus every mutator's local tail.
    fn roots(&self) -> Vec<GcRef> {
        let mut roots = vec![self.shared];
        roots.extend(self.mutators.iter().filter_map(|m| m.tail));
        roots
    }

    fn flush_buffer(&mut self, tid: usize) {
        if self.mutators[tid].satb.depth() == 0 {
            return;
        }
        let depth = self.mutators[tid].satb.flush_into(&mut self.heap.gc);
        self.counters.flushes += 1;
        self.counters.flushed_entries += depth as u64;
        self.depth_hist.record(depth as u64);
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::event(
                "sched.satb.flush",
                format!("t{tid} depth {depth} step {}", self.step),
            );
        }
    }

    /// SATB deletion barrier for `old`, routed through the per-thread
    /// buffer; a no-op when the thread's local view of marking is idle.
    fn barrier_log(&mut self, tid: usize, old: GcRef) {
        if self.epoch.local_marking(tid) {
            self.mutators[tid].satb.log(old);
            self.counters.satb_logged += 1;
        }
    }

    /// One step of mutator `tid`: a safepoint poll (flush + ack, and
    /// park or retire) when one is due, else one workload operation.
    ///
    /// Polls are *periodic* — every [`SchedConfig::poll_interval`] ops,
    /// like compiler-inserted polls at loop back-edges — so a thread
    /// genuinely runs operations between an epoch being armed and its
    /// acknowledgement. That window is exactly where
    /// [`EpochState::elide_allowed`] forces the conservative
    /// full-barrier path.
    fn mutator_step(&mut self, tid: usize) {
        let retiring = self.mutators[tid].ops_done >= self.cfg.ops_per_thread;
        // Watchdog pacing hint: a thread that has left an armed epoch
        // unacknowledged past the deadline polls now instead of at its
        // usual cadence, bounding how long the snapshot can stall.
        let paced = self.arm_overdue() && !self.epoch.acked(tid);
        if paced {
            self.counters.watchdog_pacing += 1;
            if wbe_telemetry::tracing_enabled() {
                wbe_telemetry::trace::event(
                    "sched.watchdog.pacing",
                    format!("t{tid} step {} arm age {}", self.step, self.arm_age()),
                );
            }
        }
        if retiring || paced || self.mutators[tid].since_poll >= self.cfg.poll_interval {
            // Safepoint poll: flush the local buffer, acknowledge any
            // pending epoch, honour a stop request, and (last poll)
            // retire. Entries logged before the ack are pre-snapshot;
            // the flush drops them (collector idle), which is sound.
            self.mutators[tid].since_poll = 0;
            if wbe_telemetry::tracing_enabled() {
                wbe_telemetry::trace::event(
                    "sched.safepoint.poll",
                    format!("t{tid} step {}", self.step),
                );
            }
            self.flush_buffer(tid);
            if !self.epoch.acked(tid) {
                self.epoch.ack(tid);
                self.counters.safepoint_acks += 1;
                self.mutators[tid].yielded = true;
                if wbe_telemetry::tracing_enabled() {
                    wbe_telemetry::trace::event(
                        "sched.safepoint.ack",
                        format!("t{tid} step {}", self.step),
                    );
                }
            }
            if self.stop_requested {
                self.mutators[tid].parked = true;
                self.counters.parks += 1;
            } else if retiring {
                self.mutators[tid].done = true;
            }
            return;
        }
        self.mutators[tid].since_poll += 1;
        self.mutators[tid].ops_done += 1;
        self.counters.mutator_ops += 1;
        let weights = self.cfg.scenario.weights();
        let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
        let mut roll = self.mutators[tid].rng.next() % total;
        let mut op = 0;
        for (i, &w) in weights.iter().enumerate() {
            if roll < u64::from(w) {
                op = i;
                break;
            }
            roll -= u64::from(w);
        }
        match op {
            0 => self.op_alloc_link(tid),
            1 => self.op_unlink(tid),
            2 => self.op_publish(tid),
            _ => self.op_cross_link(tid),
        }
    }

    /// Append a fresh node at the tail. The `tail.f0 = new` store is the
    /// paper's elidable pre-null (initializing) store: the compile-time
    /// analysis proved `tail.f0` null, so the barrier is statically
    /// removed — and the oracle checks the proof at runtime.
    fn op_alloc_link(&mut self, tid: usize) {
        let new = match self.heap.alloc_object(tid as u32, &NODE) {
            Ok(r) => r,
            Err(HeapError::AllocationFailed) => {
                self.counters.alloc_faults += 1;
                return;
            }
            Err(e) => {
                self.violation(ViolationKind::Protocol, format!("alloc failed: {e}"));
                return;
            }
        };
        self.counters.alloc_links += 1;
        let Some(tail) = self.mutators[tid].tail else {
            return;
        };
        let old = self.heap.get_field(tail, 0).unwrap_or(Value::NULL);
        if self.epoch.elide_allowed(tid) {
            // Elided path: no barrier at all. The oracle asserts the
            // static pre-null claim held under this interleaving.
            if let Value::Ref(Some(o)) = old {
                self.violation(
                    ViolationKind::Oracle,
                    format!("elided store on t{tid} overwrote non-null {o}"),
                );
            }
            self.counters.elided_stores += 1;
        } else {
            // Epoch armed but not yet acknowledged: the thread must run
            // the conservative full-barrier version of the code.
            if let Value::Ref(Some(o)) = old {
                self.barrier_log(tid, o);
            }
        }
        let _ = self.heap.set_field(tail, 0, Value::from(new));
        self.mutators[tid].tail = Some(new);
    }

    /// Drop the interior node after the chain head: `head.f0 = victim.f0`
    /// overwrites a non-null reference, so it carries a mandatory SATB
    /// deletion barrier. `demo_unsound` elides it on thread 0 — the
    /// deliberately wrong "the analysis claimed this site was pre-null"
    /// negative control.
    fn op_unlink(&mut self, tid: usize) {
        self.counters.unlinks += 1;
        let Ok(Some(head)) = self.heap.get_elem(self.shared, tid as i64) else {
            return;
        };
        let Ok(Value::Ref(Some(victim))) = self.heap.get_field(head, 0) else {
            return;
        };
        let Ok(rest @ Value::Ref(Some(_))) = self.heap.get_field(victim, 0) else {
            return; // victim is the tail; keep it (it is a local root)
        };
        let unsound = self.cfg.demo_unsound && tid == 0;
        if unsound {
            if self.epoch.local_marking(tid) {
                self.counters.unsound_elisions += 1;
            }
        } else {
            self.barrier_log(tid, victim);
        }
        let _ = self.heap.set_field(head, 0, rest);
    }

    /// Publish the chain head into the thread's shared slot, where other
    /// threads can pick it up. Overwrites a possibly non-null slot, so
    /// it runs the full barrier.
    fn op_publish(&mut self, tid: usize) {
        self.counters.publishes += 1;
        let Ok(head) = self.heap.get_elem(self.shared, tid as i64) else {
            return;
        };
        let slot = (self.cfg.threads + tid) as i64;
        if let Ok(Some(old)) = self.heap.get_elem(self.shared, slot) {
            self.barrier_log(tid, old);
        }
        let _ = self.heap.set_elem(self.shared, slot, head);
    }

    /// Read the neighbour thread's published object and store it into
    /// our tail's cross-link field (full barrier: the old cross-link may
    /// be non-null).
    fn op_cross_link(&mut self, tid: usize) {
        self.counters.cross_links += 1;
        let src = (self.cfg.threads + (tid + 1) % self.cfg.threads) as i64;
        let Ok(Some(x)) = self.heap.get_elem(self.shared, src) else {
            return;
        };
        let Some(tail) = self.mutators[tid].tail else {
            return;
        };
        if let Ok(Value::Ref(Some(old))) = self.heap.get_field(tail, 1) {
            self.barrier_log(tid, old);
        }
        let _ = self.heap.set_field(tail, 1, Value::from(x));
    }

    /// One step of the marker's state machine.
    fn marker_step(&mut self) {
        match self.marker {
            MarkerState::Idle { countdown } => {
                if countdown == 0 || self.all_done() {
                    self.epoch.arm();
                    if wbe_telemetry::tracing_enabled() {
                        wbe_telemetry::trace::event(
                            "sched.epoch.arm",
                            format!("step {}", self.step),
                        );
                    }
                    // Retired threads cannot poll; they acknowledge
                    // implicitly (their final safepoint already flushed).
                    for tid in 0..self.cfg.threads {
                        if self.mutators[tid].done {
                            self.epoch.ack(tid);
                        }
                    }
                    self.marker = MarkerState::Arming;
                    self.armed_at = Some(self.step);
                } else {
                    self.marker = MarkerState::Idle {
                        countdown: countdown - 1,
                    };
                }
            }
            MarkerState::Arming => {
                if !self.epoch.all_acked() {
                    if self.arm_emergency_due() {
                        // Watchdog level 2: some mutator never reached a
                        // safepoint within twice the deadline. Abandon
                        // the arm — an emergency rendezvous back to idle
                        // — rather than stall the world forever.
                        self.counters.watchdog_emergency += 1;
                        if wbe_telemetry::tracing_enabled() {
                            wbe_telemetry::trace::event(
                                "sched.watchdog.emergency",
                                format!("step {} arm age {}", self.step, self.arm_age()),
                            );
                        }
                        self.epoch.end_cycle();
                        self.armed_at = None;
                        self.marker = MarkerState::Idle {
                            countdown: self.cfg.cycle_gap,
                        };
                        return;
                    }
                    self.counters.marker_waits += 1;
                    return;
                }
                // Initial-mark pause: with every thread synchronized,
                // take the snapshot and shade the roots.
                let roots = self.roots();
                if let Err(e) = self.heap.gc.try_begin_marking(&mut self.heap.store, &roots) {
                    self.violation(ViolationKind::Protocol, e.to_string());
                    self.armed_at = None;
                    self.marker = MarkerState::Idle {
                        countdown: self.cfg.cycle_gap,
                    };
                    return;
                }
                self.snapshot = Some(verify::reachable_set(&self.heap, &roots));
                if let Err(e) = self.epoch.snapshot_taken() {
                    // Unreachable (the all_acked gate above) but the
                    // protocol error is reportable, not a panic.
                    self.violation(ViolationKind::Protocol, e.to_string());
                }
                if wbe_telemetry::tracing_enabled() {
                    wbe_telemetry::trace::event(
                        "sched.epoch.snapshot",
                        format!("step {} roots {}", self.step, roots.len()),
                    );
                }
                self.armed_at = None;
                self.marker = MarkerState::Marking;
                self.marker_rest = true;
            }
            MarkerState::Marking => {
                self.marker_rest = true;
                let mut budget = self.cfg.mark_budget;
                if let Some(plan) = self.heap.fault.as_mut() {
                    if plan.skip_mark_step() {
                        self.counters.fault_skipped_steps += 1;
                        return;
                    }
                    if let Some(factor) = plan.drain_pressure() {
                        budget *= factor;
                    }
                }
                let did = self.heap.gc.mark_step(&mut self.heap.store, budget);
                self.counters.mark_work += did as u64;
                if did == 0 {
                    self.stop_requested = true;
                    self.marker = MarkerState::Rendezvous;
                }
            }
            MarkerState::Rendezvous => {
                if !self.all_parked() {
                    self.counters.marker_waits += 1;
                    return;
                }
                self.finish_cycle_stw();
            }
        }
    }

    /// The stop-the-world tail of the cycle: final flushes, remark,
    /// invariant checks, sweep, lost-object audit, resume. Runs as one
    /// atomic scheduler step because the world is stopped.
    fn finish_cycle_stw(&mut self) {
        let _span = wbe_telemetry::span!("sched.gc.stw", "cycle {}", self.counters.cycles + 1);
        for tid in 0..self.cfg.threads {
            if self.mutators[tid].satb.depth() > 0 {
                self.flush_buffer(tid);
            }
        }
        let roots = self.roots();
        let pause = self.heap.gc.remark(&mut self.heap.store, &roots);
        self.counters.remark_drained += pause.log_drained as u64;
        self.counters.cycles += 1;
        for v in verify::verify_post_mark(&self.heap, &roots) {
            self.violation(ViolationKind::Invariant, v.to_string());
        }
        let swept = self.heap.sweep();
        self.counters.swept += swept as u64;
        // The model checker's core invariant: SATB promises that every
        // object in the snapshot survives this cycle's sweep.
        if let Some(snapshot) = self.snapshot.take() {
            for obj in snapshot {
                if !self.heap.store.is_live(obj) {
                    self.violation(
                        ViolationKind::LostObject,
                        format!("snapshot-reachable {obj} freed by sweep"),
                    );
                }
            }
        }
        for v in verify::verify_post_sweep(&self.heap) {
            self.violation(ViolationKind::Invariant, v.to_string());
        }
        self.epoch.end_cycle();
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::event(
                "sched.epoch.end_cycle",
                format!(
                    "step {} cycle {} swept {swept}",
                    self.step, self.counters.cycles
                ),
            );
        }
        self.stop_requested = false;
        for m in &mut self.mutators {
            m.parked = false;
        }
        self.marker = MarkerState::Idle {
            countdown: self.cfg.cycle_gap,
        };
    }
}

/// Runs one schedule of `cfg` under `policy` to completion and returns
/// its trace, counters, and violations. Fully deterministic: equal
/// `(cfg, policy)` give equal outcomes, bit for bit.
pub fn run_schedule(cfg: &SchedConfig, policy: &SchedulePolicy) -> ScheduleOutcome {
    let world_seed = match policy {
        SchedulePolicy::Random { seed } => *seed,
        // Scripted runs derive mutator op streams from the script
        // length-independent constant so a prefix extension explores a
        // different interleaving of the SAME program.
        SchedulePolicy::Scripted { .. } => 0x5eed_5eed_5eed_5eed,
    };
    let mut world = match World::new(cfg, world_seed) {
        Ok(w) => w,
        Err(e) => {
            // Cannot happen (warmup ignores the fault plan), but the
            // no-panic policy wants a reportable path, not an unwrap.
            return ScheduleOutcome {
                trace: Vec::new(),
                runnable: Vec::new(),
                counters: SchedCounters::default(),
                violations: vec![ScheduleViolation {
                    kind: ViolationKind::Protocol,
                    step: 0,
                    cycle: 0,
                    detail: format!("world construction failed: {e}"),
                }],
            };
        }
    };
    let mut rng = match policy {
        SchedulePolicy::Random { seed } => Some(SplitMix64(seed.rotate_left(32) ^ 0xace1)),
        SchedulePolicy::Scripted { .. } => None,
    };
    let script: &[u8] = match policy {
        SchedulePolicy::Scripted { prefix } => prefix,
        SchedulePolicy::Random { .. } => &[],
    };
    let mut trace: Vec<u8> = Vec::new();
    let mut runnable_log: Vec<u32> = Vec::new();
    let marker = marker_id(cfg.threads);

    while !world.finished() {
        if world.step >= STEP_CAP {
            world.violation(
                ViolationKind::Livelock,
                format!("no termination after {STEP_CAP} steps"),
            );
            break;
        }
        let mut mask = world.runnable_mask(true);
        if mask == 0 {
            // Everyone rested at once; rests are scheduling hints, not
            // blocking states — retry without them.
            mask = world.runnable_mask(false);
        }
        if mask == 0 {
            world.violation(ViolationKind::Protocol, "no runnable thread".to_string());
            break;
        }
        let choice: u8 = if let Some(&forced) = script.get(world.step) {
            if mask & (1u32 << forced) != 0 {
                forced
            } else {
                // A forced choice that is no longer runnable (the
                // branch moved the protocol): fall through to the
                // default policy from here on.
                default_choice(mask, trace.last().copied(), marker)
            }
        } else if let Some(rng) = rng.as_mut() {
            let n = mask.count_ones() as u64;
            let mut k = rng.next() % n;
            let mut pick = 0u8;
            for t in 0..=cfg.threads {
                if mask & (1 << t) != 0 {
                    if k == 0 {
                        pick = t as u8;
                        break;
                    }
                    k -= 1;
                }
            }
            pick
        } else {
            default_choice(mask, trace.last().copied(), marker)
        };
        if wbe_telemetry::tracing_enabled() && trace.last() != Some(&choice) {
            let who = if choice == marker {
                "marker".to_string()
            } else {
                format!("t{choice}")
            };
            wbe_telemetry::trace::event(
                "sched.context_switch",
                format!("-> {who} step {}", world.step),
            );
        }
        trace.push(choice);
        runnable_log.push(mask);
        world.counters.steps += 1;
        // Rests influence exactly one scheduling decision: clear them
        // now so only rests set by *this* step affect the next choice.
        world.marker_rest = false;
        for m in &mut world.mutators {
            m.yielded = false;
        }
        if choice == marker {
            world.marker_step();
        } else {
            world.mutator_step(choice as usize);
        }
        world.step += 1;
    }

    world.counters.gated_elisions = world.epoch.stats.gated_elisions;
    world.heap.gc.publish_metrics();
    world.counters.publish();
    ScheduleOutcome {
        trace,
        runnable: runnable_log,
        counters: world.counters,
        violations: world.violations,
    }
}

/// The non-preemptive default: continue the last thread while runnable,
/// else the lowest-id runnable mutator, else the marker.
fn default_choice(mask: u32, last: Option<u8>, marker: u8) -> u8 {
    if let Some(last) = last {
        if mask & (1u32 << last) != 0 {
            return last;
        }
    }
    for t in 0..=u32::from(marker) {
        if mask & (1 << t) != 0 {
            return t as u8;
        }
    }
    marker
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threads: usize, scenario: Scenario) -> SchedConfig {
        SchedConfig {
            threads,
            scenario,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn sound_schedules_have_no_violations() {
        for scenario in Scenario::ALL {
            for seed in 0..20u64 {
                let out = run_schedule(&cfg(3, scenario), &SchedulePolicy::Random { seed });
                assert!(
                    out.violations.is_empty(),
                    "{scenario} seed {seed}: {:?}",
                    out.violations
                );
                assert!(out.counters.cycles >= 1, "at least one full cycle runs");
                assert!(out.counters.elided_stores > 0, "elision exercised");
            }
        }
    }

    #[test]
    fn same_seed_same_digest_and_counters() {
        let c = cfg(4, Scenario::Churn);
        let a = run_schedule(&c, &SchedulePolicy::Random { seed: 7 });
        let b = run_schedule(&c, &SchedulePolicy::Random { seed: 7 });
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.digest(), b.digest());
        let c2 = run_schedule(&c, &SchedulePolicy::Random { seed: 8 });
        assert_ne!(a.digest(), c2.digest(), "different seeds diverge");
    }

    #[test]
    fn demo_unsound_is_caught_under_some_seed() {
        let c = SchedConfig {
            threads: 2,
            scenario: Scenario::Churn,
            demo_unsound: true,
            ..SchedConfig::default()
        };
        let mut caught = None;
        for seed in 0..200u64 {
            let out = run_schedule(&c, &SchedulePolicy::Random { seed });
            if out
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::LostObject)
            {
                caught = Some((seed, out));
                break;
            }
        }
        let (seed, out) = caught.expect("some schedule must lose an object");
        assert!(out.counters.unsound_elisions > 0);
        // The failing schedule replays to the same digest.
        let replay = run_schedule(&c, &SchedulePolicy::Random { seed });
        assert_eq!(out.digest(), replay.digest());
        assert_eq!(out.violations, replay.violations);
    }

    #[test]
    fn scripted_prefix_replays_and_default_is_non_preemptive() {
        let c = cfg(2, Scenario::Chain);
        let base = run_schedule(&c, &SchedulePolicy::Scripted { prefix: Vec::new() });
        assert!(base.violations.is_empty());
        assert_eq!(base.preemptions(), 0, "default policy never preempts");
        // Forcing the full trace reproduces it exactly.
        let forced = run_schedule(
            &c,
            &SchedulePolicy::Scripted {
                prefix: base.trace.clone(),
            },
        );
        assert_eq!(base.trace, forced.trace);
        assert_eq!(base.digest(), forced.digest());
    }

    #[test]
    fn epoch_gating_counts_when_mutators_run_while_armed() {
        // Across seeds, some schedule runs a mutator op between arm and
        // its ack; those elisions must be gated.
        let c = cfg(4, Scenario::Chain);
        let total: u64 = (0..30)
            .map(|seed| {
                run_schedule(&c, &SchedulePolicy::Random { seed })
                    .counters
                    .gated_elisions
            })
            .sum();
        assert!(total > 0, "no elision was ever gated across 30 seeds");
    }

    #[test]
    fn fault_plan_composes_without_violations() {
        let c = SchedConfig {
            threads: 3,
            scenario: Scenario::Churn,
            fault: Some(FaultConfig::from_seed(99)),
            ..SchedConfig::default()
        };
        let mut any_fault = false;
        for seed in 0..20u64 {
            let out = run_schedule(&c, &SchedulePolicy::Random { seed });
            assert!(
                out.violations.is_empty(),
                "seed {seed}: {:?}",
                out.violations
            );
            any_fault |= out.counters.alloc_faults > 0 || out.counters.fault_skipped_steps > 0;
        }
        assert!(any_fault, "fault plan injected nothing across 20 seeds");
    }

    #[test]
    fn watchdog_pacing_forces_overdue_acks() {
        // Deadline 0: an armed epoch is overdue after a single step, so
        // any stalled mutator's next slice is forced to poll. The
        // schedules stay sound — pacing only moves polls earlier.
        let c = SchedConfig {
            arm_deadline: 0,
            ..cfg(2, Scenario::Chain)
        };
        let mut paced = 0;
        for seed in 0..10u64 {
            let out = run_schedule(&c, &SchedulePolicy::Random { seed });
            assert!(
                out.violations.is_empty(),
                "seed {seed}: {:?}",
                out.violations
            );
            paced += out.counters.watchdog_pacing;
        }
        assert!(paced > 0, "no pacing hint fired across 10 seeds");
    }

    #[test]
    fn watchdog_emergency_abandons_stalled_arm() {
        // Script the marker to keep running while its armed epoch is
        // unacknowledged: with deadline 0 the arm is emergency-due one
        // step after arming, so the marker abandons it (rather than
        // stalling) and the world completes once the mutator runs.
        let c = SchedConfig {
            arm_deadline: 0,
            ..cfg(1, Scenario::Chain)
        };
        let marker = marker_id(1);
        let mut prefix = vec![marker; 8];
        prefix.extend(std::iter::repeat_n(0u8, 60));
        let out = run_schedule(&c, &SchedulePolicy::Scripted { prefix });
        assert!(
            out.counters.watchdog_emergency > 0,
            "stalled arm was not abandoned: {:?}",
            out.counters
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.counters.cycles >= 1, "the world still completed");
    }

    #[test]
    fn single_mutator_world_is_sound() {
        let out = run_schedule(
            &cfg(1, Scenario::Shared),
            &SchedulePolicy::Random { seed: 3 },
        );
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.counters.cycles >= 1);
    }
}
