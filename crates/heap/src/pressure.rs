//! Heap-pressure controller: the graceful-degradation ladder.
//!
//! PR 2 gave the runtime exactly one answer to allocation pressure: the
//! emergency stop-the-world pause. That is a cliff — a server workload
//! whose allocation bursts outrun the concurrent marker falls straight
//! from "everything is fine" to "the world is stopped". This module
//! inserts the intermediate rungs a production collector has:
//!
//! | rung | actuator | who applies it |
//! |------|----------|----------------|
//! | [`PressureLevel::Nominal`]    | none | — |
//! | [`PressureLevel::Pacing`]     | start/boost concurrent marking early | interpreter & serve world |
//! | [`PressureLevel::Throttling`] | stall mutator allocation | interpreter & serve world |
//! | [`PressureLevel::Shedding`]   | reject incoming requests (admission control) | serve world only |
//! | [`PressureLevel::Emergency`]  | forced stop-the-world collection | interpreter & serve world |
//!
//! The controller itself is a plain deterministic state machine: it
//! *decides* the rung from observed heap occupancy against a configured
//! budget (with hysteresis so the ladder does not flap), and *records*
//! every transition with a machine-readable reason. The actuators live
//! with the layers that own the resources — the interpreter paces,
//! throttles, and pauses; the serve harness additionally sheds, because
//! only it has an admission queue. Occupancy in, rung out: replaying
//! the same occupancy sequence replays the same transitions, which is
//! what keeps `wbe_tool serve` byte-identical for a seed.
//!
//! Counters mirror into the registry under `gc.pressure.*`.

use std::fmt;

/// Rungs of the degradation ladder, in escalation order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PressureLevel {
    /// Occupancy under the pacing threshold; no intervention.
    #[default]
    Nominal,
    /// Marking is started (or boosted) earlier than the allocation
    /// trigger would ask for.
    Pacing,
    /// Mutator allocations are stalled to slow the burn rate.
    Throttling,
    /// New requests are rejected at admission (serve world only).
    Shedding,
    /// Final rung: a forced stop-the-world collection.
    Emergency,
}

impl PressureLevel {
    /// All rungs, in escalation order.
    pub const ALL: [PressureLevel; 5] = [
        PressureLevel::Nominal,
        PressureLevel::Pacing,
        PressureLevel::Throttling,
        PressureLevel::Shedding,
        PressureLevel::Emergency,
    ];

    /// Stable machine-readable name (used in telemetry keys, NDJSON,
    /// and transition reasons).
    pub fn name(self) -> &'static str {
        match self {
            PressureLevel::Nominal => "nominal",
            PressureLevel::Pacing => "pacing",
            PressureLevel::Throttling => "throttling",
            PressureLevel::Shedding => "shedding",
            PressureLevel::Emergency => "emergency",
        }
    }

    /// The machine-readable reason attached to a step *up onto* this
    /// rung (occupancy crossed the rung's threshold).
    pub fn ascend_reason(self) -> &'static str {
        match self {
            PressureLevel::Nominal => "occupancy-nominal",
            PressureLevel::Pacing => "occupancy-above-pace",
            PressureLevel::Throttling => "occupancy-above-throttle",
            PressureLevel::Shedding => "occupancy-above-shed",
            PressureLevel::Emergency => "occupancy-above-emergency",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    fn from_index(i: usize) -> PressureLevel {
        PressureLevel::ALL[i]
    }
}

impl fmt::Display for PressureLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Machine-readable reason for stepping one rung back down.
pub const DESCEND_REASON: &str = "occupancy-recovered";

/// Tunables for the ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PressureConfig {
    /// Heap occupancy budget (live objects) the thresholds are
    /// percentages of. This is a *policy* budget, not an allocator
    /// limit: the store itself never refuses an allocation.
    pub budget: usize,
    /// Occupancy ≥ this % of budget enters [`PressureLevel::Pacing`].
    pub pace_pct: u32,
    /// Occupancy ≥ this % enters [`PressureLevel::Throttling`].
    pub throttle_pct: u32,
    /// Occupancy ≥ this % enters [`PressureLevel::Shedding`].
    pub shed_pct: u32,
    /// Occupancy ≥ this % enters [`PressureLevel::Emergency`].
    pub emergency_pct: u32,
    /// Hysteresis in percentage points: the controller steps down one
    /// rung only once occupancy has dropped this far below the current
    /// rung's threshold, so the ladder does not flap around a boundary.
    pub hysteresis_pct: u32,
    /// Abstract stall cycles an actuator charges per allocation while
    /// at [`PressureLevel::Throttling`] or above.
    pub throttle_stall: u64,
    /// Observations that must pass after a forced emergency pause
    /// before the controller asks for another, bounding worst-case
    /// pause clustering when the live set simply does not shrink.
    pub emergency_cooldown: u64,
}

impl PressureConfig {
    /// The standard ladder shape over an explicit budget.
    pub fn with_budget(budget: usize) -> Self {
        PressureConfig {
            budget,
            pace_pct: 60,
            throttle_pct: 75,
            shed_pct: 85,
            emergency_pct: 95,
            hysteresis_pct: 5,
            throttle_stall: 16,
            emergency_cooldown: 32,
        }
    }

    /// The occupancy (in objects) at which `level` engages.
    pub fn threshold(&self, level: PressureLevel) -> usize {
        let pct = match level {
            PressureLevel::Nominal => return 0,
            PressureLevel::Pacing => self.pace_pct,
            PressureLevel::Throttling => self.throttle_pct,
            PressureLevel::Shedding => self.shed_pct,
            PressureLevel::Emergency => self.emergency_pct,
        };
        (self.budget.saturating_mul(pct as usize)) / 100
    }

    fn hysteresis(&self) -> usize {
        (self.budget.saturating_mul(self.hysteresis_pct as usize)) / 100
    }
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig::with_budget(4096)
    }
}

/// One recorded ladder transition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PressureTransition {
    /// Rung before.
    pub from: PressureLevel,
    /// Rung after.
    pub to: PressureLevel,
    /// Machine-readable reason (`occupancy-above-*` going up,
    /// [`DESCEND_REASON`] going down).
    pub reason: &'static str,
    /// Observation ordinal at which the transition fired.
    pub at_observation: u64,
    /// Occupancy that triggered it.
    pub occupancy: usize,
}

impl fmt::Display for PressureTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({}, occupancy {} at obs {})",
            self.from, self.to, self.reason, self.occupancy, self.at_observation
        )
    }
}

/// Lifetime counters, mirrored into the registry as `gc.pressure.*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PressureStats {
    /// Occupancy observations taken.
    pub observations: u64,
    /// Times [`PressureLevel::Pacing`] was entered from below.
    pub pace_entries: u64,
    /// Times [`PressureLevel::Throttling`] was entered from below.
    pub throttle_entries: u64,
    /// Times [`PressureLevel::Shedding`] was entered from below.
    pub shed_entries: u64,
    /// Times [`PressureLevel::Emergency`] was entered from below.
    pub emergency_entries: u64,
    /// Step-downs taken (one rung each).
    pub step_downs: u64,
    /// Early/boosted marking starts an actuator attributed to pacing.
    pub pace_starts: u64,
    /// Allocation stalls an actuator charged while throttling.
    pub throttle_stalls: u64,
    /// Requests rejected at admission while shedding.
    pub shed_requests: u64,
    /// Forced stop-the-world pauses taken on the emergency rung.
    pub emergency_pauses: u64,
}

impl PressureStats {
    /// Rung-entry counter for `level` (observations for `Nominal`).
    pub fn entries(&self, level: PressureLevel) -> u64 {
        match level {
            PressureLevel::Nominal => self.observations,
            PressureLevel::Pacing => self.pace_entries,
            PressureLevel::Throttling => self.throttle_entries,
            PressureLevel::Shedding => self.shed_entries,
            PressureLevel::Emergency => self.emergency_entries,
        }
    }
}

/// The ladder state machine. Deterministic: rung decisions are a pure
/// function of the observed occupancy sequence and the configuration.
#[derive(Clone, Debug)]
pub struct PressureController {
    cfg: PressureConfig,
    level: PressureLevel,
    /// The highest rung ever reached.
    high_water: PressureLevel,
    transitions: Vec<PressureTransition>,
    observations_since_emergency: u64,
    /// Lifetime counters.
    pub stats: PressureStats,
    published: PressureStats,
}

impl PressureController {
    /// A controller at [`PressureLevel::Nominal`].
    pub fn new(cfg: PressureConfig) -> Self {
        PressureController {
            cfg,
            level: PressureLevel::Nominal,
            high_water: PressureLevel::Nominal,
            transitions: Vec::new(),
            observations_since_emergency: u64::MAX,
            stats: PressureStats::default(),
            published: PressureStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PressureConfig {
        &self.cfg
    }

    /// The current rung.
    pub fn level(&self) -> PressureLevel {
        self.level
    }

    /// The highest rung the run ever reached.
    pub fn high_water(&self) -> PressureLevel {
        self.high_water
    }

    /// Every transition taken, in order.
    pub fn transitions(&self) -> &[PressureTransition] {
        &self.transitions
    }

    /// Feeds one occupancy sample and returns the (possibly new) rung.
    /// Stepping up crosses rungs one at a time so every intermediate
    /// rung's entry is recorded with its own reason; stepping down takes
    /// one rung per observation and only once occupancy has fallen a
    /// hysteresis margin below the current rung's threshold.
    pub fn observe(&mut self, occupancy: usize) -> PressureLevel {
        self.stats.observations += 1;
        self.observations_since_emergency = self.observations_since_emergency.saturating_add(1);
        let target = self.target_for(occupancy);
        while self.level < target {
            let from = self.level;
            let to = PressureLevel::from_index(from.index() + 1);
            self.enter(from, to, to.ascend_reason(), occupancy);
        }
        if target < self.level {
            let threshold = self.cfg.threshold(self.level);
            if occupancy + self.cfg.hysteresis() < threshold {
                let from = self.level;
                let to = PressureLevel::from_index(from.index() - 1);
                self.enter(from, to, DESCEND_REASON, occupancy);
                self.stats.step_downs += 1;
            }
        }
        self.level
    }

    fn target_for(&self, occupancy: usize) -> PressureLevel {
        let mut target = PressureLevel::Nominal;
        for level in [
            PressureLevel::Pacing,
            PressureLevel::Throttling,
            PressureLevel::Shedding,
            PressureLevel::Emergency,
        ] {
            if occupancy >= self.cfg.threshold(level) {
                target = level;
            }
        }
        target
    }

    fn enter(
        &mut self,
        from: PressureLevel,
        to: PressureLevel,
        reason: &'static str,
        occupancy: usize,
    ) {
        if to > from {
            match to {
                PressureLevel::Pacing => self.stats.pace_entries += 1,
                PressureLevel::Throttling => self.stats.throttle_entries += 1,
                PressureLevel::Shedding => self.stats.shed_entries += 1,
                PressureLevel::Emergency => self.stats.emergency_entries += 1,
                PressureLevel::Nominal => {}
            }
        }
        self.transitions.push(PressureTransition {
            from,
            to,
            reason,
            at_observation: self.stats.observations,
            occupancy,
        });
        self.level = to;
        self.high_water = self.high_water.max(to);
        if wbe_telemetry::tracing_enabled() {
            wbe_telemetry::trace::event(
                "gc.pressure.transition",
                format!("{from} -> {to} ({reason}, occupancy {occupancy})"),
            );
        }
    }

    /// Actuator report: concurrent marking was started or boosted
    /// because the ladder is at [`PressureLevel::Pacing`] or above.
    pub fn note_pace_start(&mut self) {
        self.stats.pace_starts += 1;
    }

    /// Actuator report: one allocation was stalled while throttling.
    /// Returns the stall size to charge (abstract cycles).
    pub fn note_throttle_stall(&mut self) -> u64 {
        self.stats.throttle_stalls += 1;
        self.cfg.throttle_stall
    }

    /// Admission-control report: one request was shed.
    pub fn note_shed(&mut self) {
        self.stats.shed_requests += 1;
    }

    /// Asks whether a forced emergency pause should be taken now: true
    /// only on the emergency rung and outside the post-pause cooldown
    /// window. The caller must report the pause via
    /// [`PressureController::note_emergency_pause`].
    pub fn emergency_pause_due(&self) -> bool {
        self.level == PressureLevel::Emergency
            && self.observations_since_emergency >= self.cfg.emergency_cooldown
    }

    /// Actuator report: a forced stop-the-world pause was taken. Starts
    /// the cooldown window.
    pub fn note_emergency_pause(&mut self) {
        self.stats.emergency_pauses += 1;
        self.observations_since_emergency = 0;
    }

    /// Mirrors counter deltas since the previous publish into the
    /// global registry under `gc.pressure.*`, plus the current rung as
    /// a gauge (its [`PressureLevel`] index).
    pub fn publish_metrics(&mut self) {
        if !wbe_telemetry::metrics_enabled() {
            return;
        }
        let (s, p) = (&self.stats, &self.published);
        for (name, cur, old) in [
            ("gc.pressure.observations", s.observations, p.observations),
            ("gc.pressure.pace_entries", s.pace_entries, p.pace_entries),
            (
                "gc.pressure.throttle_entries",
                s.throttle_entries,
                p.throttle_entries,
            ),
            ("gc.pressure.shed_entries", s.shed_entries, p.shed_entries),
            (
                "gc.pressure.emergency_entries",
                s.emergency_entries,
                p.emergency_entries,
            ),
            ("gc.pressure.step_downs", s.step_downs, p.step_downs),
            ("gc.pressure.pace_starts", s.pace_starts, p.pace_starts),
            (
                "gc.pressure.throttle_stalls",
                s.throttle_stalls,
                p.throttle_stalls,
            ),
            (
                "gc.pressure.shed_requests",
                s.shed_requests,
                p.shed_requests,
            ),
            (
                "gc.pressure.emergency_pauses",
                s.emergency_pauses,
                p.emergency_pauses,
            ),
        ] {
            wbe_telemetry::counter(name).add(cur - old);
        }
        wbe_telemetry::gauge("gc.pressure.level").set(self.level.index() as u64);
        self.published = self.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> PressureController {
        PressureController::new(PressureConfig::with_budget(100))
    }

    #[test]
    fn rungs_engage_at_thresholds_in_order() {
        let mut pc = ctl();
        assert_eq!(pc.observe(10), PressureLevel::Nominal);
        assert_eq!(pc.observe(60), PressureLevel::Pacing);
        assert_eq!(pc.observe(75), PressureLevel::Throttling);
        assert_eq!(pc.observe(85), PressureLevel::Shedding);
        assert_eq!(pc.observe(95), PressureLevel::Emergency);
        assert_eq!(pc.high_water(), PressureLevel::Emergency);
        let reasons: Vec<_> = pc.transitions().iter().map(|t| t.reason).collect();
        assert_eq!(
            reasons,
            vec![
                "occupancy-above-pace",
                "occupancy-above-throttle",
                "occupancy-above-shed",
                "occupancy-above-emergency",
            ]
        );
        assert_eq!(pc.stats.pace_entries, 1);
        assert_eq!(pc.stats.throttle_entries, 1);
        assert_eq!(pc.stats.shed_entries, 1);
        assert_eq!(pc.stats.emergency_entries, 1);
    }

    #[test]
    fn a_jump_records_every_intermediate_rung() {
        let mut pc = ctl();
        assert_eq!(pc.observe(96), PressureLevel::Emergency);
        assert_eq!(pc.transitions().len(), 4, "one record per rung crossed");
        assert_eq!(pc.transitions()[0].from, PressureLevel::Nominal);
        assert_eq!(pc.transitions()[3].to, PressureLevel::Emergency);
        assert!(pc.transitions().iter().all(|t| t.occupancy == 96));
    }

    #[test]
    fn hysteresis_prevents_flapping_and_descent_is_gradual() {
        let mut pc = ctl();
        pc.observe(80); // Throttling (threshold 75)
        assert_eq!(pc.level(), PressureLevel::Throttling);
        // Just below the threshold but within hysteresis (5): hold.
        assert_eq!(pc.observe(72), PressureLevel::Throttling);
        // Clear of the margin: step down one rung per observation.
        assert_eq!(pc.observe(40), PressureLevel::Pacing);
        assert_eq!(pc.observe(40), PressureLevel::Nominal);
        assert_eq!(pc.stats.step_downs, 2);
        let last = pc.transitions().last().unwrap();
        assert_eq!(last.reason, DESCEND_REASON);
    }

    #[test]
    fn emergency_cooldown_bounds_pause_clustering() {
        let mut pc = PressureController::new(PressureConfig {
            emergency_cooldown: 3,
            ..PressureConfig::with_budget(100)
        });
        pc.observe(99);
        assert!(pc.emergency_pause_due(), "first pause is immediate");
        pc.note_emergency_pause();
        pc.observe(99);
        assert!(!pc.emergency_pause_due(), "cooldown holds");
        pc.observe(99);
        pc.observe(99);
        assert!(pc.emergency_pause_due(), "cooldown elapsed");
        assert_eq!(pc.stats.emergency_pauses, 1);
    }

    #[test]
    fn each_rung_engages_exactly_at_its_threshold() {
        // One object below each threshold must NOT engage the rung;
        // the exact threshold must. Budget 1000 keeps the percentage
        // arithmetic exact (60% = 600 objects, no truncation).
        let cases = [
            (PressureLevel::Pacing, 60usize),
            (PressureLevel::Throttling, 75),
            (PressureLevel::Shedding, 85),
            (PressureLevel::Emergency, 95),
        ];
        for (level, pct) in cases {
            let threshold = pct * 10; // of budget 1000
            let mut pc = PressureController::new(PressureConfig::with_budget(1000));
            assert!(
                pc.observe(threshold - 1) < level,
                "{level}: {} must stay below",
                threshold - 1
            );
            let mut pc = PressureController::new(PressureConfig::with_budget(1000));
            assert_eq!(
                pc.observe(threshold),
                level,
                "{level}: exact threshold {threshold} engages"
            );
            assert_eq!(pc.config().threshold(level), threshold);
        }
    }

    #[test]
    fn step_down_fires_exactly_one_object_past_the_hysteresis_margin() {
        // Budget 1000, throttle threshold 750, hysteresis 50: the
        // step-down condition is `occupancy + 50 < 750`, so 700 holds
        // the rung and 699 releases it.
        let mut pc = PressureController::new(PressureConfig::with_budget(1000));
        pc.observe(750);
        assert_eq!(pc.level(), PressureLevel::Throttling);
        assert_eq!(
            pc.observe(700),
            PressureLevel::Throttling,
            "at margin: hold"
        );
        assert_eq!(pc.stats.step_downs, 0);
        assert_eq!(pc.observe(699), PressureLevel::Pacing, "past margin: down");
        assert_eq!(pc.stats.step_downs, 1);
    }

    #[test]
    fn cooldown_boundary_is_inclusive_and_reentry_restarts_it() {
        let mut pc = PressureController::new(PressureConfig {
            emergency_cooldown: 3,
            ..PressureConfig::with_budget(100)
        });
        pc.observe(99);
        pc.note_emergency_pause();
        // Cooldown 3: due again exactly when 3 observations have passed
        // since the pause, not one earlier.
        pc.observe(99);
        pc.observe(99);
        assert!(!pc.emergency_pause_due(), "2 observations: still cooling");
        pc.observe(99);
        assert!(pc.emergency_pause_due(), "3 observations: due again");
        // Taking the second pause restarts the window from zero.
        pc.note_emergency_pause();
        assert!(!pc.emergency_pause_due());
        pc.observe(99);
        pc.observe(99);
        assert!(!pc.emergency_pause_due());
        pc.observe(99);
        assert!(pc.emergency_pause_due());
        // Leaving the emergency rung also suppresses pauses regardless
        // of the cooldown state.
        for _ in 0..4 {
            pc.observe(10);
        }
        assert!(pc.level() < PressureLevel::Emergency);
        assert!(!pc.emergency_pause_due());
        assert_eq!(pc.stats.emergency_pauses, 2);
    }

    #[test]
    fn actuator_notes_count() {
        let mut pc = ctl();
        pc.observe(76);
        pc.note_pace_start();
        assert_eq!(pc.note_throttle_stall(), pc.config().throttle_stall);
        pc.note_shed();
        pc.note_emergency_pause();
        assert_eq!(pc.stats.pace_starts, 1);
        assert_eq!(pc.stats.throttle_stalls, 1);
        assert_eq!(pc.stats.shed_requests, 1);
        assert_eq!(pc.stats.emergency_pauses, 1);
    }

    #[test]
    fn same_occupancy_sequence_same_transitions() {
        let seq: Vec<usize> = (0..200).map(|i| (i * 7) % 120).collect();
        let mut a = ctl();
        let mut b = ctl();
        for &o in &seq {
            assert_eq!(a.observe(o), b.observe(o));
        }
        assert_eq!(a.transitions(), b.transitions());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn level_names_are_stable() {
        for l in PressureLevel::ALL {
            assert!(!l.name().is_empty());
            assert!(l.ascend_reason().starts_with("occupancy-"));
        }
        assert!(PressureLevel::Emergency > PressureLevel::Shedding);
    }
}
