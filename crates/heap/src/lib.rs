#![warn(missing_docs)]

//! Managed heap substrate for the write-barrier-elision reproduction.
//!
//! The CGO 2005 paper's analyses exist to elide the mutator's
//! snapshot-at-the-beginning (SATB) write barriers. To exercise them
//! end-to-end we need a managed runtime; this crate provides it:
//!
//! * a heap of objects, reference arrays, and int arrays with a
//!   **zeroing allocator** — the property that makes initializing writes
//!   pre-null and therefore elidable;
//! * an **SATB concurrent marker** ([`gc`]): the mutator logs overwritten
//!   non-null references while marking is in progress; the collector
//!   marks the logical snapshot of the object graph taken when marking
//!   started;
//! * an **incremental-update marker** in the mostly-parallel style of
//!   Boehm–Demers–Shenker, as the comparison point: the mutator dirties
//!   modified objects and the collector re-examines them (including all
//!   objects allocated during marking) in its final stop-the-world
//!   remark — the pause SATB avoids;
//! * the **array tracing-state protocol** of the paper's §4.3
//!   (untraced/tracing/traced header bits plus a retrace list) used by
//!   the optimistic array-rearrangement optimization.
//!
//! Concurrency is *stepped* by default — the driver interleaves mutator
//! work and `mark_step` calls deterministically — which makes every GC
//! test reproducible. A real-thread mode lives in [`threaded`].
//!
//! # Example
//!
//! ```
//! use wbe_heap::{Heap, Value, FieldShape};
//! use wbe_heap::gc::MarkStyle;
//!
//! let mut heap = Heap::new(MarkStyle::Satb);
//! let a = heap.alloc_object(0, &[FieldShape::Ref, FieldShape::Int])?;
//! let b = heap.alloc_object(0, &[FieldShape::Ref, FieldShape::Int])?;
//! // a.f0 = b (no barrier needed: marking idle and old value is null)
//! heap.set_field(a, 0, Value::Ref(Some(b)))?;
//! heap.gc.begin_marking(&mut heap.store, &[a]);
//! while heap.gc.mark_step(&mut heap.store, 16) > 0 {}
//! let pause = heap.gc.remark(&mut heap.store, &[a]);
//! assert_eq!(pause.objects_scanned, 0); // everything traced concurrently
//! assert!(heap.gc.is_marked(b));
//! # Ok::<(), wbe_heap::HeapError>(())
//! ```

pub mod debug;
pub mod fault;
pub mod gc;
pub mod heap;
pub mod mcheck;
pub mod object;
pub mod overload;
pub mod pressure;
pub mod recover;
pub mod safepoint;
pub mod sched;
pub mod threaded;
pub mod value;
pub mod verify;
pub mod witness;

pub use fault::{FaultConfig, FaultPlan, FaultStats};
pub use heap::{Heap, HeapError, HeapStats, Store};
pub use mcheck::{CheckerConfig, FailingSchedule, McheckReport, Replay};
pub use object::{HeapObject, ObjKind, TraceState};
pub use overload::{run_serve, ServeCounters, ServeOutcome, ServeScenario, ServeWorldConfig};
pub use pressure::{
    PressureConfig, PressureController, PressureLevel, PressureStats, PressureTransition,
};
pub use recover::{RecoveryAction, RecoveryController, RecoveryPolicy, RecoveryStats};
pub use safepoint::{EpochState, SatbBuffer, SnapshotBeforeAck};
pub use sched::{Scenario, SchedConfig, SchedCounters, ScheduleOutcome, SchedulePolicy};
pub use value::{FieldShape, GcRef, Value};
pub use witness::{ClassWitness, WitnessTable};
