//! Concurrent marking: SATB and incremental-update styles.
//!
//! Both markers run *stepped*: the driver (interpreter or test)
//! interleaves mutator work with [`GcState::mark_step`] calls, then ends
//! the cycle with a stop-the-world [`GcState::remark`] whose measured
//! work is the "pause". This reproduces the paper's framing:
//!
//! * **SATB** (snapshot at the beginning, Yuasa-style): the collector
//!   marks everything reachable in the logical snapshot taken at
//!   [`GcState::begin_marking`]. The mutator's barrier logs overwritten
//!   non-null references ([`GcState::satb_log`]); objects allocated
//!   during marking are allocated black (implicitly marked), so the
//!   remark pause only drains the residual log.
//! * **Incremental update** (mostly-parallel, Boehm–Demers–Shenker
//!   style): the mutator's barrier dirties modified objects
//!   ([`GcState::dirty`]); the remark pause must rescan every dirty
//!   object — including all objects allocated and initialized during
//!   marking — which is why its pauses are often an order of magnitude
//!   longer (§1, §4.5 of the paper).

use std::collections::BTreeSet;

use crate::heap::Store;
use crate::object::{ObjKind, TraceState};
use crate::value::GcRef;

/// Error from [`GcState::try_begin_marking`]: a marking cycle is already
/// in progress on this collector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleInProgress;

impl std::fmt::Display for CycleInProgress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a marking cycle is already in progress")
    }
}

impl std::error::Error for CycleInProgress {}

/// Which concurrent marking style the collector uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MarkStyle {
    /// Snapshot-at-the-beginning with a pre-write logging barrier.
    Satb,
    /// Incremental update with a dirty-object (card-marking) barrier.
    IncrementalUpdate,
}

/// Collector phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Phase {
    /// No cycle in progress; barriers may be skipped.
    #[default]
    Idle,
    /// Concurrent marking in progress; barriers are required.
    Marking,
}

/// Work performed during the stop-the-world remark — the "pause" the
/// experiments measure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PauseReport {
    /// Objects scanned during the pause.
    pub objects_scanned: usize,
    /// Reference slots traced during the pause.
    pub refs_traced: usize,
    /// SATB log entries drained during the pause.
    pub log_drained: usize,
    /// Dirty objects rescanned during the pause (incremental update).
    pub dirty_rescanned: usize,
    /// Arrays retraced via the §4.3 retrace list.
    pub retraced: usize,
    /// Roots examined during the pause (both styles pay this).
    pub roots_examined: usize,
}

impl PauseReport {
    /// Total pause work in abstract units (one per object scan, ref
    /// trace, log drain, and rescan).
    pub fn work_units(&self) -> usize {
        self.objects_scanned
            + self.refs_traced
            + self.log_drained
            + self.dirty_rescanned
            + self.roots_examined
    }
}

/// Cumulative collector statistics.
///
/// Kept as a plain struct so barrier-adjacent hot paths bump fields
/// without touching atomics; [`GcState`] mirrors the values into the
/// process-global telemetry registry (counters `heap.gc.*`) at cycle
/// boundaries, so the struct is the façade and the registry the export
/// path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Completed marking cycles.
    pub cycles: u64,
    /// SATB log entries recorded by the mutator barrier.
    pub satb_logs: u64,
    /// Objects dirtied by the incremental-update barrier.
    pub dirty_marks: u64,
    /// Objects scanned concurrently (outside pauses).
    pub concurrent_scans: u64,
    /// Objects allocated black (during SATB marking).
    pub allocated_black: u64,
    /// Objects freed by sweeps.
    pub swept: u64,
}

impl GcStats {
    /// Accumulates `other` into `self` field-by-field, for aggregating
    /// statistics across heaps/runs without hand-summing each field.
    pub fn merge(&mut self, other: &GcStats) {
        self.cycles += other.cycles;
        self.satb_logs += other.satb_logs;
        self.dirty_marks += other.dirty_marks;
        self.concurrent_scans += other.concurrent_scans;
        self.allocated_black += other.allocated_black;
        self.swept += other.swept;
    }
}

impl std::fmt::Display for GcStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycles={} satb_logs={} dirty_marks={} concurrent_scans={} allocated_black={} swept={}",
            self.cycles,
            self.satb_logs,
            self.dirty_marks,
            self.concurrent_scans,
            self.allocated_black,
            self.swept
        )
    }
}

/// Pre-resolved registry handles for the collector's metrics. Resolved
/// lazily on the first probe that fires while metrics are enabled (see
/// [`GcState::metrics`]), so a disabled run never touches the registry
/// — not even to register the names. Publishing is a handful of
/// relaxed atomic adds per GC cycle.
#[derive(Debug)]
struct GcMetrics {
    cycles: wbe_telemetry::Counter,
    satb_logs: wbe_telemetry::Counter,
    dirty_marks: wbe_telemetry::Counter,
    concurrent_scans: wbe_telemetry::Counter,
    allocated_black: wbe_telemetry::Counter,
    swept: wbe_telemetry::Counter,
    pause_work_units: wbe_telemetry::Histogram,
    pause_us: wbe_telemetry::Histogram,
    // Per-phase work-unit histograms (see [`phase_histograms`]): the
    // profiler and bench JSON report p50/p90/p99/max per GC phase from
    // these. Work units are deterministic under a deterministic GC
    // policy, unlike the wall-clock `.us` histogram.
    pause_initial_mark: wbe_telemetry::Histogram,
    pause_mark_step: wbe_telemetry::Histogram,
    pause_remark: wbe_telemetry::Histogram,
    pause_sweep: wbe_telemetry::Histogram,
}

impl GcMetrics {
    fn new() -> Self {
        GcMetrics {
            cycles: wbe_telemetry::counter("heap.gc.cycles"),
            satb_logs: wbe_telemetry::counter("heap.gc.satb_logs"),
            dirty_marks: wbe_telemetry::counter("heap.gc.dirty_marks"),
            concurrent_scans: wbe_telemetry::counter("heap.gc.concurrent_scans"),
            allocated_black: wbe_telemetry::counter("heap.gc.allocated_black"),
            swept: wbe_telemetry::counter("heap.gc.swept"),
            pause_work_units: wbe_telemetry::histogram("heap.gc.pause.work_units"),
            pause_us: wbe_telemetry::histogram("heap.gc.pause.us"),
            pause_initial_mark: wbe_telemetry::histogram(PHASE_INITIAL_MARK),
            pause_mark_step: wbe_telemetry::histogram(PHASE_MARK_STEP),
            pause_remark: wbe_telemetry::histogram(PHASE_REMARK),
            pause_sweep: wbe_telemetry::histogram(PHASE_SWEEP),
        }
    }
}

/// Registry key of the initial-mark (root-scan at cycle start)
/// work-unit histogram.
pub const PHASE_INITIAL_MARK: &str = "heap.gc.pause.initial_mark.work_units";
/// Registry key of the concurrent-mark-step work-unit histogram (one
/// sample per [`GcState::mark_step`] that performed work).
pub const PHASE_MARK_STEP: &str = "heap.gc.pause.mark_step.work_units";
/// Registry key of the STW remark work-unit histogram (same samples as
/// the legacy `heap.gc.pause.work_units` key, which stays for the
/// baseline gate).
pub const PHASE_REMARK: &str = "heap.gc.pause.remark.work_units";
/// Registry key of the sweep-slice work-unit histogram (one sample per
/// sweep; work = slots examined).
pub const PHASE_SWEEP: &str = "heap.gc.pause.sweep.work_units";

/// Collector state: mark bits, grey stack, mutator-barrier buffers.
#[derive(Debug)]
pub struct GcState {
    style: MarkStyle,
    phase: Phase,
    mark: Vec<bool>,
    grey: Vec<GcRef>,
    satb_buf: Vec<GcRef>,
    dirty: BTreeSet<GcRef>,
    retrace: BTreeSet<GcRef>,
    /// Cumulative statistics.
    pub stats: GcStats,
    /// Portion of `stats` already mirrored into the registry.
    published: GcStats,
    /// Lazily resolved registry handles; `None` until a probe fires
    /// with metrics enabled.
    metrics: Option<GcMetrics>,
}

impl GcState {
    /// Creates an idle collector of the given style.
    pub fn new(style: MarkStyle) -> Self {
        GcState {
            style,
            phase: Phase::Idle,
            mark: Vec::new(),
            grey: Vec::new(),
            satb_buf: Vec::new(),
            dirty: BTreeSet::new(),
            retrace: BTreeSet::new(),
            stats: GcStats::default(),
            published: GcStats::default(),
            metrics: None,
        }
    }

    /// The registry handles, resolving them on first use — or `None`
    /// while metrics are disabled, in which case the caller skips the
    /// probe entirely (one relaxed load, no registry traffic).
    fn metrics(&mut self) -> Option<&GcMetrics> {
        if !wbe_telemetry::metrics_enabled() {
            return None;
        }
        Some(self.metrics.get_or_insert_with(GcMetrics::new))
    }

    /// Mirrors any statistics accrued since the last publish into the
    /// global registry (`heap.gc.*` counters). Called automatically at
    /// cycle boundaries ([`Self::remark`], [`Self::sweep`]); drivers may
    /// call it at run end to flush mid-cycle barrier counts. A no-op
    /// while metrics are disabled: `published` does not advance, so the
    /// full cumulative delta flushes on the next enabled publish.
    pub fn publish_metrics(&mut self) {
        if self.metrics().is_none() {
            return;
        }
        let m = self.metrics.as_ref().expect("resolved above");
        let (s, p) = (&self.stats, &self.published);
        m.cycles.add(s.cycles - p.cycles);
        m.satb_logs.add(s.satb_logs - p.satb_logs);
        m.dirty_marks.add(s.dirty_marks - p.dirty_marks);
        m.concurrent_scans
            .add(s.concurrent_scans - p.concurrent_scans);
        m.allocated_black.add(s.allocated_black - p.allocated_black);
        m.swept.add(s.swept - p.swept);
        self.published = self.stats;
    }

    /// The marker style.
    pub fn style(&self) -> MarkStyle {
        self.style
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// True while a marking cycle is in progress — the condition the
    /// paper's "inline" barrier checks first.
    pub fn is_marking(&self) -> bool {
        self.phase == Phase::Marking
    }

    /// True if `r` is marked in the current/most recent cycle.
    pub fn is_marked(&self, r: GcRef) -> bool {
        self.mark.get(r.index()).copied().unwrap_or(false)
    }

    fn ensure_mark_capacity(&mut self, r: GcRef) {
        if self.mark.len() <= r.index() {
            self.mark.resize(r.index() + 1, false);
        }
    }

    /// Clears `r`'s mark bit. **Fault injection only**: this forges the
    /// exact corruption an unsound elision produces (a reachable object
    /// the cycle never shaded), so the chaos harness can exercise the
    /// recovery path on demand. Never called by the collector itself.
    pub fn clear_mark(&mut self, r: GcRef) {
        if let Some(bit) = self.mark.get_mut(r.index()) {
            *bit = false;
        }
    }

    /// Allocator hook. During SATB marking, new objects are allocated
    /// black (implicitly marked): they are not part of the snapshot and
    /// the marker never examines them — the key SATB advantage.
    pub fn on_allocate(&mut self, r: GcRef) {
        self.ensure_mark_capacity(r);
        match (self.phase, self.style) {
            (Phase::Marking, MarkStyle::Satb) => {
                self.mark[r.index()] = true;
                self.stats.allocated_black += 1;
            }
            _ => {
                // Slot reuse must not inherit a stale mark bit.
                self.mark[r.index()] = false;
            }
        }
    }

    /// SATB mutator barrier payload: log the overwritten (pre-write)
    /// value. The caller has already checked that the value is non-null;
    /// whether to check `is_marking` first is the interpreter's barrier
    /// mode (the paper's "always log" mode skips the check).
    pub fn satb_log(&mut self, old: GcRef) {
        self.stats.satb_logs += 1;
        if self.phase == Phase::Marking {
            self.satb_buf.push(old);
        }
        // When idle the log is dropped: its cost was still paid by the
        // mutator, which is exactly the always-log experiment's point.
    }

    /// Drains a per-thread SATB log buffer into the collector's shared
    /// queue (the flush-at-safepoint half of the thread-local buffer
    /// protocol). Entries flushed while the collector is idle are
    /// dropped: stores made before the snapshot point carry no SATB
    /// obligation. Returns the number of entries accepted.
    pub fn satb_flush(&mut self, entries: impl IntoIterator<Item = GcRef>) -> usize {
        if self.phase != Phase::Marking {
            // Consume without logging; the iterator may be a drain.
            entries.into_iter().for_each(drop);
            return 0;
        }
        let mut n = 0usize;
        for old in entries {
            self.satb_buf.push(old);
            n += 1;
        }
        self.stats.satb_logs += n as u64;
        n
    }

    /// True while the collector has queued work (grey objects or
    /// undrained SATB log entries). The mutator may still generate more
    /// via barriers, so `false` does not mean the cycle can skip its
    /// remark rendezvous.
    pub fn has_pending_work(&self) -> bool {
        !self.grey.is_empty() || !self.satb_buf.is_empty()
    }

    /// True if `r` sits in the undrained SATB log. A barrier enqueue of
    /// an already-pending ref is a *duplicate*: dropping it would have
    /// been harmless, since the earlier entry already guarantees the
    /// snapshot obligation. The necessity oracle uses this to classify
    /// vacuous enqueues; real barriers never bother checking (a linear
    /// scan per store would defeat their purpose).
    pub fn satb_pending(&self, r: GcRef) -> bool {
        self.satb_buf.contains(&r)
    }

    /// Incremental-update mutator barrier payload: record that `obj` was
    /// modified so the collector re-examines it.
    pub fn dirty(&mut self, obj: GcRef) {
        self.stats.dirty_marks += 1;
        if self.phase == Phase::Marking {
            self.dirty.insert(obj);
        }
    }

    /// §4.3 protocol: current tracing state of the array at `r`.
    pub fn trace_state(&self, store: &Store, r: GcRef) -> TraceState {
        store.get(r).map(|o| o.trace_state).unwrap_or_default()
    }

    /// §4.3 protocol: the mutator detected possible interference with the
    /// marker while rearranging an array; schedule the whole array for
    /// retracing during the pause.
    pub fn push_retrace(&mut self, arr: GcRef) {
        if self.phase == Phase::Marking {
            self.retrace.insert(arr);
        }
    }

    /// Begins a marking cycle from `roots` (plus whatever the caller
    /// includes — typically mutator stacks and statics). Clears all mark
    /// state from the previous cycle.
    ///
    /// # Panics
    ///
    /// Panics if a cycle is already in progress; use
    /// [`Self::try_begin_marking`] for the non-panicking form.
    pub fn begin_marking(&mut self, store: &mut Store, roots: &[GcRef]) {
        self.try_begin_marking(store, roots)
            .expect("marking already in progress");
    }

    /// Non-panicking [`Self::begin_marking`]: returns
    /// [`CycleInProgress`] instead of asserting when a cycle is already
    /// running, consistent with the no-panic guardrail policy.
    ///
    /// # Errors
    ///
    /// [`CycleInProgress`] if the collector is already marking.
    pub fn try_begin_marking(
        &mut self,
        store: &mut Store,
        roots: &[GcRef],
    ) -> Result<(), CycleInProgress> {
        if self.phase != Phase::Idle {
            return Err(CycleInProgress);
        }
        self.phase = Phase::Marking;
        self.mark.clear();
        self.mark.resize(store.capacity(), false);
        self.grey.clear();
        self.satb_buf.clear();
        self.dirty.clear();
        self.retrace.clear();
        // trace_state is per-cycle; reset it on every live object.
        for slot in 0..store.capacity() {
            let r = GcRef(slot as u32);
            if store.is_live(r) {
                if let Ok(o) = store.get_mut(r) {
                    o.trace_state = TraceState::Untraced;
                }
            }
        }
        for &r in roots {
            self.shade(r);
        }
        // Initial-mark "pause": the root-scan work at cycle start.
        if let Some(m) = self.metrics() {
            m.pause_initial_mark.record(roots.len() as u64);
        }
        Ok(())
    }

    /// Marks `r` grey if it is live and unmarked.
    fn shade(&mut self, r: GcRef) {
        self.ensure_mark_capacity(r);
        if !self.mark[r.index()] {
            self.mark[r.index()] = true;
            self.grey.push(r);
        }
    }

    /// Scans one object: traces its outgoing references, shading each.
    /// Returns the number of references traced.
    fn scan(&mut self, store: &mut Store, r: GcRef) -> usize {
        let Ok(obj) = store.get_mut(r) else {
            return 0;
        };
        let is_array = matches!(obj.kind, ObjKind::RefArray(_));
        if is_array {
            obj.trace_state = TraceState::Tracing;
        }
        let outgoing: Vec<GcRef> = obj.outgoing_refs().collect();
        if is_array {
            // Re-borrow to flip the state after collecting the refs; the
            // mutator in stepped mode cannot interleave inside scan, but
            // the threaded mode observes Tracing between the two writes.
            if let Ok(obj) = store.get_mut(r) {
                obj.trace_state = TraceState::Traced;
            }
        }
        let n = outgoing.len();
        for child in outgoing {
            self.shade(child);
        }
        n
    }

    /// Performs up to `budget` units of concurrent marking work (one unit
    /// ≈ one log entry drained or one object scanned). Returns the units
    /// actually performed; `0` means the collector has no pending work
    /// (though the mutator may still generate more via barriers).
    pub fn mark_step(&mut self, store: &mut Store, budget: usize) -> usize {
        assert_eq!(self.phase, Phase::Marking, "mark_step while idle");
        let mut done = 0;
        while done < budget {
            if let Some(old) = self.satb_buf.pop() {
                self.shade(old);
                done += 1;
                continue;
            }
            // (Incremental update defers dirty objects entirely to the
            // stop-the-world remark, in the mostly-parallel style: that
            // deferred rescan IS the pause the experiments measure.)
            if let Some(r) = self.grey.pop() {
                self.scan(store, r);
                self.stats.concurrent_scans += 1;
                done += 1;
                continue;
            }
            break;
        }
        if done > 0 {
            if let Some(m) = self.metrics() {
                m.pause_mark_step.record(done as u64);
            }
        }
        done
    }

    /// Finishes the cycle with the mutator stopped, measuring the pause.
    ///
    /// For SATB this drains the residual log and grey stack (new roots
    /// need no rescan: every reference a mutator holds is either
    /// snapshot-reachable — and will be marked via the log — or was
    /// allocated black). For incremental update it must rescan every
    /// dirty object and trace everything that became reachable during
    /// marking, including all objects allocated during the cycle.
    pub fn remark(&mut self, store: &mut Store, roots: &[GcRef]) -> PauseReport {
        assert_eq!(self.phase, Phase::Marking, "remark while idle");
        let _span = wbe_telemetry::span!("heap.gc.remark");
        let pause_start = std::time::Instant::now();
        let mut pause = PauseReport::default();
        for &r in roots {
            pause.roots_examined += 1;
            self.shade(r);
        }
        // §4.3: arrays whose rearrangement raced with tracing are traced
        // again, conservatively, with the world stopped.
        let retrace: Vec<GcRef> = std::mem::take(&mut self.retrace).into_iter().collect();
        for arr in retrace {
            if self.is_marked(arr) {
                pause.retraced += 1;
                pause.objects_scanned += 1;
                pause.refs_traced += self.scan(store, arr);
            }
        }
        match self.style {
            MarkStyle::Satb => {
                while let Some(old) = self.satb_buf.pop() {
                    pause.log_drained += 1;
                    self.shade(old);
                }
                while let Some(r) = self.grey.pop() {
                    pause.objects_scanned += 1;
                    pause.refs_traced += self.scan(store, r);
                }
            }
            MarkStyle::IncrementalUpdate => {
                // Rescan marked dirty objects; then trace to completion.
                // Unmarked dirty objects are scanned if tracing reaches
                // them (their scan is then a fresh, correct scan).
                let dirty: Vec<GcRef> = std::mem::take(&mut self.dirty).into_iter().collect();
                for d in dirty {
                    if self.is_marked(d) {
                        pause.dirty_rescanned += 1;
                        pause.objects_scanned += 1;
                        pause.refs_traced += self.scan(store, d);
                    }
                }
                while let Some(r) = self.grey.pop() {
                    pause.objects_scanned += 1;
                    pause.refs_traced += self.scan(store, r);
                }
            }
        }
        self.phase = Phase::Idle;
        self.stats.cycles += 1;
        if let Some(m) = self.metrics() {
            m.pause_work_units.record(pause.work_units() as u64);
            m.pause_remark.record(pause.work_units() as u64);
            m.pause_us.record_duration(pause_start.elapsed());
        }
        self.publish_metrics();
        pause
    }

    /// Frees every live object left unmarked by the completed cycle.
    /// Returns the number freed.
    ///
    /// # Panics
    ///
    /// Panics if called while marking is in progress.
    pub fn sweep(&mut self, store: &mut Store) -> usize {
        assert_eq!(self.phase, Phase::Idle, "sweep during marking");
        let mut freed = 0;
        for slot in 0..store.capacity() {
            let r = GcRef(slot as u32);
            if store.is_live(r) && !self.is_marked(r) {
                store.remove(r);
                freed += 1;
            }
        }
        self.stats.swept += freed as u64;
        // Sweep-slice work: every slot is examined once.
        if let Some(m) = self.metrics() {
            m.pause_sweep.record(store.capacity() as u64);
        }
        self.publish_metrics();
        freed
    }

    /// Pending SATB log length (diagnostics).
    pub fn satb_backlog(&self) -> usize {
        self.satb_buf.len()
    }

    /// Pending dirty-object count (diagnostics).
    pub fn dirty_backlog(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::Heap;
    use crate::value::{FieldShape, Value};

    fn obj(h: &mut Heap) -> GcRef {
        h.alloc_object(0, &[FieldShape::Ref, FieldShape::Ref])
            .unwrap()
    }

    /// Build `a -> b -> c`, start marking, then unlink b from a and
    /// relink nothing: SATB must still mark b and c (snapshot), provided
    /// the barrier logged the overwritten value.
    #[test]
    fn satb_preserves_snapshot_under_unlink() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        let c = obj(&mut h);
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.set_field(b, 0, Value::from(c)).unwrap();
        h.gc.begin_marking(&mut h.store, &[a]);
        // Mutator: a.f0 = null, with the SATB barrier logging old value b.
        let old = h.get_field(a, 0).unwrap();
        if let Value::Ref(Some(o)) = old {
            h.gc.satb_log(o);
        }
        h.set_field(a, 0, Value::NULL).unwrap();
        let pause = h.gc.remark(&mut h.store, &[a]);
        assert!(h.gc.is_marked(b), "snapshot object b must be marked");
        assert!(h.gc.is_marked(c), "snapshot object c must be marked");
        assert!(pause.log_drained >= 1);
    }

    /// Without the barrier, unlinking during marking loses the subgraph —
    /// demonstrating why elision must be restricted to pre-null stores.
    #[test]
    fn satb_without_barrier_loses_objects() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.gc.begin_marking(&mut h.store, &[a]);
        h.set_field(a, 0, Value::NULL).unwrap(); // no barrier!
        h.gc.remark(&mut h.store, &[a]);
        assert!(!h.gc.is_marked(b));
        assert_eq!(h.sweep(), 1);
        assert!(!h.store.is_live(b));
    }

    /// Eliding the barrier on a pre-null (initializing) store is safe:
    /// the overwritten value is null, so there is nothing to log.
    #[test]
    fn elided_barrier_on_pre_null_store_is_safe() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        h.gc.begin_marking(&mut h.store, &[a]);
        let b = obj(&mut h); // allocated black
                             // a.f1 is null; store without barrier.
        assert!(h.get_field(a, 1).unwrap().is_null());
        h.set_field(a, 1, Value::from(b)).unwrap();
        h.gc.remark(&mut h.store, &[a]);
        assert!(h.gc.is_marked(b), "allocated-black object survives");
        assert_eq!(h.sweep(), 0);
    }

    #[test]
    fn satb_allocates_black_during_marking() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        h.gc.begin_marking(&mut h.store, &[a]);
        let n = obj(&mut h);
        assert!(h.gc.is_marked(n));
        assert_eq!(h.gc.stats.allocated_black, 1);
        // And the remark never scans it (not part of the snapshot).
        let pause = h.gc.remark(&mut h.store, &[a]);
        assert_eq!(pause.objects_scanned, 1, "only the root a is scanned");
    }

    #[test]
    fn incremental_update_rescans_dirty_and_new_objects() {
        let mut h = Heap::new(MarkStyle::IncrementalUpdate);
        let a = obj(&mut h);
        h.gc.begin_marking(&mut h.store, &[a]);
        // Drain concurrent work so `a` is scanned.
        while h.gc.mark_step(&mut h.store, 8) > 0 {}
        // Mutator allocates n and links it into a (dirtying a).
        let n = obj(&mut h);
        assert!(!h.gc.is_marked(n), "IU does not allocate black");
        h.set_field(a, 0, Value::from(n)).unwrap();
        h.gc.dirty(a);
        let pause = h.gc.remark(&mut h.store, &[a]);
        assert!(h.gc.is_marked(n));
        assert!(pause.dirty_rescanned >= 1);
        assert!(pause.objects_scanned >= 2, "rescans a and scans n");
    }

    #[test]
    fn satb_pause_is_smaller_than_incremental_under_allocation() {
        // Allocate and link many objects during marking; the SATB pause
        // stays O(log residue) while IU rescans everything new.
        let run = |style: MarkStyle| -> usize {
            let mut h = Heap::new(style);
            let root = obj(&mut h);
            h.gc.begin_marking(&mut h.store, &[root]);
            while h.gc.mark_step(&mut h.store, 4) > 0 {}
            let mut prev = root;
            for _ in 0..200 {
                let n = obj(&mut h);
                // prev.f0 = n, with the style's barrier.
                let old = h.get_field(prev, 0).unwrap();
                match style {
                    MarkStyle::Satb => {
                        if let Value::Ref(Some(o)) = old {
                            h.gc.satb_log(o);
                        }
                    }
                    MarkStyle::IncrementalUpdate => h.gc.dirty(prev),
                }
                h.set_field(prev, 0, Value::from(n)).unwrap();
                prev = n;
            }
            h.gc.remark(&mut h.store, &[root]).work_units()
        };
        let satb = run(MarkStyle::Satb);
        let iu = run(MarkStyle::IncrementalUpdate);
        assert!(
            satb * 10 <= iu,
            "expected order-of-magnitude pause gap, got satb={satb} iu={iu}"
        );
    }

    #[test]
    fn sweep_frees_unreachable_and_preserves_reachable() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let b = obj(&mut h);
        let garbage = obj(&mut h);
        h.set_field(a, 0, Value::from(b)).unwrap();
        h.gc.begin_marking(&mut h.store, &[a]);
        h.gc.remark(&mut h.store, &[a]);
        assert_eq!(h.sweep(), 1);
        assert!(h.store.is_live(a) && h.store.is_live(b));
        assert!(!h.store.is_live(garbage));
        assert_eq!(h.stats.frees, 1);
    }

    #[test]
    fn mark_step_respects_budget() {
        let mut h = Heap::new(MarkStyle::Satb);
        let root = obj(&mut h);
        let mut prev = root;
        for _ in 0..10 {
            let n = obj(&mut h);
            h.set_field(prev, 0, Value::from(n)).unwrap();
            prev = n;
        }
        h.gc.begin_marking(&mut h.store, &[root]);
        assert_eq!(h.gc.mark_step(&mut h.store, 3), 3);
        let pause = h.gc.remark(&mut h.store, &[root]);
        // 11 objects total, 3 scanned concurrently.
        assert_eq!(pause.objects_scanned, 8);
    }

    #[test]
    fn retrace_list_rescans_arrays_at_pause() {
        let mut h = Heap::new(MarkStyle::Satb);
        let arr = h.alloc_ref_array(0, 4).unwrap();
        let x = obj(&mut h);
        h.set_elem(arr, 0, Some(x)).unwrap();
        h.gc.begin_marking(&mut h.store, &[arr]);
        while h.gc.mark_step(&mut h.store, 8) > 0 {}
        assert_eq!(h.gc.trace_state(&h.store, arr), TraceState::Traced);
        // Mutator rearranged arr concurrently and detected interference:
        let y = obj(&mut h);
        h.set_elem(arr, 1, Some(y)).unwrap();
        h.gc.push_retrace(arr);
        let pause = h.gc.remark(&mut h.store, &[arr]);
        assert_eq!(pause.retraced, 1);
        assert!(h.gc.is_marked(x));
    }

    #[test]
    fn per_phase_pause_histograms_are_populated() {
        // Metrics are on by default; other tests only ever add samples
        // to the global registry, so count comparisons below are safe
        // under the parallel test runner.
        let before = wbe_telemetry::registry::global().snapshot();
        let count_of = |snap: &wbe_telemetry::MetricsSnapshot, key: &str| {
            snap.histogram(key).map(|h| h.count).unwrap_or(0)
        };
        let mut h = Heap::new(MarkStyle::Satb);
        let root = obj(&mut h);
        let mut prev = root;
        for _ in 0..6 {
            let n = obj(&mut h);
            h.set_field(prev, 0, Value::from(n)).unwrap();
            prev = n;
        }
        h.gc.begin_marking(&mut h.store, &[root]);
        while h.gc.mark_step(&mut h.store, 2) > 0 {}
        h.gc.remark(&mut h.store, &[root]);
        h.sweep();
        let after = wbe_telemetry::registry::global().snapshot();
        for key in [
            PHASE_INITIAL_MARK,
            PHASE_MARK_STEP,
            PHASE_REMARK,
            PHASE_SWEEP,
            // The legacy key stays populated alongside the explicit
            // remark phase key (the baseline gate reads the legacy one).
            "heap.gc.pause.work_units",
        ] {
            assert!(
                count_of(&after, key) > count_of(&before, key),
                "{key} recorded no samples"
            );
        }
    }

    #[test]
    fn marks_cleared_between_cycles_and_slot_reuse_safe() {
        let mut h = Heap::new(MarkStyle::Satb);
        let a = obj(&mut h);
        let g = obj(&mut h);
        h.gc.begin_marking(&mut h.store, &[a, g]);
        h.gc.remark(&mut h.store, &[a]);
        assert!(h.gc.is_marked(g));
        // Second cycle: g no longer a root.
        h.gc.begin_marking(&mut h.store, &[a]);
        h.gc.remark(&mut h.store, &[a]);
        assert!(!h.gc.is_marked(g));
        assert_eq!(h.sweep(), 1);
        // The freed slot is reused; its stale mark must not leak.
        let n = obj(&mut h);
        assert_eq!(n, g);
        assert!(!h.gc.is_marked(n));
    }
}
