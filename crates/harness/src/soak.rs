//! Chaos soak harness: escalating fault schedules with continuous
//! invariant verification, self-healing recovery, and a flight
//! recorder.
//!
//! A soak runs every workload in the standard suite for `rounds`
//! rounds. Each (round, workload) pair gets its own seeded
//! [`FaultPlan`]; with `--escalate` the schedule severity grows with
//! the round index ([`FaultConfig::escalate`]), which from level 1 up
//! injects post-remark mark-state corruption — exactly the damage the
//! [`wbe_interp::Interp`] recovery controller exists to heal. Every run
//! executes with heap-invariant verification at cycle boundaries and a
//! bounded recovery budget, so the soak continuously distinguishes
//! three outcomes:
//!
//! * **clean** — no invariant ever failed;
//! * **recovered** — violations occurred but every one was healed by a
//!   panic-mode re-mark within the budget (the run is *degraded*: the
//!   controller revoked elisions and inserted barriers everywhere);
//! * **trapped** — corruption persisted past the budget and the
//!   original trap fired.
//!
//! The process exit contract (enforced by `wbe_tool soak`):
//!
//! * **0** — every run clean, or no more degraded runs than
//!   `--threshold` allows;
//! * **1** — recovered-but-degraded beyond the threshold;
//! * **2** — at least one unrecovered trap.
//!
//! While the soak runs, trace events stream into a bounded
//! **flight-recorder ring** (newest events win). On any failure the
//! ring is dumped as a Chrome trace and each failed run is reported
//! with a **replay handle** — the exact (workload, seed, level, iters)
//! tuple that reproduces it, schedule and all, because the fault
//! stream is a pure function of the seed.

use std::collections::VecDeque;
use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_heap::{FaultConfig, FaultPlan, RecoveryPolicy};
use wbe_interp::{BarrierConfig, BarrierMode, GcPolicy, Interp, Value};
use wbe_opt::OptMode;
use wbe_telemetry::config::{configure, TelemetryConfig};
use wbe_telemetry::export::chrome_trace_json;
use wbe_telemetry::json::ObjWriter;
use wbe_telemetry::trace::{self, TraceEvent};
use wbe_workloads::standard_suite;

use crate::ledger::build_ledger;
use crate::runner::compile_workload;

/// Flight-recorder capacity: the newest this many trace events survive
/// to the crash dump. Bounded so week-long soaks can't grow without
/// limit; old history is the least interesting part of a failure.
pub const FLIGHT_RING_CAP: usize = 4096;

/// Options for one soak.
#[derive(Clone, Debug)]
pub struct SoakOptions {
    /// Rounds over the whole suite.
    pub rounds: u32,
    /// Base seed; each (round, workload) derives its own stream.
    pub seed: u64,
    /// Escalate fault severity with the round index (level = round,
    /// capped by [`FaultConfig::escalate`]).
    pub escalate: bool,
    /// Iteration scale applied to each workload's default size.
    pub scale: f64,
    /// Recovery budget: consecutive failed re-mark attempts before the
    /// original trap fires.
    pub max_attempts: u32,
    /// Degraded (recovered-but-revoked) runs tolerated before the soak
    /// exits 1 instead of 0.
    pub threshold: u32,
    /// Negative control: force persistent mark corruption so recovery
    /// *must* exhaust its budget and trap (expected exit 2).
    pub unrecoverable: bool,
    /// Emit the report as NDJSON instead of text.
    pub ndjson: bool,
}

impl Default for SoakOptions {
    fn default() -> Self {
        SoakOptions {
            rounds: 3,
            seed: 42,
            escalate: false,
            scale: 0.02,
            max_attempts: 3,
            threshold: 0,
            unrecoverable: false,
            ndjson: false,
        }
    }
}

/// How one (round, workload) run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No invariant violation occurred.
    Clean,
    /// Violations occurred and every one was healed; the run finished
    /// in barrier panic mode with elisions revoked.
    Recovered,
    /// Recovery exhausted its budget (or the trap was not an invariant
    /// violation); the run died.
    Trapped,
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RunOutcome::Clean => "clean",
            RunOutcome::Recovered => "recovered",
            RunOutcome::Trapped => "trapped",
        })
    }
}

/// Everything recorded about one (round, workload) run.
#[derive(Clone, Debug)]
pub struct SoakRun {
    /// Round index (0-based).
    pub round: u32,
    /// Workload name.
    pub workload: &'static str,
    /// Exact fault seed for this run (replay handle component).
    pub seed: u64,
    /// Escalation level applied to the fault schedule.
    pub level: u32,
    /// Iterations the workload ran.
    pub iters: i64,
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Trap message for [`RunOutcome::Trapped`] (empty otherwise).
    pub trap: String,
    /// Faults injected by the schedule.
    pub faults_injected: u64,
    /// Post-remark mark corruptions injected.
    pub mark_corruptions: u64,
    /// Recovery attempts (panic-mode re-marks) taken.
    pub recoveries_attempted: u64,
    /// Recovery attempts that healed the heap.
    pub recoveries_succeeded: u64,
    /// Elision sites revoked at runtime.
    pub revoked_sites: u64,
    /// Elided barriers re-inserted while gated by panic mode.
    pub gated_elisions: u64,
    /// Revoked sites joined back into the provenance ledger.
    pub ledger_joined: usize,
    /// GC cycles completed.
    pub gc_cycles: u64,
}

impl SoakRun {
    /// The exact reproduction recipe for this run.
    pub fn replay_handle(&self) -> String {
        format!(
            "replay: workload={} seed={:#018x} level={} iters={} max-attempts={}",
            self.workload,
            self.seed,
            self.level,
            self.iters,
            self.max_attempts_hint()
        )
    }

    fn max_attempts_hint(&self) -> u64 {
        // Attempts beyond successes are the budget actually consumed;
        // replaying needs at least that much headroom.
        (self.recoveries_attempted - self.recoveries_succeeded).max(1)
    }

    fn to_json(&self) -> String {
        let mut out = String::new();
        let mut w = ObjWriter::new(&mut out);
        w.field_u64("round", u64::from(self.round))
            .field_str("workload", self.workload)
            .field_str("seed", &format!("{:#018x}", self.seed))
            .field_u64("level", u64::from(self.level))
            .field_u64("iters", self.iters.max(0) as u64)
            .field_str("outcome", &self.outcome.to_string())
            .field_u64("faults_injected", self.faults_injected)
            .field_u64("mark_corruptions", self.mark_corruptions)
            .field_u64("recoveries_attempted", self.recoveries_attempted)
            .field_u64("recoveries_succeeded", self.recoveries_succeeded)
            .field_u64("revoked_sites", self.revoked_sites)
            .field_u64("gated_elisions", self.gated_elisions)
            .field_u64("ledger_joined", self.ledger_joined as u64)
            .field_u64("gc_cycles", self.gc_cycles);
        if !self.trap.is_empty() {
            w.field_str("trap", &self.trap);
        }
        w.finish();
        out
    }
}

/// The whole soak's result.
#[derive(Debug)]
pub struct SoakOutcome {
    /// Every run, in execution order.
    pub runs: Vec<SoakRun>,
    /// Runs that ended [`RunOutcome::Recovered`] (degraded).
    pub degraded_runs: u32,
    /// Runs that ended [`RunOutcome::Trapped`].
    pub trapped_runs: u32,
    /// Process exit code per the soak contract (0 / 1 / 2).
    pub exit_code: i32,
    /// Flight-recorder contents at soak end (newest `FLIGHT_RING_CAP`
    /// events), in time order.
    pub flight: Vec<TraceEvent>,
    /// Events the ring had to discard to stay bounded.
    pub flight_discarded: u64,
}

impl SoakOutcome {
    /// Renders the report in the format `opts` asked for.
    pub fn render(&self, opts: &SoakOptions) -> String {
        if opts.ndjson {
            self.render_ndjson()
        } else {
            self.render_text()
        }
    }

    fn render_ndjson(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for run in &self.runs {
            let _ = writeln!(out, "{}", run.to_json());
        }
        let mut line = String::new();
        let mut w = ObjWriter::new(&mut line);
        w.field_str("summary", "soak")
            .field_u64("runs", self.runs.len() as u64)
            .field_u64("degraded_runs", u64::from(self.degraded_runs))
            .field_u64("trapped_runs", u64::from(self.trapped_runs))
            .field_u64("exit_code", self.exit_code as u64);
        w.finish();
        let _ = writeln!(out, "{line}");
        out
    }

    fn render_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for r in &self.runs {
            let _ = writeln!(
                out,
                "round {:>2} {:<6} seed {:#018x} level {}: {} \
                 ({} faults, {} corruptions, {}/{} recoveries, {} revoked, {} cycles)",
                r.round,
                r.workload,
                r.seed,
                r.level,
                r.outcome,
                r.faults_injected,
                r.mark_corruptions,
                r.recoveries_succeeded,
                r.recoveries_attempted,
                r.revoked_sites,
                r.gc_cycles
            );
            if r.outcome == RunOutcome::Trapped {
                let _ = writeln!(out, "  trap: {}", r.trap);
            }
            if r.outcome != RunOutcome::Clean {
                let _ = writeln!(out, "  {}", r.replay_handle());
            }
        }
        let _ = writeln!(
            out,
            "soak: {} runs, {} degraded, {} trapped -> exit {}",
            self.runs.len(),
            self.degraded_runs,
            self.trapped_runs,
            self.exit_code
        );
        out
    }

    /// The flight-recorder ring as Chrome trace JSON.
    pub fn flight_chrome_trace(&self) -> String {
        chrome_trace_json(&self.flight)
    }
}

/// Bounded ring over the process trace buffer: newest events win.
struct FlightRecorder {
    ring: VecDeque<TraceEvent>,
    discarded: u64,
}

impl FlightRecorder {
    fn new() -> Self {
        FlightRecorder {
            ring: VecDeque::with_capacity(FLIGHT_RING_CAP.min(1024)),
            discarded: 0,
        }
    }

    /// Moves everything the trace buffer accumulated into the ring.
    fn absorb(&mut self) {
        self.absorb_events(trace::drain());
    }

    fn absorb_events(&mut self, events: Vec<TraceEvent>) {
        for ev in events {
            if self.ring.len() >= FLIGHT_RING_CAP {
                self.ring.pop_front();
                self.discarded += 1;
            }
            self.ring.push_back(ev);
        }
    }
}

/// Derives run `k`'s fault seed from the base seed (SplitMix64
/// finalizer, so neighbouring runs get unrelated streams).
fn mix_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The soak GC policy: aggressive enough that many cycles complete even
/// at small scales, so the post-remark corruption point is consulted
/// often.
fn soak_policy() -> GcPolicy {
    GcPolicy {
        alloc_trigger: 64,
        step_interval: 8,
        step_budget: 4,
    }
}

/// Runs the full soak. Deterministic for a given `opts` (the fault
/// stream is seed-derived; no wall-clock feeds any decision).
pub fn run_soak(opts: &SoakOptions) -> SoakOutcome {
    // Serialize against anything else that resets or reads the global
    // telemetry state (baseline/profile measurements, other soaks).
    let _guard = crate::registry_lock();
    // The flight recorder needs tracing on; restore the previous
    // configuration on the way out. Drain whatever an earlier command
    // left behind so the ring holds only soak events.
    let prev = configure(TelemetryConfig::all());
    let _ = trace::drain();
    let mut recorder = FlightRecorder::new();

    let suite = standard_suite();
    let mut runs = Vec::new();
    for round in 0..opts.rounds {
        let level = if opts.escalate { round } else { 0 };
        for (widx, w) in suite.iter().enumerate() {
            let k = u64::from(round) * suite.len() as u64 + widx as u64;
            let seed = mix_seed(opts.seed, k);
            let iters = ((w.default_iters as f64 * opts.scale) as i64).max(8);
            let mut cfg = FaultConfig::from_seed(seed).escalate(level);
            if opts.unrecoverable {
                // Persistent corruption: every re-mark is re-corrupted,
                // so the budget must exhaust and the trap must fire.
                cfg.corrupt_mark_pm = 1000;
            }

            let (compiled, elided) = compile_workload(w, OptMode::Full, 100);
            let barrier = BarrierConfig::with_elision(BarrierMode::Checked, elided);
            let mut interp = Interp::with_style(&compiled.program, barrier, MarkStyle::Satb);
            interp.set_gc_policy(soak_policy());
            interp.set_fault_plan(FaultPlan::new(cfg));
            interp.set_verify_invariants(true);
            interp.set_recovery(RecoveryPolicy {
                max_attempts: opts.max_attempts,
            });

            trace::event("soak.run.start", format!("{} round {round}", w.name));
            let result = interp.run(w.entry, &[Value::Int(iters)], w.fuel_for(iters));
            interp.publish_metrics();

            let fault = interp
                .heap
                .fault
                .as_ref()
                .map(|p| p.stats)
                .unwrap_or_default();
            let mut run = SoakRun {
                round,
                workload: w.name,
                seed,
                level,
                iters,
                outcome: RunOutcome::Clean,
                trap: String::new(),
                faults_injected: fault.injected(),
                mark_corruptions: fault.mark_corruptions,
                recoveries_attempted: 0,
                recoveries_succeeded: 0,
                revoked_sites: 0,
                gated_elisions: 0,
                ledger_joined: 0,
                gc_cycles: interp.stats.gc_cycles,
            };
            if let Some(rc) = interp.recovery() {
                run.recoveries_attempted = rc.stats.attempted;
                run.recoveries_succeeded = rc.stats.succeeded;
                run.revoked_sites = rc.stats.revoked_sites;
                run.gated_elisions = rc.stats.gated_elisions;
                if rc.in_panic() {
                    run.outcome = RunOutcome::Recovered;
                }
                if !rc.revocations().is_empty() {
                    // Join the runtime revocations back into the static
                    // provenance ledger, the same view `wbe_tool
                    // ledger`/`explain` render.
                    if let Some(mut ledger) = build_ledger(&w.program, OptMode::Full, 100, false) {
                        run.ledger_joined =
                            ledger.join_revocations(rc.revocations().iter().map(|r| {
                                (
                                    r.method.as_str(),
                                    r.block as usize,
                                    r.index as usize,
                                    r.reason.as_str(),
                                )
                            }));
                    }
                }
            }
            if let Err(trap) = result {
                run.outcome = RunOutcome::Trapped;
                run.trap = trap.to_string();
                trace::event("soak.run.trap", format!("{}: {trap}", w.name));
            }
            trace::event(
                "soak.run.end",
                format!("{} round {round}: {}", w.name, run.outcome),
            );
            recorder.absorb();
            runs.push(run);
        }
    }

    let degraded_runs = runs
        .iter()
        .filter(|r| r.outcome == RunOutcome::Recovered)
        .count() as u32;
    let trapped_runs = runs
        .iter()
        .filter(|r| r.outcome == RunOutcome::Trapped)
        .count() as u32;
    let exit_code = if trapped_runs > 0 {
        2
    } else if degraded_runs > opts.threshold {
        1
    } else {
        0
    };

    configure(prev);
    SoakOutcome {
        runs,
        degraded_runs,
        trapped_runs,
        exit_code,
        flight: recorder.ring.into_iter().collect(),
        flight_discarded: recorder.discarded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rounds: u32) -> SoakOptions {
        SoakOptions {
            rounds,
            scale: 0.01,
            ..SoakOptions::default()
        }
    }

    #[test]
    fn baseline_soak_is_clean_and_exits_zero() {
        let out = run_soak(&quick(1));
        assert_eq!(out.exit_code, 0, "{}", out.render(&quick(1)));
        assert_eq!(out.trapped_runs, 0);
        assert_eq!(out.degraded_runs, 0);
        assert_eq!(out.runs.len(), 6, "whole suite every round");
        assert!(
            out.runs.iter().all(|r| r.mark_corruptions == 0),
            "level 0 never corrupts marks"
        );
        assert!(out.runs.iter().any(|r| r.faults_injected > 0));
        assert!(
            out.flight.iter().any(|e| e.name == "soak.run.end"),
            "flight recorder captured the runs"
        );
    }

    #[test]
    fn escalated_soak_recovers_and_exits_one() {
        let opts = SoakOptions {
            rounds: 3,
            escalate: true,
            max_attempts: 8,
            ..quick(3)
        };
        let out = run_soak(&opts);
        assert_eq!(out.exit_code, 1, "{}", out.render(&opts));
        assert_eq!(out.trapped_runs, 0, "{}", out.render(&opts));
        assert!(out.degraded_runs > 0);
        let recovered: Vec<_> = out
            .runs
            .iter()
            .filter(|r| r.outcome == RunOutcome::Recovered)
            .collect();
        assert!(!recovered.is_empty());
        for r in &recovered {
            assert!(r.recoveries_succeeded > 0, "{r:?}");
            assert!(r.mark_corruptions > 0, "{r:?}");
            assert!(r.replay_handle().contains("seed=0x"), "{r:?}");
        }
        // At least one recovered run revoked elisions and joined them
        // back into the provenance ledger.
        assert!(
            recovered
                .iter()
                .any(|r| r.revoked_sites > 0 && r.ledger_joined > 0),
            "{}",
            out.render(&opts)
        );
    }

    #[test]
    fn unrecoverable_soak_traps_and_exits_two() {
        let opts = SoakOptions {
            rounds: 1,
            unrecoverable: true,
            ..quick(1)
        };
        let out = run_soak(&opts);
        assert_eq!(out.exit_code, 2, "{}", out.render(&opts));
        assert!(out.trapped_runs > 0);
        let trapped = out
            .runs
            .iter()
            .find(|r| r.outcome == RunOutcome::Trapped)
            .unwrap();
        assert!(
            trapped.trap.contains("INVARIANT VIOLATION"),
            "{}",
            trapped.trap
        );
        assert!(
            trapped.recoveries_attempted >= u64::from(opts.max_attempts),
            "budget was consumed before trapping: {trapped:?}"
        );
        assert!(
            out.flight.iter().any(|e| e.name == "soak.run.trap"),
            "flight recorder holds the trap event"
        );
        let trace = out.flight_chrome_trace();
        assert!(trace.contains("traceEvents"), "{trace}");
        assert!(trace.contains("soak.run.trap"));
    }

    #[test]
    fn soak_is_deterministic_for_a_seed() {
        let opts = quick(1);
        let a = run_soak(&opts);
        let b = run_soak(&opts);
        let strip = |o: &SoakOutcome| {
            o.runs
                .iter()
                .map(|r| {
                    (
                        r.workload,
                        r.seed,
                        r.faults_injected,
                        r.gc_cycles,
                        r.outcome,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a), strip(&b));
        assert_eq!(a.render_ndjson(), b.render_ndjson());
    }

    #[test]
    fn flight_ring_stays_bounded() {
        let mut rec = FlightRecorder::new();
        for chunk in 0..3 {
            let events = (0..FLIGHT_RING_CAP)
                .map(|i| TraceEvent {
                    name: format!("e{chunk}.{i}"),
                    parent: String::new(),
                    detail: String::new(),
                    start_us: 0,
                    dur_us: 0,
                    tid: 1,
                    value: None,
                })
                .collect();
            rec.absorb_events(events);
        }
        assert_eq!(rec.ring.len(), FLIGHT_RING_CAP);
        assert_eq!(rec.discarded, 2 * FLIGHT_RING_CAP as u64);
        assert_eq!(
            rec.ring.back().unwrap().name,
            format!("e2.{}", FLIGHT_RING_CAP - 1),
            "newest events win"
        );
    }
}
