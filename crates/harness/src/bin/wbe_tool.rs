//! `wbe-tool` — command-line front end for `.wbe` IR files.
//!
//! ```text
//! wbe_tool verify  <file.wbe>                      validate + type-check
//! wbe_tool dump    <file.wbe|workload>             pretty-print the IR
//! wbe_tool analyze <file.wbe|workload> [--mode A|F] [--inline N] [--nos]
//! wbe_tool run     <file.wbe|workload> <method> [int args...] [--elide] [--fuel N]
//! wbe_tool export  <workload>                      print a workload as .wbe text
//! ```
//!
//! Wherever a file is expected, a built-in workload name (jess, db,
//! javac, mtrt, jack, jbb) is also accepted.

use std::process::exit;

use wbe_analysis::nullsame;
use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, ElisionKind, Interp, Value};
use wbe_ir::display::{method_display, program_display};
use wbe_ir::{parse_program, Program};
use wbe_opt::{compile, OptMode, PipelineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wbe_tool <verify|dump|analyze|run|export> <file.wbe|workload> [options]\n\
         analyze: [--mode A|F] [--inline N] [--nos]\n\
         run:     <method> [int args...] [--elide] [--fuel N]"
    );
    exit(2)
}

fn load(source: &str) -> Program {
    if let Some(w) = wbe_workloads::by_name(source) {
        return w.program;
    }
    let text = std::fs::read_to_string(source).unwrap_or_else(|e| {
        eprintln!("cannot read {source}: {e}");
        exit(1)
    });
    parse_program(&text).unwrap_or_else(|e| {
        eprintln!("{source}: {e}");
        exit(1)
    })
}

fn check(program: &Program, source: &str) {
    if let Err(e) = program.validate() {
        eprintln!("{source}: validation failed: {e}");
        exit(1);
    }
    if let Err(e) = wbe_ir::type_check_program(program) {
        eprintln!("{source}: type check failed: {e}");
        exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, source) = match (args.first(), args.get(1)) {
        (Some(c), Some(s)) => (c.as_str(), s.as_str()),
        _ => usage(),
    };
    let rest = &args[2..];
    let program = load(source);

    match cmd {
        "verify" => {
            check(&program, source);
            println!(
                "{source}: OK ({} classes, {} methods, {} instructions)",
                program.classes.len(),
                program.methods.len(),
                program.total_size()
            );
        }
        "dump" | "export" => {
            check(&program, source);
            print!("{}", program_display(&program));
        }
        "analyze" => {
            check(&program, source);
            let mut mode = OptMode::Full;
            let mut inline = 100usize;
            let mut nos = false;
            let mut dump = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--mode" => match it.next().map(String::as_str) {
                        Some("A") => mode = OptMode::Full,
                        Some("F") => mode = OptMode::FieldOnly,
                        Some("B") => mode = OptMode::Baseline,
                        _ => usage(),
                    },
                    "--inline" => {
                        inline = it.next().and_then(|n| n.parse().ok()).unwrap_or_else(|| usage())
                    }
                    "--nos" => nos = true,
                    "--dump" => dump = true,
                    _ => usage(),
                }
            }
            let mut cfg = PipelineConfig::new(mode, inline);
            cfg.null_or_same = nos;
            let compiled = compile(&program, &cfg);
            println!(
                "inlined {} calls; analysis time {:?}",
                compiled.inline_stats.inlined_calls,
                compiled.analysis_time()
            );
            let mut total = 0usize;
            for (mid, m) in compiled.program.iter_methods() {
                let elided = compiled.elided_of(mid);
                let nos_sites = compiled
                    .null_or_same
                    .get(&mid)
                    .cloned()
                    .unwrap_or_default();
                if elided.is_empty() && nos_sites.is_empty() {
                    continue;
                }
                println!("method {} ({}):", mid, m.name);
                for a in &elided {
                    println!("  {a}: pre-null — barrier removed");
                    total += 1;
                }
                for a in nos_sites.difference(&elided) {
                    println!("  {a}: null-or-same — barrier removed");
                    total += 1;
                }
            }
            println!("{total} barriers removed; code size {} bytes", compiled.code_size());
            if dump {
                let cfg = mode
                    .analysis_config()
                    .unwrap_or_else(wbe_analysis::AnalysisConfig::full);
                for (_, m) in compiled.program.iter_methods() {
                    print!("{}", wbe_analysis::dump::dump_method(&compiled.program, m, &cfg));
                }
            }
        }
        "run" => {
            check(&program, source);
            let method_name = rest.first().unwrap_or_else(|| usage());
            let mut int_args: Vec<Value> = Vec::new();
            let mut elide = false;
            let mut fuel = 50_000_000u64;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--elide" => elide = true,
                    "--fuel" => {
                        fuel = it.next().and_then(|n| n.parse().ok()).unwrap_or_else(|| usage())
                    }
                    n => int_args.push(Value::Int(n.parse().unwrap_or_else(|_| usage()))),
                }
            }
            let Some(m) = program.method_by_name(method_name) else {
                eprintln!("no method named '{method_name}'");
                exit(1);
            };
            let mid = m.id;
            let bc = if elide {
                let res = wbe_analysis::analyze_program(&program, &wbe_analysis::AnalysisConfig::full());
                let mut elided: ElidedBarriers = res.iter_elided().collect();
                for (nm, sites) in nullsame::analyze_program(&program) {
                    for a in sites {
                        elided.insert_kind(nm, a, ElisionKind::NullOrSame);
                    }
                }
                println!("elided {} sites", elided.len());
                BarrierConfig::with_elision(BarrierMode::Checked, elided)
            } else {
                BarrierConfig::new(BarrierMode::Checked)
            };
            let mut interp = Interp::new(&program, bc);
            match interp.run(mid, &int_args, fuel) {
                Ok(v) => {
                    println!(
                        "result: {}",
                        v.map(|v| v.to_string()).unwrap_or_else(|| "void".into())
                    );
                    println!(
                        "insns: {}, cycles: {}, barrier cycles: {}, elided execs: {}",
                        interp.stats.insns,
                        interp.stats.cycles,
                        interp.stats.barrier_cycles,
                        interp.stats.elided_executions
                    );
                }
                Err(t) => {
                    eprintln!("trap: {t}");
                    // Show the faulting method for context.
                    print!("{}", method_display(&program, program.method(mid)));
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}
