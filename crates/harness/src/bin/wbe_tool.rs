//! `wbe-tool` — command-line front end for `.wbe` IR files.
//!
//! ```text
//! wbe_tool verify  <file.wbe>                      validate + type-check
//! wbe_tool verify  [workload ...] --faults N [--seed S] [--scale F]
//!                  [--demo-unsound]                differential fault harness
//! wbe_tool dump    <file.wbe|workload>             pretty-print the IR
//! wbe_tool analyze <file.wbe|workload> [--mode A|F] [--inline N] [--nos]
//! wbe_tool run     <file.wbe|workload> <method> [int args...] [--elide] [--fuel N]
//! wbe_tool export  <workload>                      print a workload as .wbe text
//! wbe_tool explain <file.wbe|workload> [--method M] [--site N]
//!                  [--mode A|F] [--inline N] [--nos] [--oracle F.ndjson]
//! wbe_tool ledger  <file.wbe|workload> [--out l.ndjson] [--demo-flip]
//!                  [--mode A|F] [--inline N] [--nos]
//! wbe_tool ledger-diff <old.ndjson> <new.ndjson>
//! wbe_tool bench   --check-baselines [--update] [--baselines PATH]
//! wbe_tool profile [--workload W]... [--top N] [--scale S]
//!                  [--format text|ndjson] [--out F] [--slo-max-pause N]
//!                  [--slo-p99-pause N]
//! wbe_tool oracle  [--workload W]... [--engine classic|compiled]
//!                  [--scale S] [--top N] [--format text|ndjson] [--out F]
//! wbe_tool report  [workload|file.wbe ...] [--metrics-out m.json]
//!                  [--trace-out t.ndjson] [--chrome-trace t.json]
//!                  [--format text|ndjson] [--scale S]
//! wbe_tool soak    [--rounds N] [--seed S] [--escalate] [--scale F]
//!                  [--max-attempts K] [--threshold D] [--unrecoverable]
//!                  [--format text|ndjson] [--out F] [--flight-out T]
//! wbe_tool serve   [--tenants T] [--connections C] [--mix session|cache|churn]
//!                  [--requests N] [--arrivals A] [--request-ops K] [--seed S]
//!                  [--heap-budget B] [--chaos] [--overload-pm PM]
//!                  [--slo-p99 N] [--slo-shed-pct P]
//!                  [--format text|ndjson] [--out F] [--trace-out T]
//! wbe_tool throughput [--engine classic|compiled] [--mutators N]
//!                  [--duration-ops N] [--workload W]... [--format text|ndjson]
//!                  [--out F]
//! wbe_tool mcheck  [--threads N] [--schedules K] [--seed S]
//!                  [--scenario chain|churn|shared] [--systematic]
//!                  [--preempt-bound B] [--demo-unsound] [--fault-seed S]
//!                  [--replay SEED | --replay-prefix HEX]
//!                  [--trace-out trace.json]
//! ```
//!
//! Wherever a file is expected, a built-in workload name (jess, db,
//! javac, mtrt, jack, jbb) is also accepted.
//!
//! `report` exercises the full pipeline (compile → analyze → run with a
//! deterministic GC policy) over the named workloads — the standard
//! suite by default — and prints a telemetry report: counters, phase
//! spans, and the GC pause-time histogram. `--metrics-out` writes the
//! registry snapshot as JSON; `--trace-out` enables event tracing and
//! writes the span stream as NDJSON; `--chrome-trace` writes the same
//! stream as Chrome trace-event JSON (openable in `chrome://tracing`
//! or Perfetto); `--format ndjson` prints the metrics in the same
//! NDJSON shape the experiments exporter emits. File sources are
//! compiled and analyzed but not executed (they have no standard entry
//! point).
//!
//! `explain` is the human view of the elision provenance ledger: the
//! verdict at every barrier-relevant store site with its evidence
//! chain, and for kept barriers the first failing elision condition.
//! `ledger` emits the machine view (NDJSON, deterministic);
//! `ledger-diff` compares two such files site-by-site and exits 1 on a
//! regression (newly-kept, newly-degraded, or vanished elided site);
//! `bench --check-baselines` gates the standard suite's numbers against
//! `baselines/suite.ndjson`.
//!
//! `serve` runs the GC-aware overload-protection world: an open-loop
//! request generator (arrivals never slow down for the server) drives
//! `--connections` mutator machines over the deterministic stepped
//! scheduler while the pressure ladder defends `--heap-budget`
//! occupancy — pacing marking earlier, throttling allocation, shedding
//! requests, and finally forcing an emergency stop-the-world, each
//! transition carrying a machine-readable reason. Exit 0 when the run
//! stayed nominal and met its SLOs; 1 when the ladder engaged but SLOs
//! held (graceful degradation — the ladder working); 2 on an SLO
//! violation (`--slo-p99` steps, `--slo-shed-pct` percent) or a
//! soundness violation. Equal options produce byte-identical NDJSON.
//!
//! `throughput` measures mutator throughput under either execution
//! engine (`--engine classic|compiled`) with `--mutators` independent
//! mutator threads, each an isolated engine + heap executing the same
//! deterministic instruction stream until `--duration-ops` instructions
//! have run. The text report carries ops/sec, allocation rate, and the
//! wall-clock barrier-overhead trio (barrier-free vs always-log kept vs
//! always-log + elision); `--format ndjson` emits only the
//! engine-independent facts (instruction/allocation counts, digests) —
//! byte-identical between the two engines, which CI diffs.
//!
//! `profile` joins the interpreter's per-site dynamic barrier counters
//! with the provenance ledger: per-keep-code execution/cycle
//! attribution with headroom estimates, the hottest kept sites, and
//! per-phase GC pause percentiles (p50/p90/p99/p99.9/max in work
//! units). `--slo-max-pause N` turns the report into a gate: exit 1
//! when any stop-the-world pause exceeded `N` work units;
//! `--slo-p99-pause N` gates the 99th-percentile STW pause instead
//! (the two compose). `--format ndjson`
//! output is deterministic (byte-identical across runs).
//!
//! `oracle` is the third observability plane, joining the static
//! ledger (what the analysis decided) and the cost profiler (what the
//! kept barriers cost) with *necessity*: which kept-barrier executions
//! actually contributed to marking. Every kept barrier in either
//! engine reports its SATB enqueue verdict (necessary, or vacuous —
//! marking idle, null old value, already marked, duplicate), each
//! marking cycle is audited against a snapshot-reachability check at
//! remark, and a heap side-table of runtime witnesses (thread escape,
//! observed nulls) supplies the refutation for each never-necessary
//! site. The report gives per-site necessity rates, the suite-wide
//! dynamic-upper-bound elision rate next to the frozen static 25.770%,
//! and a ranked worklist of kept sites no execution ever needed.
//! `--format ndjson` is deterministic *and engine-independent*:
//! classic and compiled runs of the same seed emit byte-identical
//! files (CI diffs them). `explain --oracle F.ndjson` joins such a
//! file back onto the static ledger, rendering each site's measured
//! necessity next to its keep-code.
//!
//! ## Exit codes
//!
//! One contract across every gate-style subcommand; 0 is always
//! success and 2 is always "the tool could not run the check"
//! (usage, I/O, unknown workload), never a finding. 1 is the gate
//! firing while the run itself stayed sound — except `serve`, whose
//! ladder makes degradation the *expected* defense (so 1) and reserves
//! 2 for SLO/soundness failure.
//!
//! | command | 0 | 1 | 2 |
//! |---------|---|---|---|
//! | `verify <file>` | valid + type-checks | invalid | usage |
//! | `verify --faults` | all schedules sound | divergence/violation | usage/unknown workload |
//! | `ledger-diff` | no regression | regression | usage/IO/parse |
//! | `bench --check-baselines` | baselines hold | drift | usage/IO/parse |
//! | `profile` | SLOs met | pause SLO violated | usage/run error |
//! | `oracle` | report produced | — | usage/run error |
//! | `throughput` | report produced | — | usage/run error |
//! | `mcheck` | all schedules sound | violation found | usage |
//! | `soak` | clean | degraded > threshold | unrecovered trap |
//! | `serve` | nominal, SLOs met | ladder engaged, SLOs held | SLO/soundness violation |

use std::process::exit;

use wbe_analysis::nullsame;
use wbe_heap::gc::MarkStyle;
use wbe_interp::{
    BarrierConfig, BarrierMode, BarrierStats, ElidedBarriers, ElisionKind, GcPolicy, Interp, Value,
};
use wbe_ir::display::{method_display, program_display};
use wbe_ir::{parse_program, Program};
use wbe_opt::{compile, OptMode, PipelineConfig};

fn usage() -> ! {
    eprintln!(
        "usage: wbe_tool <verify|dump|analyze|explain|ledger|ledger-diff|run|export|report|bench|profile|oracle|throughput|soak|serve|mcheck> [<file.wbe|workload>] [options]\n\
         verify:  <file.wbe>  — or —  [workload ...] --faults N [--seed S] [--scale F] [--demo-unsound]\n\
         analyze: [--mode A|F] [--inline N] [--nos]\n\
         explain: [--method M] [--site N] [--mode A|F] [--inline N] [--nos] [--oracle F.ndjson]\n\
         ledger:  [--out l.ndjson] [--demo-flip] [--mode A|F] [--inline N] [--nos]\n\
         ledger-diff: <old.ndjson> <new.ndjson>\n\
         run:     <method> [int args...] [--elide] [--fuel N]\n\
         report:  [workload|file.wbe ...] [--metrics-out m.json] [--trace-out t.ndjson]\n\
                  [--chrome-trace t.json] [--format text|ndjson] [--scale S]\n\
         bench:   --check-baselines [--update] [--baselines PATH]\n\
         profile: [--workload W]... [--top N] [--scale S] [--format text|ndjson]\n\
                  [--out F] [--slo-max-pause N] [--slo-p99-pause N]\n\
         oracle:  [--workload W]... [--engine classic|compiled] [--scale S] [--top N]\n\
                  [--format text|ndjson] [--out F]\n\
         throughput: [--engine classic|compiled] [--mutators N] [--duration-ops N]\n\
                  [--workload W]... [--format text|ndjson] [--out F]\n\
         soak:    [--rounds N] [--seed S] [--escalate] [--scale F] [--max-attempts K]\n\
                  [--threshold D] [--unrecoverable] [--format text|ndjson] [--out F]\n\
                  [--flight-out T]\n\
         serve:   [--tenants T] [--connections C] [--mix session|cache|churn] [--requests N]\n\
                  [--arrivals A] [--request-ops K] [--seed S] [--heap-budget B] [--chaos]\n\
                  [--overload-pm PM] [--slo-p99 N] [--slo-shed-pct P] [--format text|ndjson]\n\
                  [--out F] [--trace-out T]\n\
         {}\n\
         exit codes — 0 success, 2 tool could not run (usage/IO/unknown workload):\n\
           verify <file>:   1 invalid          verify --faults: 1 divergence found\n\
           ledger-diff:     1 regression       bench:           1 baseline drift\n\
           profile:         1 pause SLO violated                mcheck: 1 violation found\n\
           soak:            1 degraded > threshold, 2 unrecovered trap\n\
           serve:           1 ladder engaged (SLOs held), 2 SLO/soundness violation\n\
           oracle, throughput, run, report: no exit-1 findings",
        wbe_harness::mcheck::USAGE
    );
    exit(2)
}

fn load(source: &str) -> Program {
    if let Some(w) = wbe_workloads::by_name(source) {
        return w.program;
    }
    let text = std::fs::read_to_string(source).unwrap_or_else(|e| {
        eprintln!("cannot read {source}: {e}");
        exit(1)
    });
    parse_program(&text).unwrap_or_else(|e| {
        eprintln!("{source}: {e}");
        exit(1)
    })
}

fn check(program: &Program, source: &str) {
    if let Err(e) = program.validate() {
        eprintln!("{source}: validation failed: {e}");
        exit(1);
    }
    if let Err(e) = wbe_ir::type_check_program(program) {
        eprintln!("{source}: type check failed: {e}");
        exit(1);
    }
}

/// `wbe_tool report`: run workloads end-to-end under telemetry and
/// export the collected metrics and (optionally) the trace stream.
fn report(rest: &[String]) {
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut chrome_trace: Option<String> = None;
    let mut ndjson = false;
    let mut scale = 0.25f64;
    let mut sources: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics-out" => metrics_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--chrome-trace" => chrome_trace = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--format" => match it.next().map(String::as_str) {
                Some("text") => ndjson = false,
                Some("ndjson") => ndjson = true,
                _ => usage(),
            },
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            s if s.starts_with("--") => usage(),
            s => sources.push(s.to_string()),
        }
    }
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
        metrics: true,
        tracing: trace_out.is_some() || chrome_trace.is_some(),
    });

    // Built-in workloads run end-to-end (instrumenting analysis, interp,
    // and heap); bare .wbe files are compiled and analyzed only.
    let mut gc_total = wbe_heap::gc::GcStats::default();
    let mut barriers = BarrierStats::default();
    let run_builtin = |w: &wbe_workloads::Workload,
                       gc_total: &mut wbe_heap::gc::GcStats,
                       barriers: &mut BarrierStats| {
        let iters = ((w.default_iters as f64 * scale) as i64).max(8);
        let policy = GcPolicy {
            alloc_trigger: 400,
            step_interval: 32,
            step_budget: 4,
        };
        let run = wbe_harness::runner::try_run_workload(
            w,
            OptMode::Full,
            100,
            iters,
            BarrierMode::Checked,
            MarkStyle::Satb,
            Some(policy),
        )
        .unwrap_or_else(|t| {
            eprintln!("workload {} trapped: {t}", w.name);
            exit(1)
        });
        gc_total.merge(&run.gc);
        barriers.merge(&run.stats.barrier);
        println!(
            "{:<8} barriers: {}; gc: {}",
            run.name, run.stats.barrier, run.gc
        );
    };
    if sources.is_empty() {
        for w in wbe_workloads::standard_suite() {
            run_builtin(&w, &mut gc_total, &mut barriers);
        }
    } else {
        for s in &sources {
            if let Some(w) = wbe_workloads::by_name(s) {
                run_builtin(&w, &mut gc_total, &mut barriers);
            } else {
                let program = load(s);
                check(&program, s);
                let compiled = compile(&program, &PipelineConfig::default());
                println!(
                    "{s:<8} analyzed: {} elided sites, code size {} bytes",
                    compiled.elided_sites().len(),
                    compiled.code_size()
                );
            }
        }
    }
    println!("suite    barriers: {barriers}; gc: {gc_total}");
    println!();

    let snap = wbe_telemetry::registry::global().snapshot();
    if ndjson {
        print!("{}", wbe_telemetry::export::metrics_ndjson(&snap));
    } else {
        print!("{}", wbe_telemetry::export::metrics_text(&snap));
    }
    if let Some(path) = &metrics_out {
        if let Err(e) = wbe_telemetry::export::write_metrics_json(std::path::Path::new(path)) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
        println!("metrics written to {path}");
    }
    // Both trace writers consume the same stream: drain once, write
    // each requested format from the same event vector.
    if trace_out.is_some() || chrome_trace.is_some() {
        let events = wbe_telemetry::trace::drain();
        let write = |path: &str, body: String| {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            println!("trace written to {path}");
        };
        if let Some(path) = &trace_out {
            write(path, wbe_telemetry::export::trace_ndjson(&events));
        }
        if let Some(path) = &chrome_trace {
            write(path, wbe_telemetry::export::chrome_trace_json(&events));
        }
    }
}

/// Shared flag parsing for `explain` and `ledger`: builds the ledger of
/// `source`'s program under the requested pipeline configuration.
struct LedgerArgs {
    mode: OptMode,
    inline: usize,
    nos: bool,
    method: Option<String>,
    site: Option<usize>,
    out: Option<String>,
    demo_flip: bool,
    oracle: Option<String>,
}

fn parse_ledger_args(rest: &[String]) -> LedgerArgs {
    let mut a = LedgerArgs {
        mode: OptMode::Full,
        inline: 100,
        nos: false,
        method: None,
        site: None,
        out: None,
        demo_flip: false,
        oracle: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mode" => match it.next().map(String::as_str) {
                Some("A") => a.mode = OptMode::Full,
                Some("F") => a.mode = OptMode::FieldOnly,
                _ => usage(),
            },
            "--inline" => {
                a.inline = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--nos" => a.nos = true,
            "--method" => a.method = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--site" => {
                a.site = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => a.out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--demo-flip" => a.demo_flip = true,
            "--oracle" => a.oracle = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    a
}

fn build_ledger_or_exit(program: &Program, a: &LedgerArgs) -> wbe_analysis::ElisionLedger {
    wbe_harness::ledger::build_ledger(program, a.mode, a.inline, a.nos).unwrap_or_else(|| {
        eprintln!("mode runs no analysis, so there is no ledger");
        exit(2)
    })
}

/// `wbe_tool ledger-diff OLD NEW`: site-level comparison of two NDJSON
/// ledgers. Exit 0 clean/improvements, 1 regressions, 2 I/O errors.
fn ledger_diff(old_path: &str, new_path: &str) -> i32 {
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            exit(2)
        }
    };
    let parse = |path: &str, text: &str| match wbe_harness::ledger::parse_ledger(text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            exit(2)
        }
    };
    let old = parse(old_path, &read(old_path));
    let new = parse(new_path, &read(new_path));
    let d = wbe_harness::ledger::diff_ledgers(&old, &new);
    print!("{d}");
    if d.regressions() > 0 {
        1
    } else {
        0
    }
}

/// `wbe_tool profile`: dynamic barrier-cost attribution (ledger join),
/// per-phase pause percentiles, and the optional pause SLO gate.
fn profile(rest: &[String]) -> i32 {
    let mut opts = wbe_harness::profile::ProfileOptions::default();
    let mut ndjson = false;
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => opts
                .workloads
                .push(it.next().unwrap_or_else(|| usage()).clone()),
            "--top" => {
                opts.top = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--slo-max-pause" => {
                opts.slo_max_pause = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--slo-p99-pause" => {
                opts.slo_p99_pause = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => ndjson = false,
                Some("ndjson") => ndjson = true,
                _ => usage(),
            },
            "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    wbe_harness::profile::run_profile(&opts, ndjson, out.as_deref())
}

/// `wbe_tool oracle`: the barrier-necessity oracle — per-site necessity
/// verdicts for every executed kept barrier, the dynamic-upper-bound
/// elision rate, and the ranked never-necessary worklist.
fn oracle(rest: &[String]) -> i32 {
    let mut opts = wbe_harness::oracle::OracleOptions::default();
    let mut ndjson = false;
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => opts
                .workloads
                .push(it.next().unwrap_or_else(|| usage()).clone()),
            "--engine" => {
                opts.engine = it
                    .next()
                    .and_then(|s| wbe_interp::EngineKind::parse(s))
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--top" => {
                opts.top = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => ndjson = false,
                Some("ndjson") => ndjson = true,
                _ => usage(),
            },
            "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    wbe_harness::oracle::run_oracle(&opts, ndjson, out.as_deref())
}

/// `wbe_tool throughput`: the multi-mutator throughput bench. Text
/// output carries the timings; `--format ndjson` emits only the
/// deterministic engine-independent facts (CI diffs classic against
/// compiled).
fn throughput(rest: &[String]) -> i32 {
    use wbe_harness::throughput::{render_ndjson, render_text, run_throughput, ThroughputOptions};
    let mut opts = ThroughputOptions::default();
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--engine" => {
                opts.engine = it
                    .next()
                    .and_then(|s| wbe_interp::EngineKind::parse(s))
                    .unwrap_or_else(|| usage())
            }
            "--mutators" => {
                opts.mutators = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--duration-ops" => {
                opts.duration_ops = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--workload" => opts
                .workloads
                .push(it.next().unwrap_or_else(|| usage()).clone()),
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.ndjson = false,
                Some("ndjson") => opts.ndjson = true,
                _ => usage(),
            },
            "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    let rows = match run_throughput(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let body = if opts.ndjson {
        render_ndjson(&rows, &opts)
    } else {
        render_text(&rows, &opts)
    };
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
            eprintln!("throughput report written to {path}");
        }
        None => print!("{body}"),
    }
    0
}

/// `wbe_tool bench`: baseline-gated suite measurement.
fn bench(rest: &[String]) -> i32 {
    let mut check = false;
    let mut update = false;
    let mut path = wbe_harness::baselines::DEFAULT_PATH.to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check-baselines" => check = true,
            "--update" => update = true,
            "--baselines" => path = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    if !check {
        usage();
    }
    wbe_harness::baselines::run_check(std::path::Path::new(&path), update)
}

/// `wbe_tool soak`: the chaos soak — the whole suite under seeded
/// (optionally escalating) fault schedules with invariant verification
/// and self-healing recovery on every run. Exit 0 clean, 1 when more
/// runs degraded into barrier panic mode than `--threshold` allows,
/// 2 on an unrecovered trap. On failure the flight-recorder ring is
/// dumped as Chrome trace JSON to `--flight-out` and each failed run's
/// replay handle is printed.
fn soak(rest: &[String]) -> i32 {
    use wbe_harness::soak::{run_soak, SoakOptions};
    let mut opts = SoakOptions::default();
    let mut out: Option<String> = None;
    let mut flight_out = "soak-flight.trace.json".to_string();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rounds" => {
                opts.rounds = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-attempts" => {
                opts.max_attempts = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threshold" => {
                opts.threshold = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--escalate" => opts.escalate = true,
            "--unrecoverable" => opts.unrecoverable = true,
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.ndjson = false,
                Some("ndjson") => opts.ndjson = true,
                _ => usage(),
            },
            "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--flight-out" => flight_out = it.next().unwrap_or_else(|| usage()).clone(),
            _ => usage(),
        }
    }
    let outcome = run_soak(&opts);
    let report = outcome.render(&opts);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &report) {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
            eprintln!("soak report written to {path}");
        }
        None => print!("{report}"),
    }
    if outcome.exit_code != 0 {
        if let Err(e) = std::fs::write(&flight_out, outcome.flight_chrome_trace()) {
            eprintln!("cannot write flight recorder to {flight_out}: {e}");
        } else {
            eprintln!(
                "flight recorder: {} events ({} discarded by the ring) -> {flight_out}",
                outcome.flight.len(),
                outcome.flight_discarded
            );
        }
    }
    outcome.exit_code
}

/// `wbe_tool serve`: the GC-aware overload-protection world. Exit 0
/// when the run stayed nominal and met its SLOs, 1 when the pressure
/// ladder engaged but every SLO given held, 2 on an SLO or soundness
/// violation. `--trace-out` writes the run's trace (ladder transitions,
/// GC phases) as Chrome trace JSON.
fn serve(rest: &[String]) -> i32 {
    use wbe_harness::serve::{run_serve_cmd, ServeOptions};
    let mut opts = ServeOptions::default();
    let mut out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tenants" => {
                opts.tenants = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--connections" => {
                opts.connections = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--mix" => {
                opts.mix = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--requests" => {
                opts.requests = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--arrivals" => {
                opts.arrivals_per_window = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--request-ops" => {
                opts.request_ops = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--heap-budget" => {
                opts.heap_budget = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--chaos" => opts.chaos = true,
            "--overload-pm" => {
                opts.overload_pm = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--slo-p99" => {
                opts.slo_p99 = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--slo-shed-pct" => {
                opts.slo_shed_pct = Some(
                    it.next()
                        .and_then(|n| n.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.ndjson = false,
                Some("ndjson") => opts.ndjson = true,
                _ => usage(),
            },
            "--out" => out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage()).clone()),
            _ => usage(),
        }
    }
    let report = run_serve_cmd(&opts);
    let body = report.render();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
            eprintln!("serve report written to {path}");
        }
        None => print!("{body}"),
    }
    if let Some(path) = &trace_out {
        if let Err(e) = std::fs::write(path, report.trace_chrome_json()) {
            eprintln!("cannot write trace to {path}: {e}");
            return 2;
        }
        eprintln!(
            "serve trace written to {path} ({} events)",
            report.trace.len()
        );
    }
    report.exit_code
}

/// `wbe_tool verify` with fault flags: the differential fault-injection
/// harness over built-in workloads. Exits 1 if any workload fails
/// (observable divergence, trap, invariant violation, or an undetected
/// deliberately-unsound elision under `--demo-unsound`).
fn verify_faults(rest: &[String]) {
    use wbe_harness::verify::{
        demo_unsound_detection, verify_workload, DemoOutcome, VerifyOptions,
    };
    let mut opts = VerifyOptions::default();
    let mut demo_unsound = false;
    let mut names: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" => {
                opts.schedules = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                opts.seed = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--demo-unsound" => demo_unsound = true,
            s if s.starts_with("--") => usage(),
            s => names.push(s.to_string()),
        }
    }
    let workloads: Vec<wbe_workloads::Workload> = if names.is_empty() {
        wbe_workloads::standard_suite()
    } else {
        names
            .iter()
            .map(|n| {
                wbe_workloads::by_name(n).unwrap_or_else(|| {
                    eprintln!("'{n}' is not a built-in workload (fault verification needs one)");
                    exit(2)
                })
            })
            .collect()
    };
    println!(
        "differential fault verification: {} schedules, seed {}, scale {}",
        opts.schedules, opts.seed, opts.scale
    );
    let mut failed = false;
    for w in &workloads {
        let verdict = verify_workload(w, &opts);
        println!("{verdict}");
        failed |= !verdict.passed();
    }
    if demo_unsound {
        for w in &workloads {
            match demo_unsound_detection(w, &opts) {
                DemoOutcome::Detected(msg) => println!("demo     PASS {msg}"),
                DemoOutcome::NoCandidate(msg) => println!("demo     SKIP {msg}"),
                DemoOutcome::Missed(msg) => {
                    println!("demo     FAIL {msg}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        eprintln!("verification FAILED");
        exit(1);
    }
    println!("verification passed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("report") {
        report(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("bench") {
        exit(bench(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("profile") {
        exit(profile(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("oracle") {
        exit(oracle(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("throughput") {
        exit(throughput(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("ledger-diff") {
        let (Some(old), Some(new)) = (args.get(1), args.get(2)) else {
            usage()
        };
        exit(ledger_diff(old, new));
    }
    if args.first().map(String::as_str) == Some("soak") {
        exit(soak(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("serve") {
        exit(serve(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("mcheck") {
        let opts = wbe_harness::mcheck::parse(&args[1..]).unwrap_or_else(|e| {
            eprintln!("mcheck: {e}");
            usage()
        });
        exit(wbe_harness::mcheck::run(&opts));
    }
    // `verify` dispatches on flavour: any fault flag selects the
    // differential harness; otherwise it is the classic file check.
    if args.first().map(String::as_str) == Some("verify")
        && args[1..].iter().any(|a| {
            matches!(
                a.as_str(),
                "--faults" | "--seed" | "--scale" | "--demo-unsound"
            )
        })
    {
        verify_faults(&args[1..]);
        return;
    }
    let (cmd, source) = match (args.first(), args.get(1)) {
        (Some(c), Some(s)) => (c.as_str(), s.as_str()),
        _ => usage(),
    };
    let rest = &args[2..];
    let program = load(source);

    match cmd {
        "verify" => {
            check(&program, source);
            println!(
                "{source}: OK ({} classes, {} methods, {} instructions)",
                program.classes.len(),
                program.methods.len(),
                program.total_size()
            );
        }
        "dump" | "export" => {
            check(&program, source);
            print!("{}", program_display(&program));
        }
        "explain" => {
            check(&program, source);
            let a = parse_ledger_args(rest);
            let mut ledger = build_ledger_or_exit(&program, &a);
            if let Some(path) = &a.oracle {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(2)
                });
                let rows = wbe_harness::ledger::parse_oracle_sites(&text).unwrap_or_else(|e| {
                    eprintln!("{path}: {e}");
                    exit(2)
                });
                let joined = ledger.join_oracle(rows.iter().map(|r| {
                    (
                        r.method.as_str(),
                        r.block,
                        r.index,
                        r.executions,
                        r.necessary,
                        r.witness.as_str(),
                    )
                }));
                eprintln!("joined {joined}/{} oracle site records", rows.len());
            }
            print!(
                "{}",
                wbe_harness::ledger::explain(&ledger, a.method.as_deref(), a.site)
            );
        }
        "ledger" => {
            check(&program, source);
            let a = parse_ledger_args(rest);
            let mut ledger = build_ledger_or_exit(&program, &a);
            if a.demo_flip {
                wbe_harness::ledger::demo_flip(&mut ledger);
            }
            let body = ledger.to_ndjson();
            match &a.out {
                Some(path) => {
                    if let Err(e) = std::fs::write(path, body) {
                        eprintln!("cannot write {path}: {e}");
                        exit(1);
                    }
                    eprintln!(
                        "ledger written to {path} ({} records)",
                        ledger.records.len()
                    );
                }
                None => print!("{body}"),
            }
        }
        "analyze" => {
            check(&program, source);
            let mut mode = OptMode::Full;
            let mut inline = 100usize;
            let mut nos = false;
            let mut dump = false;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--mode" => match it.next().map(String::as_str) {
                        Some("A") => mode = OptMode::Full,
                        Some("F") => mode = OptMode::FieldOnly,
                        Some("B") => mode = OptMode::Baseline,
                        _ => usage(),
                    },
                    "--inline" => {
                        inline = it
                            .next()
                            .and_then(|n| n.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--nos" => nos = true,
                    "--dump" => dump = true,
                    _ => usage(),
                }
            }
            let mut cfg = PipelineConfig::new(mode, inline);
            cfg.null_or_same = nos;
            let compiled = compile(&program, &cfg);
            println!(
                "inlined {} calls; analysis time {:?}",
                compiled.inline_stats.inlined_calls,
                compiled.analysis_time()
            );
            let mut total = 0usize;
            for (mid, m) in compiled.program.iter_methods() {
                let elided = compiled.elided_of(mid);
                let nos_sites = compiled.null_or_same.get(&mid).cloned().unwrap_or_default();
                if elided.is_empty() && nos_sites.is_empty() {
                    continue;
                }
                println!("method {} ({}):", mid, m.name);
                for a in &elided {
                    println!("  {a}: pre-null — barrier removed");
                    total += 1;
                }
                for a in nos_sites.difference(&elided) {
                    println!("  {a}: null-or-same — barrier removed");
                    total += 1;
                }
            }
            println!(
                "{total} barriers removed; code size {} bytes",
                compiled.code_size()
            );
            if dump {
                let cfg = mode
                    .analysis_config()
                    .unwrap_or_else(wbe_analysis::AnalysisConfig::full);
                for (_, m) in compiled.program.iter_methods() {
                    print!(
                        "{}",
                        wbe_analysis::dump::dump_method(&compiled.program, m, &cfg)
                    );
                }
            }
        }
        "run" => {
            check(&program, source);
            let method_name = rest.first().unwrap_or_else(|| usage());
            let mut int_args: Vec<Value> = Vec::new();
            let mut elide = false;
            let mut fuel = 50_000_000u64;
            let mut it = rest[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--elide" => elide = true,
                    "--fuel" => {
                        fuel = it
                            .next()
                            .and_then(|n| n.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    n => int_args.push(Value::Int(n.parse().unwrap_or_else(|_| usage()))),
                }
            }
            let Some(m) = program.method_by_name(method_name) else {
                eprintln!("no method named '{method_name}'");
                exit(1);
            };
            let mid = m.id;
            let bc = if elide {
                let res =
                    wbe_analysis::analyze_program(&program, &wbe_analysis::AnalysisConfig::full());
                let mut elided: ElidedBarriers = res.iter_elided().collect();
                for (nm, sites) in nullsame::analyze_program(&program) {
                    for a in sites {
                        elided.insert_kind(nm, a, ElisionKind::NullOrSame);
                    }
                }
                println!("elided {} sites", elided.len());
                BarrierConfig::with_elision(BarrierMode::Checked, elided)
            } else {
                BarrierConfig::new(BarrierMode::Checked)
            };
            let mut interp = Interp::new(&program, bc);
            match interp.run(mid, &int_args, fuel) {
                Ok(v) => {
                    println!(
                        "result: {}",
                        v.map(|v| v.to_string()).unwrap_or_else(|| "void".into())
                    );
                    println!(
                        "insns: {}, cycles: {}, barrier cycles: {}, elided execs: {}",
                        interp.stats.insns,
                        interp.stats.cycles,
                        interp.stats.barrier_cycles,
                        interp.stats.elided_executions
                    );
                }
                Err(t) => {
                    eprintln!("trap: {t}");
                    // Show the faulting method for context.
                    print!("{}", method_display(&program, program.method(mid)));
                    exit(1);
                }
            }
        }
        _ => usage(),
    }
}
