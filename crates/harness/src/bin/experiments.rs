//! Command-line experiment runner.
//!
//! Usage: `experiments [table1|fig2|fig3|table2|pause|all] [--scale S]
//! [--metrics-out m.json] [--trace-out t.ndjson] [--chrome-trace t.json]`
//!
//! `--metrics-out` writes the telemetry registry snapshot collected
//! while the experiments ran; `--trace-out` additionally enables event
//! tracing and writes the span stream as NDJSON; `--chrome-trace`
//! writes the same stream as Chrome trace-event JSON, openable in
//! `chrome://tracing` or Perfetto. The two trace flags share one event
//! stream and may be combined.

use std::env;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = 1.0f64;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut chrome_trace: Option<String> = None;
    let mut i = 0;
    let path_arg = |args: &[String], i: usize, flag: &str| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a path");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                scale = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--scale needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = Some(path_arg(&args, i, "--metrics-out"));
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(path_arg(&args, i, "--trace-out"));
                i += 2;
            }
            "--chrome-trace" => {
                chrome_trace = Some(path_arg(&args, i, "--chrome-trace"));
                i += 2;
            }
            other => {
                which = other.to_string();
                i += 1;
            }
        }
    }
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
        metrics: true,
        tracing: trace_out.is_some() || chrome_trace.is_some(),
    });
    let run_one = |name: &str| match name {
        "table1" => {
            println!("== Table 1: dynamic barrier elimination (inline limit 100, mode A) ==");
            println!("{}", wbe_harness::table1::run(scale));
        }
        "fig2" => {
            println!("== Figure 2: inline limit vs elision and compile time ==");
            println!("{}", wbe_harness::fig2::run(scale * 0.25));
        }
        "fig3" => {
            println!("== Figure 3: compiled code size (inline limit 100) ==");
            println!("{}", wbe_harness::fig3::run());
        }
        "table2" => {
            println!("== Table 2: jbb end-to-end barrier cost ==");
            println!("{}", wbe_harness::table2::run(scale * 0.2, 5));
        }
        "pause" => {
            println!("== Pause: SATB vs incremental-update remark work ==");
            println!("{}", wbe_harness::pause::run(scale));
        }
        "ext" => {
            println!("== §4.3 extension: null-or-same analysis gains ==");
            println!("{}", wbe_harness::ext::run(scale * 0.25));
        }
        "rearrange" => {
            println!("== §4.3 extension: array-rearrangement protocol ==");
            println!("{}", wbe_harness::rearrange_exp::run(scale * 0.25));
        }
        "static" => {
            println!("== §4.2 static elimination counts (TR) ==");
            println!("{}", wbe_harness::static_counts::run(scale * 0.25));
        }
        "combined" => {
            println!("== All techniques stacked: barrier executions doing no logging ==");
            println!("{}", wbe_harness::combined::run(scale * 0.25));
        }
        "clients" => {
            println!("== §6 framework clients: bounds checks & stack allocation ==");
            println!("{}", wbe_harness::clients::run());
        }
        other => {
            eprintln!(
                "unknown experiment '{other}' (table1|fig2|fig3|table2|pause|ext|rearrange|static|clients|combined|all)"
            );
            std::process::exit(2);
        }
    };
    if which == "all" {
        for name in [
            "table1",
            "fig2",
            "fig3",
            "table2",
            "pause",
            "ext",
            "rearrange",
            "static",
            "clients",
            "combined",
        ] {
            run_one(name);
        }
    } else {
        run_one(&which);
    }
    if let Some(path) = &metrics_out {
        let path = std::path::Path::new(path);
        if let Err(e) = wbe_telemetry::export::write_metrics_json(path) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("metrics written to {}", path.display());
    }
    // Both trace writers consume the same buffered stream: drain once
    // and render each requested format from the same events.
    if trace_out.is_some() || chrome_trace.is_some() {
        let events = wbe_telemetry::trace::drain();
        let write = |path: &str, body: String| {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("trace written to {path}");
        };
        if let Some(path) = &trace_out {
            write(path, wbe_telemetry::export::trace_ndjson(&events));
        }
        if let Some(path) = &chrome_trace {
            write(path, wbe_telemetry::export::chrome_trace_json(&events));
        }
    }
}
