//! Figure 2: inline limit vs analysis effectiveness and compile time.
//!
//! For inline limits {0, 25, 50, 100, 200} and modes B/F/A, reports the
//! percentage of dynamic barriers eliminated and the compilation time
//! (inlining + analysis). The paper's findings to reproduce: elision
//! grows with the inline limit and saturates at 100, while compile time
//! keeps growing (the 200 level costs much more and gains almost
//! nothing).

use std::fmt;
use std::time::Duration;

use wbe_heap::gc::MarkStyle;
use wbe_interp::BarrierMode;
use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

use crate::runner::run_workload;

/// The swept inline limits, as in the paper.
pub const LIMITS: [usize; 5] = [0, 25, 50, 100, 200];

/// One (limit, mode) cell aggregated over the whole suite.
#[derive(Clone, Debug)]
pub struct Fig2Cell {
    /// Inline limit.
    pub limit: usize,
    /// Optimization mode.
    pub mode: OptMode,
    /// Dynamic barrier executions eliminated, % of total.
    pub pct_elim: f64,
    /// Total compile time (inlining + analysis) across the suite.
    pub compile_time: Duration,
}

/// The whole figure.
#[derive(Clone, Debug, Default)]
pub struct Fig2 {
    /// Cells in (limit, mode) order.
    pub cells: Vec<Fig2Cell>,
}

impl Fig2 {
    /// Finds a cell.
    pub fn cell(&self, limit: usize, mode: OptMode) -> &Fig2Cell {
        self.cells
            .iter()
            .find(|c| c.limit == limit && c.mode == mode)
            .expect("cell exists")
    }
}

/// Runs the sweep; `scale` shrinks the workloads' iteration counts.
pub fn run(scale: f64) -> Fig2 {
    let suite = standard_suite();
    let mut cells = Vec::new();
    for &limit in &LIMITS {
        for mode in OptMode::ALL {
            let mut total: u64 = 0;
            let mut elim: u64 = 0;
            let mut compile_time = Duration::ZERO;
            for w in &suite {
                let iters = ((w.default_iters as f64 * scale) as i64).max(8);
                let run = run_workload(
                    w,
                    mode,
                    limit,
                    iters,
                    BarrierMode::Checked,
                    MarkStyle::Satb,
                    None,
                );
                total += run.summary.total();
                elim += run.summary.eliminated();
                compile_time += run.compiled.inline_time + run.compiled.analysis_time();
            }
            cells.push(Fig2Cell {
                limit,
                mode,
                pct_elim: if total == 0 {
                    0.0
                } else {
                    100.0 * elim as f64 / total as f64
                },
                compile_time,
            });
        }
    }
    Fig2 { cells }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "(a) dynamic barriers eliminated (% of suite total)")?;
        writeln!(f, "{:>6} {:>8} {:>8} {:>8}", "limit", "B", "F", "A")?;
        for &limit in &LIMITS {
            writeln!(
                f,
                "{:>6} {:>8.1} {:>8.1} {:>8.1}",
                limit,
                self.cell(limit, OptMode::Baseline).pct_elim,
                self.cell(limit, OptMode::FieldOnly).pct_elim,
                self.cell(limit, OptMode::Full).pct_elim,
            )?;
        }
        writeln!(
            f,
            "(b) compile time (inline + analysis, ms; log-scaled in the paper)"
        )?;
        writeln!(f, "{:>6} {:>8} {:>8} {:>8}", "limit", "B", "F", "A")?;
        for &limit in &LIMITS {
            writeln!(
                f,
                "{:>6} {:>8.2} {:>8.2} {:>8.2}",
                limit,
                self.cell(limit, OptMode::Baseline)
                    .compile_time
                    .as_secs_f64()
                    * 1e3,
                self.cell(limit, OptMode::FieldOnly)
                    .compile_time
                    .as_secs_f64()
                    * 1e3,
                self.cell(limit, OptMode::Full).compile_time.as_secs_f64() * 1e3,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elision_grows_with_inline_limit_and_saturates() {
        let fig = run(0.05);
        // Baseline never eliminates anything.
        for &l in &LIMITS {
            assert_eq!(fig.cell(l, OptMode::Baseline).pct_elim, 0.0);
        }
        // A-mode elision is monotone in the limit and saturates at 100.
        let a: Vec<f64> = LIMITS
            .iter()
            .map(|&l| fig.cell(l, OptMode::Full).pct_elim)
            .collect();
        for w in a.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{a:?}");
        }
        assert!(a[3] > a[0], "inlining must matter: {a:?}");
        assert!(
            (a[4] - a[3]).abs() < 2.0,
            "limit 200 gains almost nothing over 100: {a:?}"
        );
        // A ≥ F everywhere (the array analysis only adds elisions).
        for &l in &LIMITS {
            assert!(
                fig.cell(l, OptMode::Full).pct_elim
                    >= fig.cell(l, OptMode::FieldOnly).pct_elim - 1e-9
            );
        }
    }
}
