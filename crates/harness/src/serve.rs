//! `wbe_tool serve`: the GC-aware overload-protection driver.
//!
//! Runs one deterministic server world ([`wbe_heap::overload`]) — an
//! open-loop load generator driving N connection machines over the
//! stepped scheduler while the [`wbe_heap::pressure`] ladder defends
//! the heap — and reports per-request latency percentiles, shed rate,
//! and every ladder transition with its machine-readable reason.
//!
//! The process exit contract (enforced by `wbe_tool serve`):
//!
//! * **0** — the run stayed at [`PressureLevel::Nominal`] and any SLOs
//!   given were met;
//! * **1** — the ladder engaged (pacing / throttling / shedding /
//!   emergency) but every SLO given was still met: the server degraded
//!   *within* the ladder, which is the ladder working;
//! * **2** — an SLO was violated (`--slo-p99` latency or
//!   `--slo-shed-pct` shed budget), or the run recorded a soundness
//!   violation.
//!
//! Output is byte-identical for equal options: every decision in the
//! world derives from the seed, latencies are logical scheduler steps,
//! and the report carries no wall-clock fields. NDJSON mode emits one
//! line per ladder transition followed by a closing summary line, so a
//! CI diff of two runs is the determinism check.

use std::fmt;

use wbe_heap::{
    run_serve, FaultConfig, PressureConfig, PressureLevel, ServeOutcome, ServeScenario,
    ServeWorldConfig,
};
use wbe_telemetry::config::{configure, TelemetryConfig};
use wbe_telemetry::export::chrome_trace_json;
use wbe_telemetry::json::ObjWriter;
use wbe_telemetry::registry::HistogramSnapshot;
use wbe_telemetry::trace::{self, TraceEvent};

/// Options for one serve run.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Tenant count (session-chain slots).
    pub tenants: usize,
    /// Connection (logical mutator thread) count.
    pub connections: usize,
    /// Request mix.
    pub mix: ServeScenario,
    /// Total requests the open-loop generator offers.
    pub requests: usize,
    /// Requests arriving per window (open-loop intensity).
    pub arrivals_per_window: u32,
    /// Work units (≈ allocations) per request.
    pub request_ops: u32,
    /// Seed for arrivals, mixes, and scheduling.
    pub seed: u64,
    /// Heap-occupancy budget the pressure ladder defends.
    pub heap_budget: usize,
    /// Compose the full seeded fault schedule into the run.
    pub chaos: bool,
    /// ‰ chance per arrival window of an overload burst (extra
    /// arrivals); composes into the fault plan with or without
    /// `chaos`.
    pub overload_pm: u16,
    /// p99 latency SLO in scheduler steps (violation ⇒ exit 2).
    pub slo_p99: Option<u64>,
    /// Shed-rate SLO in percent of offered requests (violation ⇒
    /// exit 2).
    pub slo_shed_pct: Option<f64>,
    /// Emit the report as NDJSON instead of text.
    pub ndjson: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            tenants: 4,
            connections: 4,
            mix: ServeScenario::Session,
            requests: 512,
            arrivals_per_window: 2,
            request_ops: 6,
            seed: 0x5e12_7e00,
            heap_budget: 4096,
            chaos: false,
            overload_pm: 0,
            slo_p99: None,
            slo_shed_pct: None,
            ndjson: false,
        }
    }
}

impl ServeOptions {
    fn fault_config(&self) -> Option<FaultConfig> {
        if !self.chaos && self.overload_pm == 0 {
            return None;
        }
        let mut cfg = FaultConfig::from_seed(self.seed);
        if !self.chaos {
            // Overload-only: zero the other knobs so bursts are the
            // only perturbation composed into the run.
            cfg.defer_start_pm = 0;
            cfg.early_start_pm = 0;
            cfg.skip_step_pm = 0;
            cfg.drain_boost_pm = 0;
            cfg.alloc_fail_pm = 0;
        }
        cfg.overload_burst_pm = self.overload_pm;
        Some(cfg)
    }

    fn world_config(&self) -> ServeWorldConfig {
        ServeWorldConfig {
            tenants: self.tenants.max(1),
            connections: self.connections.max(1),
            scenario: self.mix,
            requests: self.requests,
            arrivals_per_window: self.arrivals_per_window.max(1),
            request_ops: self.request_ops.max(1),
            seed: self.seed,
            pressure: PressureConfig::with_budget(self.heap_budget.max(16)),
            fault: self.fault_config(),
            ..ServeWorldConfig::default()
        }
    }
}

/// Latency percentiles over the per-request samples, computed with the
/// same log₂ bucketing the live telemetry histograms use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Completed-request count the profile is over.
    pub count: u64,
    /// Median latency (scheduler steps).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (equals max below 1000 completed requests).
    pub p999: u64,
    /// Worst request.
    pub max: u64,
}

impl LatencyProfile {
    fn from_samples(samples: &[u64]) -> LatencyProfile {
        let snap = HistogramSnapshot::from_samples(samples.iter().copied());
        LatencyProfile {
            count: snap.count,
            p50: snap.quantile(0.50),
            p90: snap.quantile(0.90),
            p99: snap.quantile(0.99),
            p999: snap.quantile(0.999),
            max: snap.max,
        }
    }
}

/// The whole serve run's report.
#[derive(Debug)]
pub struct ServeReport {
    /// The options the run used.
    pub opts: ServeOptions,
    /// The world's outcome (counters, transitions, violations).
    pub outcome: ServeOutcome,
    /// Latency percentiles over completed requests.
    pub latency: LatencyProfile,
    /// Shed requests as a percentage of offered requests.
    pub shed_pct: f64,
    /// True when `--slo-p99` was given and violated.
    pub slo_p99_violated: bool,
    /// True when `--slo-shed-pct` was given and violated.
    pub slo_shed_violated: bool,
    /// Process exit code per the serve contract (0 / 1 / 2).
    pub exit_code: i32,
    /// Trace events captured during the run (pressure transitions,
    /// GC phases) for the Chrome-trace artifact.
    pub trace: Vec<TraceEvent>,
}

impl ServeReport {
    /// Renders the report in the format `opts` asked for.
    pub fn render(&self) -> String {
        if self.opts.ndjson {
            self.render_ndjson()
        } else {
            self.render_text()
        }
    }

    /// One NDJSON line per ladder transition, then a closing summary
    /// line. Byte-identical across runs with equal options.
    pub fn render_ndjson(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for t in &self.outcome.transitions {
            let mut line = String::new();
            let mut w = ObjWriter::new(&mut line);
            w.field_str("event", "pressure.transition")
                .field_str("from", t.from.name())
                .field_str("to", t.to.name())
                .field_str("reason", t.reason)
                .field_u64("at_observation", t.at_observation)
                .field_u64("occupancy", t.occupancy as u64);
            w.finish();
            let _ = writeln!(out, "{line}");
        }
        let c = &self.outcome.counters;
        let mut line = String::new();
        let mut w = ObjWriter::new(&mut line);
        w.field_str("summary", "serve")
            .field_str("mix", self.opts.mix.name())
            .field_str("seed", &format!("{:#018x}", self.opts.seed))
            .field_u64("tenants", self.opts.tenants as u64)
            .field_u64("connections", self.opts.connections as u64)
            .field_u64("heap_budget", self.opts.heap_budget as u64)
            .field_u64("offered", c.offered)
            .field_u64("admitted", c.admitted)
            .field_u64("shed", c.shed)
            .field_u64("completed", c.completed)
            .field_f64("shed_pct", self.shed_pct)
            .field_u64("stw_overlapped", c.stw_overlapped)
            .field_u64("latency_p50", self.latency.p50)
            .field_u64("latency_p90", self.latency.p90)
            .field_u64("latency_p99", self.latency.p99)
            .field_u64("latency_p999", self.latency.p999)
            .field_u64("latency_max", self.latency.max)
            .field_u64("latency_samples", self.latency.count)
            .field_u64("gc_cycles", c.cycles)
            .field_u64("emergency_stw", c.emergency_stw)
            .field_u64("throttle_stalls", c.throttle_stalls)
            .field_u64("overload_bursts", c.overload_bursts)
            .field_u64("pace_entries", self.outcome.pressure.pace_entries)
            .field_u64("throttle_entries", self.outcome.pressure.throttle_entries)
            .field_u64("shed_entries", self.outcome.pressure.shed_entries)
            .field_u64("emergency_entries", self.outcome.pressure.emergency_entries)
            .field_u64("step_downs", self.outcome.pressure.step_downs)
            .field_str("high_water", self.outcome.high_water.name())
            .field_bool("slo_p99_violated", self.slo_p99_violated)
            .field_bool("slo_shed_violated", self.slo_shed_violated)
            .field_u64("violations", self.outcome.violations.len() as u64)
            .field_str("digest", &format!("{:#018x}", self.outcome.digest()))
            .field_u64("exit_code", self.exit_code as u64);
        w.finish();
        let _ = writeln!(out, "{line}");
        out
    }

    fn render_text(&self) -> String {
        use fmt::Write as _;
        let c = &self.outcome.counters;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "serve: mix={} seed={:#018x} tenants={} connections={} budget={}",
            self.opts.mix,
            self.opts.seed,
            self.opts.tenants,
            self.opts.connections,
            self.opts.heap_budget
        );
        let _ = writeln!(
            out,
            "  requests: {} offered, {} admitted, {} shed ({:.2}%), {} completed",
            c.offered, c.admitted, c.shed, self.shed_pct, c.completed
        );
        let _ = writeln!(
            out,
            "  latency (steps): p50={} p90={} p99={} p999={} max={} over {} requests \
             ({} overlapped a pause)",
            self.latency.p50,
            self.latency.p90,
            self.latency.p99,
            self.latency.p999,
            self.latency.max,
            self.latency.count,
            c.stw_overlapped
        );
        let _ = writeln!(
            out,
            "  gc: {} cycles, {} emergency STW, {} pause work units, {} swept",
            c.cycles, c.emergency_stw, c.pause_work, c.swept
        );
        let p = &self.outcome.pressure;
        let _ = writeln!(
            out,
            "  ladder: high-water {} (pace {}, throttle {}, shed {}, emergency {} \
             entries; {} step-downs)",
            self.outcome.high_water.name(),
            p.pace_entries,
            p.throttle_entries,
            p.shed_entries,
            p.emergency_entries,
            p.step_downs
        );
        for t in &self.outcome.transitions {
            let _ = writeln!(
                out,
                "    obs {:>5} occ {:>6}: {} -> {} ({})",
                t.at_observation,
                t.occupancy,
                t.from.name(),
                t.to.name(),
                t.reason
            );
        }
        if let Some(slo) = self.opts.slo_p99 {
            let _ = writeln!(
                out,
                "  slo p99 <= {slo}: {}",
                if self.slo_p99_violated {
                    "VIOLATED"
                } else {
                    "met"
                }
            );
        }
        if let Some(slo) = self.opts.slo_shed_pct {
            let _ = writeln!(
                out,
                "  slo shed <= {slo}%: {}",
                if self.slo_shed_violated {
                    "VIOLATED"
                } else {
                    "met"
                }
            );
        }
        for v in &self.outcome.violations {
            let _ = writeln!(out, "  SOUNDNESS VIOLATION: {v}");
        }
        let _ = writeln!(out, "  exit {}", self.exit_code);
        out
    }

    /// The run's trace events as Chrome trace JSON (the CI artifact).
    pub fn trace_chrome_json(&self) -> String {
        chrome_trace_json(&self.trace)
    }
}

/// Runs one serve world and evaluates the exit contract. Deterministic
/// for given options: the report's NDJSON form is byte-identical across
/// runs.
pub fn run_serve_cmd(opts: &ServeOptions) -> ServeReport {
    // Serialize against anything else touching the global telemetry
    // state; tracing must be on so ladder transitions reach the
    // Chrome-trace artifact. Restore the previous configuration on the
    // way out.
    let _guard = crate::registry_lock();
    let prev = configure(TelemetryConfig::all());
    let _ = trace::drain();

    let outcome = run_serve(&opts.world_config());
    outcome.counters.publish();
    let events = trace::drain();
    configure(prev);

    let latency = LatencyProfile::from_samples(&outcome.latencies);
    let shed_pct = if outcome.counters.offered == 0 {
        0.0
    } else {
        outcome.counters.shed as f64 * 100.0 / outcome.counters.offered as f64
    };
    let slo_p99_violated = opts.slo_p99.is_some_and(|slo| latency.p99 > slo);
    let slo_shed_violated = opts.slo_shed_pct.is_some_and(|slo| shed_pct > slo);
    let exit_code = if slo_p99_violated || slo_shed_violated || !outcome.violations.is_empty() {
        2
    } else if outcome.high_water > PressureLevel::Nominal {
        1
    } else {
        0
    };

    ServeReport {
        opts: opts.clone(),
        outcome,
        latency,
        shed_pct,
        slo_p99_violated,
        slo_shed_violated,
        exit_code,
        trace: events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light() -> ServeOptions {
        ServeOptions {
            heap_budget: 1_000_000,
            ..ServeOptions::default()
        }
    }

    fn overloaded() -> ServeOptions {
        ServeOptions {
            requests: 2000,
            arrivals_per_window: 6,
            request_ops: 8,
            heap_budget: 220,
            ..ServeOptions::default()
        }
    }

    #[test]
    fn light_run_meets_contract_and_exits_zero() {
        let r = run_serve_cmd(&light());
        assert_eq!(r.exit_code, 0, "{}", r.render());
        assert_eq!(r.outcome.high_water, PressureLevel::Nominal);
        assert_eq!(r.outcome.counters.shed, 0);
        assert_eq!(r.latency.count, r.outcome.counters.completed);
        assert!(r.latency.p50 <= r.latency.p99);
        assert!(r.latency.p99 <= r.latency.max || r.latency.count == 0);
        assert!(r.outcome.violations.is_empty());
    }

    #[test]
    fn overloaded_run_degrades_within_ladder_and_exits_one() {
        let r = run_serve_cmd(&overloaded());
        assert_eq!(r.exit_code, 1, "{}", r.render());
        assert!(r.outcome.high_water > PressureLevel::Nominal);
        assert!(r.outcome.counters.shed > 0, "{}", r.render());
        assert!(r.shed_pct > 0.0);
        // Every ladder rung is visible in the NDJSON transition log.
        let ndjson = r.render_ndjson();
        for reason in [
            "occupancy-above-pace",
            "occupancy-above-throttle",
            "occupancy-above-shed",
            "occupancy-above-emergency",
        ] {
            assert!(ndjson.contains(reason), "missing {reason} in:\n{ndjson}");
        }
        assert!(ndjson.ends_with("}\n"));
    }

    #[test]
    fn violated_slo_exits_two() {
        let opts = ServeOptions {
            slo_p99: Some(1),
            ..overloaded()
        };
        let r = run_serve_cmd(&opts);
        assert_eq!(r.exit_code, 2, "{}", r.render());
        assert!(r.slo_p99_violated);
        // The shed-budget SLO trips independently.
        let opts = ServeOptions {
            slo_p99: None,
            slo_shed_pct: Some(0.0),
            ..overloaded()
        };
        let r = run_serve_cmd(&opts);
        assert_eq!(r.exit_code, 2, "{}", r.render());
        assert!(r.slo_shed_violated);
    }

    #[test]
    fn generous_slos_keep_degraded_exit_one() {
        let opts = ServeOptions {
            slo_p99: Some(u64::MAX),
            slo_shed_pct: Some(100.0),
            ..overloaded()
        };
        let r = run_serve_cmd(&opts);
        assert_eq!(r.exit_code, 1, "{}", r.render());
        assert!(!r.slo_p99_violated && !r.slo_shed_violated);
    }

    #[test]
    fn ndjson_is_byte_identical_for_equal_options() {
        let opts = ServeOptions {
            ndjson: true,
            ..overloaded()
        };
        let a = run_serve_cmd(&opts);
        let b = run_serve_cmd(&opts);
        assert_eq!(a.render_ndjson(), b.render_ndjson());
        assert_eq!(a.outcome.digest(), b.outcome.digest());
        let other = run_serve_cmd(&ServeOptions {
            seed: opts.seed + 1,
            ..opts.clone()
        });
        assert_ne!(a.outcome.digest(), other.outcome.digest());
    }

    #[test]
    fn chaos_composes_overload_bursts() {
        let opts = ServeOptions {
            overload_pm: 400,
            ..overloaded()
        };
        let r = run_serve_cmd(&opts);
        assert!(r.outcome.counters.overload_bursts > 0, "{}", r.render());
        // Bursts only add offered load; accounting still balances.
        let c = &r.outcome.counters;
        assert_eq!(c.offered, c.admitted + c.shed);
    }

    #[test]
    fn trace_artifact_holds_ladder_transitions() {
        let r = run_serve_cmd(&overloaded());
        assert!(
            r.trace.iter().any(|e| e.name == "gc.pressure.transition"),
            "transitions traced"
        );
        let chrome = r.trace_chrome_json();
        assert!(chrome.contains("traceEvents"));
        assert!(chrome.contains("gc.pressure.transition"));
    }
}
