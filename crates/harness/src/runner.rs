//! Shared compile-and-run plumbing for the experiments.

use wbe_heap::gc::MarkStyle;
use wbe_interp::{
    BarrierConfig, BarrierMode, BarrierSummary, ElidedBarriers, GcPolicy, Interp, RunStats, Value,
};
use wbe_opt::{compile, Compiled, OptMode, PipelineConfig};

use wbe_workloads::Workload;

/// One compiled-and-executed workload.
#[derive(Debug)]
pub struct WorkloadRun {
    /// Workload name.
    pub name: &'static str,
    /// Compilation artifacts (inlined program + analysis).
    pub compiled: Compiled,
    /// The elision set derived from the analysis.
    pub elided: ElidedBarriers,
    /// Interpreter statistics.
    pub stats: RunStats,
    /// Collector statistics for the run's heap.
    pub gc: wbe_heap::gc::GcStats,
    /// Dynamic barrier summary against the elision set.
    pub summary: BarrierSummary,
}

/// Compiles `w` under the given mode/limit and returns the artifacts
/// plus the elision set.
pub fn compile_workload(
    w: &Workload,
    mode: OptMode,
    inline_limit: usize,
) -> (Compiled, ElidedBarriers) {
    compile_workload_with(w, &PipelineConfig::new(mode, inline_limit))
}

/// Like [`compile_workload`] but with a full pipeline config, combining
/// pre-null and null-or-same elisions (each tagged with its oracle).
pub fn compile_workload_with(w: &Workload, config: &PipelineConfig) -> (Compiled, ElidedBarriers) {
    let compiled = compile(&w.program, config);
    let mut elided: ElidedBarriers = compiled.elided_sites().into_iter().collect();
    for (m, a) in compiled.null_or_same_sites() {
        elided.insert_kind(m, a, wbe_interp::ElisionKind::NullOrSame);
    }
    (compiled, elided)
}

/// Compiles and runs one workload.
///
/// The interpreter runs with elision *enabled*, which both skips elided
/// barriers and arms the soundness oracle (a non-null pre-value at an
/// elided site traps).
///
/// # Panics
///
/// Panics if the workload traps — in this reproduction that always
/// indicates a bug (most importantly, an unsound elision).
pub fn run_workload(
    w: &Workload,
    mode: OptMode,
    inline_limit: usize,
    iters: i64,
    barrier_mode: BarrierMode,
    style: MarkStyle,
    gc: Option<GcPolicy>,
) -> WorkloadRun {
    try_run_workload(w, mode, inline_limit, iters, barrier_mode, style, gc)
        .unwrap_or_else(|t| panic!("workload {} trapped: {t}", w.name))
}

/// Non-panicking [`run_workload`]: a trap comes back as `Err` so
/// drivers (notably `wbe_tool`) can report it and exit nonzero instead
/// of aborting.
#[allow(clippy::too_many_arguments)]
pub fn try_run_workload(
    w: &Workload,
    mode: OptMode,
    inline_limit: usize,
    iters: i64,
    barrier_mode: BarrierMode,
    style: MarkStyle,
    gc: Option<GcPolicy>,
) -> Result<WorkloadRun, wbe_interp::Trap> {
    let (compiled, elided) = compile_workload(w, mode, inline_limit);
    let config = BarrierConfig::with_elision(barrier_mode, elided.clone());
    let mut interp = Interp::with_style(&compiled.program, config, style);
    if let Some(policy) = gc {
        interp.set_gc_policy(policy);
    }
    interp.run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))?;
    let summary = interp.stats.barrier.summarize(&elided);
    Ok(WorkloadRun {
        name: w.name,
        gc: interp.heap.gc.stats,
        stats: interp.stats,
        compiled,
        elided,
        summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_workloads::by_name;

    #[test]
    fn jess_runs_end_to_end_with_elision_oracle() {
        let w = by_name("jess").unwrap();
        let run = run_workload(
            &w,
            OptMode::Full,
            100,
            128,
            BarrierMode::Checked,
            MarkStyle::Satb,
            None,
        );
        assert!(run.summary.total() > 0);
        assert!(run.summary.eliminated() > 0, "jess must elide barriers");
        assert!(run.stats.elided_executions > 0);
    }
}
