//! Static elimination counts (§4.2 / the technical report).
//!
//! §4.2: "In our technical report we also show static counts of
//! eliminated barriers... static results are also important, since they
//! determine the effect of the analysis on compiled code space." This
//! experiment reports per-workload static store-site counts and
//! elimination rates, and checks the paper's observation that dynamic
//! array-store shares exceed static ones (array stores sit in loops).

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::BarrierMode;
use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

use crate::runner::run_workload;

/// One workload's static/dynamic comparison.
#[derive(Clone, Debug)]
pub struct StaticRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Static barrier sites after inlining.
    pub sites: usize,
    /// Static sites whose barrier is removed.
    pub elided_sites: usize,
    /// Static share of sites that are array stores (%).
    pub static_array_pct: f64,
    /// Dynamic share of executions that are array stores (%).
    pub dynamic_array_pct: f64,
    /// Static elimination rate (%).
    pub static_elim_pct: f64,
    /// Dynamic elimination rate (%).
    pub dynamic_elim_pct: f64,
}

/// The experiment result.
#[derive(Clone, Debug, Default)]
pub struct StaticReport {
    /// Rows in suite order.
    pub rows: Vec<StaticRow>,
}

/// Runs the experiment.
pub fn run(scale: f64) -> StaticReport {
    let mut rows = Vec::new();
    for w in standard_suite() {
        let iters = ((w.default_iters as f64 * scale) as i64).max(32);
        let run = run_workload(
            &w,
            OptMode::Full,
            100,
            iters,
            BarrierMode::Checked,
            MarkStyle::Satb,
            None,
        );
        let analysis = run.compiled.analysis.as_ref().expect("mode A analyzes");
        let sites: usize = analysis.methods.values().map(|m| m.barrier_sites).sum();
        let array_sites: usize = analysis.methods.values().map(|m| m.array_sites).sum();
        let elided: usize = analysis.methods.values().map(|m| m.elided.len()).sum();
        let s = &run.summary;
        rows.push(StaticRow {
            name: run.name,
            sites,
            elided_sites: elided,
            static_array_pct: if sites == 0 {
                0.0
            } else {
                100.0 * array_sites as f64 / sites as f64
            },
            dynamic_array_pct: 100.0 - s.pct_field(),
            static_elim_pct: if sites == 0 {
                0.0
            } else {
                100.0 * elided as f64 / sites as f64
            },
            dynamic_elim_pct: s.pct_eliminated(),
        });
    }
    StaticReport { rows }
}

impl fmt::Display for StaticReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>6} {:>7} {:>12} {:>12} {:>11} {:>11}",
            "benchmark", "sites", "elided", "stat arr %", "dyn arr %", "stat elim %", "dyn elim %"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>6} {:>7} {:>12.1} {:>12.1} {:>11.1} {:>11.1}",
                r.name,
                r.sites,
                r.elided_sites,
                r.static_array_pct,
                r.dynamic_array_pct,
                r.static_elim_pct,
                r.dynamic_elim_pct
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_array_share_exceeds_static_for_loop_heavy_workloads() {
        let rep = run(0.1);
        let by: std::collections::HashMap<_, _> =
            rep.rows.iter().map(|r| (r.name, r.clone())).collect();
        // The paper: "the percentage of stores executed dynamically that
        // are array stores is usually higher, sometimes considerably,
        // than the corresponding static percentage" — db's sort swaps
        // and jess's per-iteration array stores dominate dynamically.
        assert!(
            by["db"].dynamic_array_pct > by["db"].static_array_pct,
            "{:?}",
            by["db"]
        );
        assert!(
            by["jess"].dynamic_array_pct > by["jess"].static_array_pct,
            "{:?}",
            by["jess"]
        );
        for r in &rep.rows {
            assert!(r.elided_sites <= r.sites, "{r:?}");
            assert!(r.sites > 0, "{r:?}");
        }
    }
}
