//! Baseline-gated regression reports: committed per-workload
//! expectations (`baselines/suite.ndjson`) that `wbe_tool bench
//! --check-baselines` measures against with tolerances.
//!
//! Each workload line records the deterministic quantities a regression
//! in the analysis or runtime would move: static barrier sites and
//! elided sites (exact — the analysis is deterministic), dynamic
//! barrier executions and eliminated executions (small relative
//! tolerance), GC cycles, and the max-pause bucket (power-of-two bucket
//! of the largest `heap.gc.pause.work_units` sample, ±1 bucket). The
//! trailing `__suite__` line pins the suite-wide dynamic elision
//! percentage and the measurement scale.
//!
//! `--update` remeasures and rewrites the file; the diff then goes
//! through code review like any other change.

use std::fmt::Write as _;
use std::path::Path;

use wbe_heap::gc::MarkStyle;
use wbe_heap::{FaultConfig, FaultPlan, RecoveryPolicy};
use wbe_interp::{BarrierConfig, BarrierMode, EngineKind, GcPolicy, Interp, Value};
use wbe_opt::{OptMode, PipelineConfig};
use wbe_telemetry::json::ObjWriter;

use crate::runner::compile_workload_with;

/// Default location of the committed baseline file, relative to the
/// repository root.
pub const DEFAULT_PATH: &str = "baselines/suite.ndjson";

/// The scale baselines are measured at (multiplies each workload's
/// default iteration count, matching the bench crate's reduced scale).
pub const SCALE: f64 = 0.1;

/// Pinned fault seed for the recovery probe: the baseline's recovery
/// counters are the *exact* numbers this seed produces, so any change
/// to the fault stream, the verifier, or the recovery state machine
/// moves them and trips the gate.
pub const RECOVERY_FAULT_SEED: u64 = 0x00C0_FFEE;
/// Post-remark corruption rate (‰) for the recovery probe.
const RECOVERY_CORRUPT_PM: u16 = 400;
/// Workload scale for the recovery probe (kept small; the probe's
/// counters are exact, not statistical).
const RECOVERY_SCALE: f64 = 0.02;

/// Per-mutator instruction budget for the throughput probe rows (kept
/// small; the pinned quantities are deterministic facts, not rates).
const THROUGHPUT_OPS: u64 = 200_000;

/// Relative tolerance for dynamic counts.
const REL_TOL: f64 = 0.02;
/// Absolute slack for dynamic counts (covers tiny denominators).
const ABS_TOL: u64 = 8;
/// Absolute tolerance for the suite elision percentage (points).
const PCT_TOL: f64 = 1.0;

/// Expectations for one workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadBaseline {
    /// Workload name (a Table 1 class).
    pub workload: String,
    /// Barrier-relevant store sites after inlining (ledger records).
    pub static_sites: u64,
    /// Sites the analysis elides (ledger `elide` verdicts).
    pub static_elided: u64,
    /// Dynamic barrier executions.
    pub dyn_total: u64,
    /// Dynamic executions at elided sites.
    pub dyn_elided: u64,
    /// Completed GC cycles during the run.
    pub gc_cycles: u64,
    /// Power-of-two bucket of the largest GC pause (work units).
    pub max_pause_bucket: u64,
    /// Abstract barrier cycles charged at kept sites (the dynamic cost
    /// the elision left behind).
    pub kept_cycles: u64,
    /// Keep-code with the most attributed barrier cycles (empty when no
    /// kept site executed) — pins the profiler's cost ranking.
    pub top_keep_code: String,
}

/// Deterministic facts of one throughput-bench cell (workload ×
/// engine), pinned exactly: the wall-clock rate is machine-dependent,
/// but everything the run *computes* is not — and classic/compiled rows
/// must be identical, folding the engine-equivalence claim into the
/// baseline gate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThroughputBaseline {
    /// Benchmark workload name.
    pub bench: String,
    /// Engine that produced the row (`classic` or `compiled`).
    pub engine: String,
    /// Instructions executed.
    pub insns: u64,
    /// Abstract cycles charged.
    pub cycles: u64,
    /// Cycles charged to barriers.
    pub barrier_cycles: u64,
    /// Executions of elided stores.
    pub elided: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Completed GC cycles.
    pub gc_cycles: u64,
    /// Final world digest.
    pub digest: u64,
}

/// Deterministic facts of one necessity-oracle probe cell (workload ×
/// engine), pinned exactly. Like the throughput rows, classic and
/// compiled cells must be identical — the oracle's verdict stream is
/// part of the engine-equivalence contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleBaseline {
    /// Probe workload name.
    pub bench: String,
    /// Engine that produced the row (`classic` or `compiled`).
    pub engine: String,
    /// Kept-barrier executions witnessed by the oracle.
    pub executions: u64,
    /// Semantically necessary SATB enqueues.
    pub necessary: u64,
    /// Kept sites whose barrier was never necessary.
    pub never_sites: u64,
    /// Necessary enqueues that were the sole snapshot witness.
    pub sole_witness: u64,
    /// Necessary enqueues still root-reachable at remark.
    pub shielded: u64,
    /// Marking cycles audited at their remark.
    pub cycles_audited: u64,
    /// Objects that escaped their allocating logical thread.
    pub escaped_objects: u64,
}

/// The whole baseline file: per-workload rows plus suite-level facts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BaselineSuite {
    /// One row per standard-suite workload, in suite order.
    pub rows: Vec<WorkloadBaseline>,
    /// Suite-wide dynamic elision percentage.
    pub pct_elided: f64,
    /// Scale the numbers were measured at.
    pub scale: f64,
    /// Recovery attempts taken by the pinned-seed recovery probe
    /// (exact; see [`RECOVERY_FAULT_SEED`]).
    pub recoveries_attempted: u64,
    /// Recovery attempts that healed the heap in the probe (exact).
    pub recoveries_succeeded: u64,
    /// Per-engine throughput probe rows (exact), after the suite line.
    pub throughput: Vec<ThroughputBaseline>,
    /// Per-engine necessity-oracle probe rows (exact), last.
    pub oracle: Vec<OracleBaseline>,
}

fn bucket(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        64 - u64::from(v.leading_zeros())
    }
}

/// Measures the current tree's numbers for the standard suite at
/// `scale`, using the same deterministic GC policy as `wbe_tool
/// report`.
pub fn measure(scale: f64) -> BaselineSuite {
    let _guard = crate::registry_lock();
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
        metrics: true,
        tracing: wbe_telemetry::tracing_enabled(),
    });
    let mut rows = Vec::new();
    let mut total = 0u64;
    let mut elim = 0u64;
    for w in &wbe_workloads::standard_suite() {
        let (row, t, e) = measure_workload(w, scale);
        // Only the six Table 1 mimics feed the suite elision rate: the
        // paper's headline number must not move when more families ride
        // along.
        total += t;
        elim += e;
        rows.push(row);
    }
    // The server family rows are gated like the rest but contribute
    // nothing to `pct_elided`.
    for w in &wbe_workloads::server_family() {
        let (row, _, _) = measure_workload(w, scale);
        rows.push(row);
    }
    let (recoveries_attempted, recoveries_succeeded) = recovery_probe();
    let throughput = throughput_probe();
    let oracle = oracle_probe(scale);
    BaselineSuite {
        rows,
        pct_elided: if total == 0 {
            0.0
        } else {
            100.0 * elim as f64 / total as f64
        },
        scale,
        recoveries_attempted,
        recoveries_succeeded,
        throughput,
        oracle,
    }
}

/// Runs the necessity-oracle probe: the bench workloads under the
/// baseline configuration with the oracle enabled, once per engine.
/// Every pinned quantity is exact — the oracle's verdicts are a pure
/// function of the deterministic execution, and classic/compiled rows
/// must match, folding the oracle side of engine equivalence into the
/// baseline gate.
fn oracle_probe(scale: f64) -> Vec<OracleBaseline> {
    let mut rows = Vec::new();
    for name in ["jess", "jbb"] {
        let w = wbe_workloads::by_name(name).expect("bench workload exists");
        let cfg = PipelineConfig::new(OptMode::Full, 100);
        let (compiled, elided) = compile_workload_with(&w, &cfg);
        let iters = ((w.default_iters as f64 * scale) as i64).max(8);
        for kind in [EngineKind::Classic, EngineKind::Compiled] {
            let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
            let mut engine = kind.build(&compiled.program, bc, MarkStyle::Satb);
            engine.set_oracle(true);
            engine.set_gc_policy(GcPolicy {
                alloc_trigger: 400,
                step_interval: 32,
                step_budget: 4,
            });
            engine
                .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
                .unwrap_or_else(|t| panic!("oracle probe {name} trapped: {t}"));
            let o = engine.oracle().expect("probe enabled the oracle");
            let (mut necessary, mut sole, mut shielded, mut never) = (0, 0, 0, 0);
            for sn in o.sites.values() {
                necessary += sn.necessary;
                sole += sn.sole_witness;
                shielded += sn.shielded;
                if sn.never_necessary() {
                    never += 1;
                }
            }
            let witness = engine
                .heap()
                .witness
                .as_ref()
                .expect("oracle enables witnesses");
            rows.push(OracleBaseline {
                bench: name.to_string(),
                engine: kind.name().to_string(),
                executions: o.total_executions(),
                necessary,
                never_sites: never,
                sole_witness: sole,
                shielded,
                cycles_audited: o.cycles_audited,
                escaped_objects: witness.escaped_objects(),
            });
        }
    }
    rows
}

/// Runs the throughput probe: the bench workloads under the realistic
/// configuration (checked barriers + elision + deterministic GC
/// policy), once per engine, recording only the deterministic facts.
/// A divergence between the classic and compiled rows is an engine-
/// equivalence regression; a divergence from the committed file is a
/// semantic change to the workload, analysis, or runtime.
fn throughput_probe() -> Vec<ThroughputBaseline> {
    let mut rows = Vec::new();
    for name in ["jess", "jbb"] {
        let w = wbe_workloads::by_name(name).expect("bench workload exists");
        let cfg = PipelineConfig::new(OptMode::Full, 100);
        let (compiled, elided) = compile_workload_with(&w, &cfg);
        let chunk = (w.default_iters / 10).max(8);
        for kind in [EngineKind::Classic, EngineKind::Compiled] {
            let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
            let mut engine = kind.build(&compiled.program, bc, MarkStyle::Satb);
            engine.set_gc_policy(crate::throughput::GC_POLICY);
            while engine.stats().insns < THROUGHPUT_OPS {
                engine
                    .run(w.entry, &[Value::Int(chunk)], w.fuel_for(chunk))
                    .unwrap_or_else(|t| panic!("throughput probe {name} trapped: {t}"));
            }
            let s = engine.stats();
            rows.push(ThroughputBaseline {
                bench: name.to_string(),
                engine: kind.name().to_string(),
                insns: s.insns,
                cycles: s.cycles,
                barrier_cycles: s.barrier_cycles,
                elided: s.elided_executions,
                allocs: engine.heap().stats.allocations,
                gc_cycles: engine.heap().gc.stats.cycles,
                digest: wbe_heap::debug::world_digest(engine.heap()),
            });
        }
    }
    rows
}

/// Measures one workload's baseline row; also returns its (total,
/// eliminated) dynamic execution counts for suite-rate accumulation.
fn measure_workload(w: &wbe_workloads::Workload, scale: f64) -> (WorkloadBaseline, u64, u64) {
    wbe_telemetry::registry::global().reset();
    let cfg = PipelineConfig::new(OptMode::Full, 100).with_ledger();
    let (compiled, elided) = compile_workload_with(w, &cfg);
    let ledger = compiled.ledger.as_ref().expect("full mode builds a ledger");
    let iters = ((w.default_iters as f64 * scale) as i64).max(8);
    let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
    let mut interp = Interp::with_style(&compiled.program, bc, MarkStyle::Satb);
    interp.set_gc_policy(GcPolicy {
        alloc_trigger: 400,
        step_interval: 32,
        step_budget: 4,
    });
    interp
        .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
        .unwrap_or_else(|t| panic!("workload {} trapped: {t}", w.name));
    let summary = interp.stats.barrier.summarize(&elided);
    let snap = wbe_telemetry::registry::global().snapshot();
    let max_pause = snap
        .histogram("heap.gc.pause.work_units")
        .map_or(0, |h| h.max);
    // Per-keep-code cycle attribution (same join as the profiler):
    // the baseline pins the cost ranking's winner.
    let ledger_index = ledger.index();
    let mut code_cycles: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    for (&(mid, addr, _), stats) in interp.stats.barrier.iter() {
        if elided.contains(mid, addr) {
            continue;
        }
        let method = compiled.program.method(mid).name.as_str();
        let code = ledger_index
            .get(&(method, addr.block.index(), addr.index))
            .filter(|rec| !rec.keep_code.is_empty())
            .map_or_else(|| "unattributed".to_string(), |rec| rec.keep_code.clone());
        *code_cycles.entry(code).or_insert(0) += stats.cycles;
    }
    let top_keep_code = code_cycles
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(code, _)| code.clone())
        .unwrap_or_default();
    let row = WorkloadBaseline {
        workload: w.name.to_string(),
        static_sites: ledger.records.len() as u64,
        static_elided: ledger.elided() as u64,
        dyn_total: summary.total(),
        dyn_elided: summary.eliminated(),
        gc_cycles: interp.heap.gc.stats.cycles,
        max_pause_bucket: bucket(max_pause),
        kept_cycles: interp.stats.barrier.total_cycles(),
        top_keep_code,
    };
    (row, summary.total(), summary.eliminated())
}

/// Runs the pinned-seed recovery probe: one `db` run with post-remark
/// mark corruption injected under [`RECOVERY_FAULT_SEED`], invariant
/// verification on, and the self-healing controller installed. The
/// fault stream is a pure function of the seed, so the returned
/// (attempted, succeeded) counters are exact and gate-able.
fn recovery_probe() -> (u64, u64) {
    let w = wbe_workloads::by_name("db").expect("db is a standard workload");
    let cfg = PipelineConfig::new(OptMode::Full, 100);
    let (compiled, elided) = compile_workload_with(&w, &cfg);
    let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided);
    let mut interp = Interp::with_style(&compiled.program, bc, MarkStyle::Satb);
    interp.set_gc_policy(GcPolicy {
        alloc_trigger: 64,
        step_interval: 8,
        step_budget: 4,
    });
    interp.set_fault_plan(FaultPlan::new(FaultConfig {
        corrupt_mark_pm: RECOVERY_CORRUPT_PM,
        ..FaultConfig::from_seed(RECOVERY_FAULT_SEED)
    }));
    interp.set_verify_invariants(true);
    interp.set_recovery(RecoveryPolicy { max_attempts: 5 });
    let iters = ((w.default_iters as f64 * RECOVERY_SCALE) as i64).max(8);
    interp
        .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
        .unwrap_or_else(|t| panic!("recovery probe trapped: {t}"));
    let rc = interp.recovery().expect("probe installed a controller");
    (rc.stats.attempted, rc.stats.succeeded)
}

impl BaselineSuite {
    /// Serializes the suite as NDJSON: one line per workload, then the
    /// `__suite__` line. Deterministic given deterministic inputs.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let mut w = ObjWriter::new(&mut out);
            w.field_str("workload", &r.workload)
                .field_u64("static_sites", r.static_sites)
                .field_u64("static_elided", r.static_elided)
                .field_u64("dyn_total", r.dyn_total)
                .field_u64("dyn_elided", r.dyn_elided)
                .field_u64("gc_cycles", r.gc_cycles)
                .field_u64("max_pause_bucket", r.max_pause_bucket)
                .field_u64("kept_cycles", r.kept_cycles)
                .field_str("top_keep_code", &r.top_keep_code);
            w.finish();
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "{{\"workload\":\"__suite__\",\"pct_elided\":{:.3},\"scale\":{},\
             \"recoveries_attempted\":{},\"recoveries_succeeded\":{}}}",
            self.pct_elided, self.scale, self.recoveries_attempted, self.recoveries_succeeded
        );
        // Throughput rows come last so adding them never moves the
        // pre-existing lines of a committed file.
        for t in &self.throughput {
            let mut w = ObjWriter::new(&mut out);
            w.field_str("workload", "__throughput__")
                .field_str("bench", &t.bench)
                .field_str("engine", &t.engine)
                .field_u64("insns", t.insns)
                .field_u64("cycles", t.cycles)
                .field_u64("barrier_cycles", t.barrier_cycles)
                .field_u64("elided", t.elided)
                .field_u64("allocs", t.allocs)
                .field_u64("gc_cycles", t.gc_cycles)
                .field_str("digest", &format!("{:#018x}", t.digest));
            w.finish();
            out.push('\n');
        }
        // Oracle rows likewise append after everything older.
        for o in &self.oracle {
            let mut w = ObjWriter::new(&mut out);
            w.field_str("workload", "__oracle__")
                .field_str("bench", &o.bench)
                .field_str("engine", &o.engine)
                .field_u64("executions", o.executions)
                .field_u64("necessary", o.necessary)
                .field_u64("never_sites", o.never_sites)
                .field_u64("sole_witness", o.sole_witness)
                .field_u64("shielded", o.shielded)
                .field_u64("cycles_audited", o.cycles_audited)
                .field_u64("escaped_objects", o.escaped_objects);
            w.finish();
            out.push('\n');
        }
        out
    }

    /// Parses the NDJSON form back. `Err` names the offending line.
    pub fn parse(ndjson: &str) -> Result<BaselineSuite, String> {
        let mut suite = BaselineSuite::default();
        for (lineno, line) in ndjson.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = wbe_telemetry::json::parse(line)
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let name = v
                .get("workload")
                .and_then(|f| f.as_str())
                .ok_or_else(|| format!("line {}: missing 'workload'", lineno + 1))?
                .to_string();
            if name == "__suite__" {
                suite.pct_elided = v
                    .get("pct_elided")
                    .and_then(|f| f.as_f64())
                    .ok_or_else(|| format!("line {}: missing 'pct_elided'", lineno + 1))?;
                suite.scale = v
                    .get("scale")
                    .and_then(|f| f.as_f64())
                    .ok_or_else(|| format!("line {}: missing 'scale'", lineno + 1))?;
                // Absent in pre-recovery baseline files: read as 0 so
                // the gate reports the drift instead of failing to
                // parse (fix with --update).
                suite.recoveries_attempted = v
                    .get("recoveries_attempted")
                    .and_then(|f| f.as_u64())
                    .unwrap_or(0);
                suite.recoveries_succeeded = v
                    .get("recoveries_succeeded")
                    .and_then(|f| f.as_u64())
                    .unwrap_or(0);
                continue;
            }
            let get = |k: &str| -> Result<u64, String> {
                v.get(k)
                    .and_then(|f| f.as_u64())
                    .ok_or_else(|| format!("line {}: missing integer '{k}'", lineno + 1))
            };
            if name == "__throughput__" {
                let get_str = |k: &str| -> Result<String, String> {
                    v.get(k)
                        .and_then(|f| f.as_str())
                        .map(str::to_string)
                        .ok_or_else(|| format!("line {}: missing '{k}'", lineno + 1))
                };
                let digest_hex = get_str("digest")?;
                let digest = u64::from_str_radix(digest_hex.trim_start_matches("0x"), 16)
                    .map_err(|e| format!("line {}: bad digest: {e}", lineno + 1))?;
                suite.throughput.push(ThroughputBaseline {
                    bench: get_str("bench")?,
                    engine: get_str("engine")?,
                    insns: get("insns")?,
                    cycles: get("cycles")?,
                    barrier_cycles: get("barrier_cycles")?,
                    elided: get("elided")?,
                    allocs: get("allocs")?,
                    gc_cycles: get("gc_cycles")?,
                    digest,
                });
                continue;
            }
            if name == "__oracle__" {
                let get_str = |k: &str| -> Result<String, String> {
                    v.get(k)
                        .and_then(|f| f.as_str())
                        .map(str::to_string)
                        .ok_or_else(|| format!("line {}: missing '{k}'", lineno + 1))
                };
                suite.oracle.push(OracleBaseline {
                    bench: get_str("bench")?,
                    engine: get_str("engine")?,
                    executions: get("executions")?,
                    necessary: get("necessary")?,
                    never_sites: get("never_sites")?,
                    sole_witness: get("sole_witness")?,
                    shielded: get("shielded")?,
                    cycles_audited: get("cycles_audited")?,
                    escaped_objects: get("escaped_objects")?,
                });
                continue;
            }
            suite.rows.push(WorkloadBaseline {
                workload: name,
                static_sites: get("static_sites")?,
                static_elided: get("static_elided")?,
                dyn_total: get("dyn_total")?,
                dyn_elided: get("dyn_elided")?,
                gc_cycles: get("gc_cycles")?,
                max_pause_bucket: get("max_pause_bucket")?,
                kept_cycles: get("kept_cycles")?,
                top_keep_code: v
                    .get("top_keep_code")
                    .and_then(|f| f.as_str())
                    .ok_or_else(|| format!("line {}: missing 'top_keep_code'", lineno + 1))?
                    .to_string(),
            });
        }
        Ok(suite)
    }
}

fn within_rel(expected: u64, actual: u64) -> bool {
    let slack = ((expected as f64 * REL_TOL) as u64).max(ABS_TOL);
    actual.abs_diff(expected) <= slack
}

/// Compares `actual` against the committed `expected` baselines.
/// Returns one human-readable violation per out-of-tolerance quantity
/// (empty means the gate passes).
pub fn compare(expected: &BaselineSuite, actual: &BaselineSuite) -> Vec<String> {
    let mut violations = Vec::new();
    if expected.scale != actual.scale {
        violations.push(format!(
            "scale mismatch: baseline measured at {}, this run at {}",
            expected.scale, actual.scale
        ));
        return violations;
    }
    for exp in &expected.rows {
        let Some(act) = actual.rows.iter().find(|r| r.workload == exp.workload) else {
            violations.push(format!("{}: missing from this run", exp.workload));
            continue;
        };
        let mut exact = |what: &str, e: u64, a: u64| {
            if e != a {
                violations.push(format!("{}: {what} expected {e}, got {a}", exp.workload));
            }
        };
        exact("static_sites", exp.static_sites, act.static_sites);
        exact("static_elided", exp.static_elided, act.static_elided);
        let mut rel = |what: &str, e: u64, a: u64| {
            if !within_rel(e, a) {
                violations.push(format!(
                    "{}: {what} expected {e} ±{:.0}%, got {a}",
                    exp.workload,
                    REL_TOL * 100.0
                ));
            }
        };
        rel("dyn_total", exp.dyn_total, act.dyn_total);
        rel("dyn_elided", exp.dyn_elided, act.dyn_elided);
        rel("kept_cycles", exp.kept_cycles, act.kept_cycles);
        if exp.top_keep_code != act.top_keep_code {
            violations.push(format!(
                "{}: top_keep_code expected '{}', got '{}'",
                exp.workload, exp.top_keep_code, act.top_keep_code
            ));
        }
        if act.gc_cycles.abs_diff(exp.gc_cycles) > ((exp.gc_cycles as f64 * 0.1) as u64).max(1) {
            violations.push(format!(
                "{}: gc_cycles expected {} ±10%, got {}",
                exp.workload, exp.gc_cycles, act.gc_cycles
            ));
        }
        if act.max_pause_bucket.abs_diff(exp.max_pause_bucket) > 1 {
            violations.push(format!(
                "{}: max_pause_bucket expected {} ±1, got {}",
                exp.workload, exp.max_pause_bucket, act.max_pause_bucket
            ));
        }
    }
    for act in &actual.rows {
        if !expected.rows.iter().any(|r| r.workload == act.workload) {
            violations.push(format!(
                "{}: not in the baseline file (run with --update)",
                act.workload
            ));
        }
    }
    if (expected.pct_elided - actual.pct_elided).abs() > PCT_TOL {
        violations.push(format!(
            "suite: pct_elided expected {:.3} ±{PCT_TOL}, got {:.3}",
            expected.pct_elided, actual.pct_elided
        ));
    }
    // The recovery probe is fully deterministic: exact equality.
    if expected.recoveries_attempted != actual.recoveries_attempted {
        violations.push(format!(
            "suite: recoveries_attempted expected {}, got {}",
            expected.recoveries_attempted, actual.recoveries_attempted
        ));
    }
    if expected.recoveries_succeeded != actual.recoveries_succeeded {
        violations.push(format!(
            "suite: recoveries_succeeded expected {}, got {}",
            expected.recoveries_succeeded, actual.recoveries_succeeded
        ));
    }
    // Throughput probe rows are fully deterministic: exact equality,
    // field by field.
    for exp in &expected.throughput {
        let Some(act) = actual
            .throughput
            .iter()
            .find(|t| t.bench == exp.bench && t.engine == exp.engine)
        else {
            violations.push(format!(
                "throughput {}/{}: missing from this run",
                exp.bench, exp.engine
            ));
            continue;
        };
        if act != exp {
            violations.push(format!(
                "throughput {}/{}: expected {exp:?}, got {act:?}",
                exp.bench, exp.engine
            ));
        }
    }
    for act in &actual.throughput {
        if !expected
            .throughput
            .iter()
            .any(|t| t.bench == act.bench && t.engine == act.engine)
        {
            violations.push(format!(
                "throughput {}/{}: not in the baseline file (run with --update)",
                act.bench, act.engine
            ));
        }
    }
    // Oracle probe rows are fully deterministic: exact equality.
    for exp in &expected.oracle {
        let Some(act) = actual
            .oracle
            .iter()
            .find(|o| o.bench == exp.bench && o.engine == exp.engine)
        else {
            violations.push(format!(
                "oracle {}/{}: missing from this run",
                exp.bench, exp.engine
            ));
            continue;
        };
        if act != exp {
            violations.push(format!(
                "oracle {}/{}: expected {exp:?}, got {act:?}",
                exp.bench, exp.engine
            ));
        }
    }
    for act in &actual.oracle {
        if !expected
            .oracle
            .iter()
            .any(|o| o.bench == act.bench && o.engine == act.engine)
        {
            violations.push(format!(
                "oracle {}/{}: not in the baseline file (run with --update)",
                act.bench, act.engine
            ));
        }
    }
    violations
}

/// The `wbe_tool bench --check-baselines` driver: measures, then either
/// rewrites `path` (`update`) or gates against it. Returns the process
/// exit code (0 pass/updated, 1 regression, 2 I/O or parse error).
pub fn run_check(path: &Path, update: bool) -> i32 {
    let actual = measure(SCALE);
    if update {
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return 2;
            }
        }
        if let Err(e) = std::fs::write(path, actual.to_ndjson()) {
            eprintln!("cannot write {}: {e}", path.display());
            return 2;
        }
        println!("baselines updated: {}", path.display());
        return 0;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "cannot read {} ({e}); seed it with --update",
                path.display()
            );
            return 2;
        }
    };
    let expected = match BaselineSuite::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            return 2;
        }
    };
    let violations = compare(&expected, &actual);
    for w in &actual.rows {
        println!(
            "{:<8} static {}/{} elided, dynamic {}/{} elided, {} gc cycles, pause bucket {}, \
             {} kept cycles (top: {})",
            w.workload,
            w.static_elided,
            w.static_sites,
            w.dyn_elided,
            w.dyn_total,
            w.gc_cycles,
            w.max_pause_bucket,
            w.kept_cycles,
            if w.top_keep_code.is_empty() {
                "-"
            } else {
                &w.top_keep_code
            }
        );
    }
    println!(
        "suite    {:.3}% of barrier executions elided, recovery probe {}/{} \
         (seed {RECOVERY_FAULT_SEED:#x})",
        actual.pct_elided, actual.recoveries_succeeded, actual.recoveries_attempted
    );
    if violations.is_empty() {
        println!("baselines OK ({})", path.display());
        0
    } else {
        for v in &violations {
            eprintln!("BASELINE VIOLATION: {v}");
        }
        eprintln!(
            "{} violation(s) against {}",
            violations.len(),
            path.display()
        );
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_round_trips_and_self_compares_clean() {
        let suite = measure(0.05);
        // Six Table 1 mimics plus the two server-family workloads.
        assert_eq!(suite.rows.len(), 8);
        assert!(suite.rows[6].workload.starts_with("server"));
        assert!(suite.rows[7].workload.starts_with("server"));
        let parsed = BaselineSuite::parse(&suite.to_ndjson()).unwrap();
        assert_eq!(parsed.rows.len(), suite.rows.len());
        assert!(
            compare(&parsed, &suite).is_empty(),
            "{:?}",
            compare(&parsed, &suite)
        );
        // Sanity: the suite elides a substantial share of barriers.
        assert!(suite.pct_elided > 20.0, "{}", suite.pct_elided);
        // The headline rate is computed over the six standard rows only;
        // server rows ride along without moving it.
        let (t, e) = suite.rows[..6].iter().fold((0u64, 0u64), |(t, e), r| {
            (t + r.dyn_total, e + r.dyn_elided)
        });
        assert!((suite.pct_elided - 100.0 * e as f64 / t as f64).abs() < 1e-9);
        assert!(suite.rows.iter().all(|r| r.static_sites > 0));
        // The pinned-seed probe actually exercises recovery, and every
        // attempt healed (the probe's corruption is transient).
        assert!(suite.recoveries_attempted > 0);
        assert_eq!(suite.recoveries_attempted, suite.recoveries_succeeded);
        // Throughput rows: both engines per bench workload, and the
        // deterministic facts agree across engines.
        assert_eq!(suite.throughput.len(), 4);
        assert_eq!(parsed.throughput, suite.throughput);
        for pair in suite.throughput.chunks(2) {
            assert_eq!(pair[0].bench, pair[1].bench);
            assert_eq!(pair[0].engine, "classic");
            assert_eq!(pair[1].engine, "compiled");
            assert_eq!(
                (pair[0].insns, pair[0].cycles, pair[0].digest),
                (pair[1].insns, pair[1].cycles, pair[1].digest),
                "{}: engines disagree",
                pair[0].bench
            );
        }
        // Oracle rows: both engines per bench workload, byte-for-byte
        // identical necessity verdicts.
        assert_eq!(suite.oracle.len(), 4);
        assert_eq!(parsed.oracle, suite.oracle);
        for pair in suite.oracle.chunks(2) {
            assert_eq!(pair[0].bench, pair[1].bench);
            assert_eq!(pair[0].engine, "classic");
            assert_eq!(pair[1].engine, "compiled");
            assert!(
                pair[0].executions > 0,
                "{}: no kept barriers",
                pair[0].bench
            );
            assert!(pair[0].necessary <= pair[0].executions);
            let (mut a, mut b) = (pair[0].clone(), pair[1].clone());
            a.engine.clear();
            b.engine.clear();
            assert_eq!(a, b, "{}: oracle engines disagree", pair[0].bench);
        }
    }

    #[test]
    fn perturbed_baselines_are_rejected() {
        let suite = measure(0.05);
        let mut perturbed = suite.clone();
        perturbed.rows[0].static_elided += 1;
        perturbed.rows[1].dyn_total = perturbed.rows[1].dyn_total * 3 / 2;
        perturbed.rows[2].max_pause_bucket += 5;
        perturbed.rows[3].kept_cycles = perturbed.rows[3].kept_cycles * 2 + 100;
        perturbed.rows[4].top_keep_code = "no-such-code".to_string();
        perturbed.pct_elided += 10.0;
        perturbed.recoveries_attempted += 1;
        perturbed.recoveries_succeeded += 2;
        perturbed.throughput[0].digest ^= 1;
        perturbed.oracle[0].necessary += 1;
        let violations = compare(&perturbed, &suite);
        assert!(violations.len() >= 9, "{violations:?}");
        assert!(
            violations.iter().any(|v| v.contains("kept_cycles")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("top_keep_code")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("static_elided")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("dyn_total")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("max_pause_bucket")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("pct_elided")),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.contains("recoveries_attempted")),
            "{violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| v.contains("recoveries_succeeded")),
            "{violations:?}"
        );
        // Scale mismatch is its own violation class.
        let mut rescaled = suite.clone();
        rescaled.scale = 1.0;
        assert_eq!(compare(&rescaled, &suite).len(), 1);
    }
}
