//! `wbe_tool mcheck` — CLI glue for the interleaving model checker.
//!
//! Drives [`wbe_heap::mcheck`] over the stock scheduler scenarios:
//! explores K seeded (or systematic, preemption-bounded) schedules of
//! N mutators racing the SATB marker, auditing every sweep against the
//! snapshot-reachable set recorded at `begin_marking`. Exit code 0
//! means every explored schedule was sound; 1 means at least one
//! schedule lost a snapshot-live object (the report includes a replay
//! handle that reproduces the exact trace); 2 is a usage error.
//!
//! `--demo-unsound` is the negative control: thread 0's unlink barrier
//! — *not* a pre-null store, so never legally elidable — is skipped,
//! and the checker must catch the resulting lost object.

use std::time::Instant;

use wbe_heap::mcheck::{replay_seed, run_mcheck, CheckerConfig, Replay};
use wbe_heap::sched::run_schedule;
use wbe_heap::{FaultConfig, Scenario, SchedConfig, SchedulePolicy};

/// Parsed `wbe_tool mcheck` options.
#[derive(Clone, Debug)]
pub struct McheckOptions {
    /// Mutator threads per schedule.
    pub threads: usize,
    /// Total schedules to explore (split across scenarios).
    pub schedules: u64,
    /// Base seed for the per-schedule seed stream.
    pub seed: u64,
    /// Workload operations per mutator.
    pub ops: usize,
    /// Restrict to one scenario (default: all three stock scenarios).
    pub scenario: Option<Scenario>,
    /// Systematic (preemption-bounded) exploration instead of random.
    pub systematic: bool,
    /// Preemption bound for systematic exploration.
    pub preempt_bound: usize,
    /// Deliberately elide a non-pre-null barrier (negative control).
    pub demo_unsound: bool,
    /// Compose a PR 2 fault plan derived from this seed into every
    /// schedule.
    pub fault_seed: Option<u64>,
    /// Replay a single failing schedule by its world seed.
    pub replay: Option<u64>,
    /// Replay a schedule from an explicit choice-prefix (hex bytes).
    pub replay_prefix: Option<Vec<u8>>,
    /// Write the GC timeline (safepoint polls/acks, SATB flushes,
    /// epoch transitions, context switches) as Chrome trace-event JSON.
    pub trace_out: Option<String>,
}

impl Default for McheckOptions {
    fn default() -> Self {
        McheckOptions {
            threads: 2,
            schedules: 50,
            seed: 1,
            ops: 40,
            scenario: None,
            systematic: false,
            preempt_bound: 2,
            demo_unsound: false,
            fault_seed: None,
            replay: None,
            replay_prefix: None,
            trace_out: None,
        }
    }
}

/// One-line flag summary for the tool's usage message.
pub const USAGE: &str = "mcheck:  [--threads N] [--schedules K] [--seed S] [--ops N] \
     [--scenario chain|churn|shared] [--systematic] [--preempt-bound B] \
     [--demo-unsound] [--fault-seed S] [--replay SEED | --replay-prefix HEX] \
     [--trace-out trace.json]";

fn parse_num<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>) -> Result<T, String> {
    let raw = it.next().ok_or("flag needs a value")?;
    // Seeds print as hex in replay handles; accept both bases.
    if let Some(hex) = raw.strip_prefix("0x") {
        if let Ok(v) = u64::from_str_radix(hex, 16) {
            if let Ok(t) = v.to_string().parse() {
                return Ok(t);
            }
        }
    }
    raw.parse().map_err(|_| format!("bad number '{raw}'"))
}

/// Parses `mcheck` arguments. `Err` carries the message for stderr;
/// the caller exits 2.
pub fn parse(rest: &[String]) -> Result<McheckOptions, String> {
    let mut o = McheckOptions::default();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => o.threads = parse_num(&mut it)?,
            "--schedules" => o.schedules = parse_num(&mut it)?,
            "--seed" => o.seed = parse_num(&mut it)?,
            "--ops" => o.ops = parse_num(&mut it)?,
            "--scenario" => {
                let name = it.next().ok_or("--scenario needs a name")?;
                o.scenario = Some(name.parse::<Scenario>().map_err(|e| e.to_string())?);
            }
            "--systematic" => o.systematic = true,
            "--preempt-bound" => o.preempt_bound = parse_num(&mut it)?,
            "--demo-unsound" => o.demo_unsound = true,
            "--fault-seed" => o.fault_seed = Some(parse_num(&mut it)?),
            "--replay" => o.replay = Some(parse_num(&mut it)?),
            "--trace-out" => {
                o.trace_out = Some(it.next().ok_or("--trace-out needs a path")?.clone());
            }
            "--replay-prefix" => {
                let hex = it.next().ok_or("--replay-prefix needs hex bytes")?;
                let bytes: Result<Vec<u8>, _> = (0..hex.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(hex.get(i..i + 2).unwrap_or(""), 16))
                    .collect();
                o.replay_prefix = Some(bytes.map_err(|_| format!("bad hex '{hex}'"))?);
            }
            other => return Err(format!("unknown mcheck flag '{other}'")),
        }
    }
    if o.threads == 0 || o.threads > 8 {
        return Err("--threads must be between 1 and 8".into());
    }
    Ok(o)
}

fn sched_config(o: &McheckOptions, scenario: Scenario) -> SchedConfig {
    SchedConfig {
        threads: o.threads,
        ops_per_thread: o.ops,
        scenario,
        demo_unsound: o.demo_unsound,
        fault: o.fault_seed.map(FaultConfig::from_seed),
        ..SchedConfig::default()
    }
}

/// Replays one schedule (by seed or explicit prefix) and prints its
/// digest and violations. Returns the process exit code.
fn run_replay(o: &McheckOptions) -> i32 {
    let scenario = o.scenario.unwrap_or_default();
    let sched = sched_config(o, scenario);
    let outcome = match (&o.replay, &o.replay_prefix) {
        (Some(seed), _) => replay_seed(&sched, *seed),
        (None, Some(prefix)) => run_schedule(
            &sched,
            &SchedulePolicy::Scripted {
                prefix: prefix.clone(),
            },
        ),
        (None, None) => unreachable!("replay mode requires a handle"),
    };
    println!(
        "replay: scenario {scenario}, {} threads, digest {:#018x}",
        o.threads,
        outcome.digest()
    );
    println!(
        "  {} steps, {} cycles, {} preemptions",
        outcome.counters.steps,
        outcome.counters.cycles,
        outcome.preemptions()
    );
    if outcome.violations.is_empty() {
        println!("replayed schedule is sound");
        0
    } else {
        for v in &outcome.violations {
            println!("  violation {v}");
        }
        println!(
            "replayed schedule is UNSOUND ({})",
            outcome.violations.len()
        );
        1
    }
}

/// Runs the model checker per the options and prints the report.
/// Returns the process exit code (0 sound, 1 violations found).
///
/// With `--trace-out`, event tracing is enabled for the run and the
/// collected GC timeline is written as Chrome trace-event JSON.
pub fn run(o: &McheckOptions) -> i32 {
    if o.trace_out.is_some() {
        wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
            tracing: true,
            ..wbe_telemetry::config::current()
        });
    }
    let code = run_inner(o);
    if let Some(path) = &o.trace_out {
        match wbe_telemetry::export::write_chrome_trace(std::path::Path::new(path)) {
            Ok(()) => println!("gc timeline written to {path} (chrome://tracing / Perfetto)"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
        }
    }
    code
}

fn run_inner(o: &McheckOptions) -> i32 {
    if o.replay.is_some() || o.replay_prefix.is_some() {
        return run_replay(o);
    }
    let scenarios: Vec<Scenario> = match o.scenario {
        Some(s) => vec![s],
        None => Scenario::ALL.to_vec(),
    };
    println!(
        "model checker: {} threads, {} schedules over {} scenario(s), seed {}, {}{}",
        o.threads,
        o.schedules,
        scenarios.len(),
        o.seed,
        if o.systematic {
            format!("systematic (preempt bound {})", o.preempt_bound)
        } else {
            "random exploration".into()
        },
        if o.demo_unsound {
            " [demo-unsound negative control]"
        } else {
            ""
        },
    );

    let start = Instant::now();
    let mut explored = 0u64;
    let mut cycles = 0u64;
    let mut steps = 0u64;
    let mut failing = 0usize;
    for (i, &scenario) in scenarios.iter().enumerate() {
        // Split the budget; earlier scenarios absorb the remainder.
        let share = o.schedules / scenarios.len() as u64
            + u64::from((i as u64) < o.schedules % scenarios.len() as u64);
        if share == 0 {
            continue;
        }
        let cfg = CheckerConfig {
            sched: sched_config(o, scenario),
            schedules: share,
            seed: o.seed,
            systematic: o.systematic,
            preempt_bound: o.preempt_bound,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        explored += report.explored;
        cycles += report.cycles;
        steps += report.steps;
        println!(
            "scenario {scenario:<6} {} schedules, {} gc cycles, {} elided stores, {} gated, {} satb logged, {} failing",
            report.explored,
            report.cycles,
            report.totals.elided_stores,
            report.totals.gated_elisions,
            report.totals.satb_logged,
            report.failures.len()
        );
        // Everything that shapes the world must ride along in the
        // reproduce line, or the replayed schedule is a different one.
        let world_flags = format!(
            "--threads {} --ops {} --scenario {scenario}{}{}",
            o.threads,
            o.ops,
            if o.demo_unsound {
                " --demo-unsound"
            } else {
                ""
            },
            match o.fault_seed {
                Some(s) => format!(" --fault-seed {s}"),
                None => String::new(),
            },
        );
        for f in &report.failures {
            failing += 1;
            println!("{f}");
            match &f.replay {
                Replay::Seed(seed) => {
                    println!("  reproduce: wbe_tool mcheck {world_flags} --replay {seed:#x}")
                }
                Replay::Prefix(p) => {
                    let hex: String = p.iter().map(|b| format!("{b:02x}")).collect();
                    println!("  reproduce: wbe_tool mcheck {world_flags} --replay-prefix {hex}");
                }
            }
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "explored {explored} schedules ({cycles} gc cycles, {steps} steps) in {:.2}s — {:.0} schedules/sec",
        start.elapsed().as_secs_f64(),
        explored as f64 / secs
    );
    if failing == 0 {
        println!("mcheck: sound — no snapshot-live object lost under any explored schedule");
        0
    } else {
        println!("mcheck: UNSOUND — {failing} failing schedule(s), replay handles above");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_acceptance_command_line() {
        let o = parse(&args(&[
            "--threads",
            "4",
            "--schedules",
            "200",
            "--seed",
            "1",
        ]))
        .unwrap();
        assert_eq!((o.threads, o.schedules, o.seed), (4, 200, 1));
        assert!(!o.systematic && !o.demo_unsound);
    }

    #[test]
    fn parses_hex_seeds_scenarios_and_prefixes() {
        let o = parse(&args(&[
            "--replay",
            "0xdeadbeef",
            "--scenario",
            "churn",
            "--preempt-bound",
            "3",
        ]))
        .unwrap();
        assert_eq!(o.replay, Some(0xdead_beef));
        assert_eq!(o.scenario, Some(Scenario::Churn));
        assert_eq!(o.preempt_bound, 3);
        let o = parse(&args(&["--replay-prefix", "000102ff"])).unwrap();
        assert_eq!(o.replay_prefix, Some(vec![0, 1, 2, 0xff]));
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse(&args(&["--bogus"])).is_err());
        assert!(parse(&args(&["--threads", "zero"])).is_err());
        assert!(parse(&args(&["--threads", "0"])).is_err());
        assert!(parse(&args(&["--scenario", "nope"])).is_err());
        assert!(parse(&args(&["--replay-prefix", "xy"])).is_err());
    }

    #[test]
    fn stock_run_is_sound_and_demo_unsound_is_caught() {
        let mut o = McheckOptions {
            schedules: 30,
            ops: 16,
            ..McheckOptions::default()
        };
        assert_eq!(run(&o), 0, "stock workloads must be sound");
        o.demo_unsound = true;
        o.scenario = Some(Scenario::Churn);
        o.schedules = 200;
        assert_eq!(run(&o), 1, "negative control must be caught");
    }

    #[test]
    fn replay_of_a_failing_seed_reproduces_the_violation() {
        // Find a failing seed the same way the checker does, then
        // drive the CLI replay path with it.
        let o = McheckOptions {
            demo_unsound: true,
            scenario: Some(Scenario::Churn),
            schedules: 200,
            ops: 16,
            ..McheckOptions::default()
        };
        let cfg = CheckerConfig {
            sched: sched_config(&o, Scenario::Churn),
            schedules: 200,
            seed: o.seed,
            ..CheckerConfig::default()
        };
        let report = run_mcheck(&cfg);
        assert!(!report.sound(), "negative control must fail");
        let Replay::Seed(seed) = report.failures[0].replay else {
            panic!("random exploration replays by seed");
        };
        let replay = McheckOptions {
            replay: Some(seed),
            ..o
        };
        assert_eq!(run(&replay), 1, "replay reproduces the violation");
    }
}
