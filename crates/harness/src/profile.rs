//! Dynamic barrier-cost profiler: joins the interpreter's per-site
//! execution/cycle counters with the elision provenance ledger.
//!
//! The static ledger says *why* each kept barrier stayed; the dynamic
//! counters say *how often it ran* and *what it cost* under the abstract
//! cycle model. Joining the two on `(method, block, index)` attributes
//! every kept-site execution and barrier cycle to the keep-code that
//! blocked its elision — turning "the analysis kept 74% of sites" into
//! "receiver-may-escape costs 61% of remaining barrier cycles; fixing
//! it buys the most headroom".
//!
//! Alongside the attribution, the profiler reports per-phase GC pause
//! percentiles (p50/p90/p99/max, in deterministic work units) from the
//! collector's per-phase histograms, and can gate the run on a pause
//! SLO: `--slo-max-pause N` exits nonzero when any stop-the-world pause
//! exceeded `N` work units.
//!
//! All output is deterministic: the join aggregates through ordered
//! maps, pause sizes are work units (not wall time), and the NDJSON
//! rendering contains no timestamps — running the profiler twice yields
//! byte-identical bytes, which CI checks with a plain `diff`.

use std::collections::BTreeMap;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, GcPolicy, Interp, StoreKind, Value};
use wbe_opt::{OptMode, PipelineConfig};
use wbe_telemetry::json::ObjWriter;
use wbe_telemetry::registry::HistogramSnapshot;

use crate::runner::compile_workload_with;

/// Keep-code used for executed kept sites missing from the ledger.
/// Non-empty counts here mean the join lost provenance — a bug the
/// `join_loses_nothing` test pins to zero.
pub const UNATTRIBUTED: &str = "unattributed";

/// The GC pause phases the profiler reports, as `(label, registry
/// key, stop_the_world)`. STW phases participate in the SLO gate;
/// concurrent/incremental phases are reported but not gated.
pub const PHASES: [(&str, &str, bool); 5] = [
    ("initial-mark", wbe_heap::gc::PHASE_INITIAL_MARK, true),
    ("mark-step", wbe_heap::gc::PHASE_MARK_STEP, false),
    ("remark", wbe_heap::gc::PHASE_REMARK, true),
    ("sweep", wbe_heap::gc::PHASE_SWEEP, false),
    ("emergency", wbe_interp::PAUSE_EMERGENCY, true),
];

/// Profiler configuration (mirrors the `wbe_tool profile` flags).
#[derive(Clone, Debug)]
pub struct ProfileOptions {
    /// Workloads to profile (empty = the standard suite).
    pub workloads: Vec<String>,
    /// How many hottest kept sites to list per workload.
    pub top: usize,
    /// Iteration scale (same meaning as the baseline gate's scale).
    pub scale: f64,
    /// Stop-the-world pause budget in work units; `None` disables the
    /// SLO gate.
    pub slo_max_pause: Option<u64>,
    /// 99th-percentile stop-the-world pause budget in work units;
    /// `None` disables the gate. Tail-focused: one outlier pause can
    /// blow `--slo-max-pause` while p99 stays healthy, and vice versa,
    /// so the two gates compose.
    pub slo_p99_pause: Option<u64>,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            workloads: Vec::new(),
            top: 10,
            scale: crate::baselines::SCALE,
            slo_max_pause: None,
            slo_p99_pause: None,
        }
    }
}

/// Dynamic cost attributed to one keep-code.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeepCodeCost {
    /// The ledger keep-code (first failing elision condition).
    pub code: String,
    /// Distinct executed kept sites carrying this code.
    pub sites: u64,
    /// Barrier executions at those sites.
    pub executions: u64,
    /// Abstract barrier cycles charged at those sites.
    pub cycles: u64,
}

/// One row of the "hottest kept sites" table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSite {
    /// Stable site identity (`method@B<block>[<index>]`).
    pub site: String,
    /// `"field"` or `"array"`.
    pub kind: &'static str,
    /// The keep-code blocking elision at this site.
    pub code: String,
    /// Barrier executions at the site.
    pub executions: u64,
    /// Abstract barrier cycles charged at the site.
    pub cycles: u64,
}

/// Pause percentiles for one GC phase (work units).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhasePercentiles {
    /// Phase label (`initial-mark`, `remark`, …).
    pub phase: &'static str,
    /// Whether the phase is stop-the-world (participates in the SLO).
    pub stw: bool,
    /// Recorded pauses.
    pub count: u64,
    /// Median pause.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile (equals max until a phase has ≥1000 pauses).
    pub p999: u64,
    /// Largest pause.
    pub max: u64,
}

/// The profile of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Workload name.
    pub workload: String,
    /// Total dynamic barrier executions (kept + elided).
    pub barrier_executions: u64,
    /// Executions at statically elided sites (zero barrier cost).
    pub elided_executions: u64,
    /// Executions at kept sites — always the sum of the per-keep-code
    /// execution counts.
    pub kept_executions: u64,
    /// Total abstract barrier cycles charged.
    pub barrier_cycles: u64,
    /// Per-keep-code attribution, most expensive first.
    pub keep_codes: Vec<KeepCodeCost>,
    /// Hottest kept sites by cycles, at most `top` rows.
    pub hot_sites: Vec<HotSite>,
    /// Per-phase pause percentiles, in [`PHASES`] order.
    pub phases: Vec<PhasePercentiles>,
    /// Largest stop-the-world pause observed (work units).
    pub max_stw_pause: u64,
}

/// The whole profiling run: per-workload profiles plus suite rollups.
#[derive(Clone, Debug)]
pub struct SuiteProfile {
    /// One profile per workload, in request order.
    pub workloads: Vec<WorkloadProfile>,
    /// Suite-wide keep-code attribution, most expensive first.
    pub keep_codes: Vec<KeepCodeCost>,
    /// Suite totals.
    pub barrier_executions: u64,
    /// Suite executions at elided sites.
    pub elided_executions: u64,
    /// Suite executions at kept sites.
    pub kept_executions: u64,
    /// Suite barrier cycles.
    pub barrier_cycles: u64,
    /// Suite per-phase percentiles (bucket-merged across workloads).
    pub phases: Vec<PhasePercentiles>,
    /// Largest stop-the-world pause across the suite.
    pub max_stw_pause: u64,
    /// Largest per-phase p99 among the suite's STW phases.
    pub p99_stw_pause: u64,
    /// The max-pause SLO budget the run was gated on, if any.
    pub slo_max_pause: Option<u64>,
    /// The p99-pause SLO budget the run was gated on, if any.
    pub slo_p99_pause: Option<u64>,
}

impl SuiteProfile {
    /// Whether every SLO gate passes (vacuously true without budgets).
    pub fn slo_ok(&self) -> bool {
        self.slo_max_ok() && self.slo_p99_ok()
    }

    /// The `--slo-max-pause` gate alone.
    pub fn slo_max_ok(&self) -> bool {
        self.slo_max_pause
            .is_none_or(|budget| self.max_stw_pause <= budget)
    }

    /// The `--slo-p99-pause` gate alone.
    pub fn slo_p99_ok(&self) -> bool {
        self.slo_p99_pause
            .is_none_or(|budget| self.p99_stw_pause <= budget)
    }

    /// Headroom of one keep-code: the percentage of all charged barrier
    /// cycles that would disappear if the code's sites became elidable.
    pub fn headroom_pct(&self, cost: &KeepCodeCost) -> f64 {
        pct(cost.cycles, self.barrier_cycles)
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

fn merge_hist(into: &mut HistogramSnapshot, h: &HistogramSnapshot) {
    if h.count == 0 {
        return;
    }
    if into.count == 0 {
        *into = h.clone();
        return;
    }
    into.count += h.count;
    into.sum += h.sum;
    into.min = into.min.min(h.min);
    into.max = into.max.max(h.max);
    for (a, b) in into.buckets.iter_mut().zip(&h.buckets) {
        *a += b;
    }
}

fn percentiles(phase: &'static str, stw: bool, h: &HistogramSnapshot) -> PhasePercentiles {
    PhasePercentiles {
        phase,
        stw,
        count: h.count,
        p50: h.quantile(0.50),
        p90: h.quantile(0.90),
        p99: h.quantile(0.99),
        p999: h.quantile(0.999),
        max: h.max,
    }
}

fn empty_hist() -> HistogramSnapshot {
    HistogramSnapshot::from_samples(std::iter::empty())
}

/// Profiles the requested workloads. `Err` names an unknown workload.
pub fn measure(opts: &ProfileOptions) -> Result<SuiteProfile, String> {
    let _guard = crate::registry_lock();
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
        metrics: true,
        tracing: wbe_telemetry::tracing_enabled(),
    });
    let workloads: Vec<wbe_workloads::Workload> = if opts.workloads.is_empty() {
        wbe_workloads::standard_suite()
    } else {
        opts.workloads
            .iter()
            .map(|n| wbe_workloads::by_name(n).ok_or_else(|| format!("unknown workload '{n}'")))
            .collect::<Result<_, _>>()?
    };

    let mut profiles = Vec::new();
    let mut suite_codes: BTreeMap<String, KeepCodeCost> = BTreeMap::new();
    let mut suite_hists: Vec<HistogramSnapshot> = PHASES.iter().map(|_| empty_hist()).collect();
    for w in &workloads {
        let p = profile_workload(w, opts.top, opts.scale, &mut suite_hists)?;
        for c in &p.keep_codes {
            let e = suite_codes
                .entry(c.code.clone())
                .or_insert_with(|| KeepCodeCost {
                    code: c.code.clone(),
                    ..KeepCodeCost::default()
                });
            e.sites += c.sites;
            e.executions += c.executions;
            e.cycles += c.cycles;
        }
        profiles.push(p);
    }

    let phases: Vec<PhasePercentiles> = PHASES
        .iter()
        .zip(&suite_hists)
        .map(|(&(label, _, stw), h)| percentiles(label, stw, h))
        .collect();
    let max_stw_pause = phases
        .iter()
        .filter(|p| p.stw)
        .map(|p| p.max)
        .max()
        .unwrap_or(0);
    let p99_stw_pause = phases
        .iter()
        .filter(|p| p.stw)
        .map(|p| p.p99)
        .max()
        .unwrap_or(0);
    Ok(SuiteProfile {
        barrier_executions: profiles.iter().map(|p| p.barrier_executions).sum(),
        elided_executions: profiles.iter().map(|p| p.elided_executions).sum(),
        kept_executions: profiles.iter().map(|p| p.kept_executions).sum(),
        barrier_cycles: profiles.iter().map(|p| p.barrier_cycles).sum(),
        keep_codes: sort_costs(suite_codes),
        workloads: profiles,
        phases,
        max_stw_pause,
        p99_stw_pause,
        slo_max_pause: opts.slo_max_pause,
        slo_p99_pause: opts.slo_p99_pause,
    })
}

/// Deterministic cost order: cycles desc, then executions desc, then
/// code asc (the tiebreak keeps equal-cost codes stable).
fn sort_costs(map: BTreeMap<String, KeepCodeCost>) -> Vec<KeepCodeCost> {
    let mut v: Vec<KeepCodeCost> = map.into_values().collect();
    v.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then(b.executions.cmp(&a.executions))
            .then(a.code.cmp(&b.code))
    });
    v
}

fn profile_workload(
    w: &wbe_workloads::Workload,
    top: usize,
    scale: f64,
    suite_hists: &mut [HistogramSnapshot],
) -> Result<WorkloadProfile, String> {
    wbe_telemetry::registry::global().reset();
    let cfg = PipelineConfig::new(OptMode::Full, 100).with_ledger();
    let (compiled, elided) = compile_workload_with(w, &cfg);
    let ledger = compiled.ledger.as_ref().expect("full mode builds a ledger");
    let ledger_index = ledger.index();
    let iters = ((w.default_iters as f64 * scale) as i64).max(8);
    let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
    let mut interp = Interp::with_style(&compiled.program, bc, MarkStyle::Satb);
    interp.set_gc_policy(GcPolicy {
        alloc_trigger: 400,
        step_interval: 32,
        step_budget: 4,
    });
    interp
        .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
        .map_err(|t| format!("workload {} trapped: {t}", w.name))?;

    // The join: every executed site is either elided (zero cost) or
    // attributed to the ledger keep-code at its (method, block, index).
    let mut codes: BTreeMap<String, KeepCodeCost> = BTreeMap::new();
    let mut hot: Vec<HotSite> = Vec::new();
    let mut elided_executions = 0u64;
    for (&(mid, addr, kind), stats) in interp.stats.barrier.iter() {
        if elided.contains(mid, addr) {
            elided_executions += stats.executions;
            continue;
        }
        let method = compiled.program.method(mid).name.as_str();
        let (code, site) = match ledger_index.get(&(method, addr.block.index(), addr.index)) {
            Some(rec) => (
                if rec.keep_code.is_empty() {
                    UNATTRIBUTED.to_string()
                } else {
                    rec.keep_code.clone()
                },
                rec.site_key(),
            ),
            None => (
                UNATTRIBUTED.to_string(),
                format!("{method}@B{}[{}]", addr.block.index(), addr.index),
            ),
        };
        let e = codes.entry(code.clone()).or_insert_with(|| KeepCodeCost {
            code: code.clone(),
            ..KeepCodeCost::default()
        });
        e.sites += 1;
        e.executions += stats.executions;
        e.cycles += stats.cycles;
        hot.push(HotSite {
            site,
            kind: match kind {
                StoreKind::Field => "field",
                StoreKind::Array => "array",
            },
            code,
            executions: stats.executions,
            cycles: stats.cycles,
        });
    }
    hot.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then(b.executions.cmp(&a.executions))
            .then(a.site.cmp(&b.site))
    });
    hot.truncate(top);

    let snap = wbe_telemetry::registry::global().snapshot();
    let empty = empty_hist();
    let mut phases = Vec::new();
    for (i, &(label, key, stw)) in PHASES.iter().enumerate() {
        let h = snap.histogram(key).unwrap_or(&empty);
        merge_hist(&mut suite_hists[i], h);
        phases.push(percentiles(label, stw, h));
    }
    let max_stw_pause = phases
        .iter()
        .filter(|p| p.stw)
        .map(|p| p.max)
        .max()
        .unwrap_or(0);

    let (total, _) = interp.stats.barrier.totals();
    let kept_executions = total - elided_executions;
    Ok(WorkloadProfile {
        workload: w.name.to_string(),
        barrier_executions: total,
        elided_executions,
        kept_executions,
        barrier_cycles: interp.stats.barrier.total_cycles(),
        keep_codes: sort_costs(codes),
        hot_sites: hot,
        phases,
        max_stw_pause,
    })
}

/// Renders the profile as NDJSON. One line per record, discriminated by
/// `record`; per-workload records first (in run order), then suite
/// rollups, then the closing `suite` line with the SLO verdict.
/// Contains no timestamps: byte-identical across runs.
pub fn to_ndjson(p: &SuiteProfile) -> String {
    let mut out = String::new();
    let mut line = |f: &dyn Fn(&mut ObjWriter<'_>)| {
        let mut s = String::new();
        let mut w = ObjWriter::new(&mut s);
        f(&mut w);
        w.finish();
        out.push_str(&s);
        out.push('\n');
    };
    for wp in &p.workloads {
        line(&|w| {
            w.field_str("record", "workload")
                .field_str("workload", &wp.workload)
                .field_u64("barrier_executions", wp.barrier_executions)
                .field_u64("elided_executions", wp.elided_executions)
                .field_u64("kept_executions", wp.kept_executions)
                .field_u64("barrier_cycles", wp.barrier_cycles)
                .field_u64("max_stw_pause", wp.max_stw_pause);
        });
        for c in &wp.keep_codes {
            line(&|w| {
                w.field_str("record", "keep_code")
                    .field_str("workload", &wp.workload)
                    .field_str("code", &c.code)
                    .field_u64("sites", c.sites)
                    .field_u64("executions", c.executions)
                    .field_u64("cycles", c.cycles)
                    .field_raw(
                        "pct_of_cycles",
                        &format!("{:.3}", pct(c.cycles, wp.barrier_cycles)),
                    );
            });
        }
        for (rank, h) in wp.hot_sites.iter().enumerate() {
            line(&|w| {
                w.field_str("record", "hot_site")
                    .field_str("workload", &wp.workload)
                    .field_u64("rank", rank as u64 + 1)
                    .field_str("site", &h.site)
                    .field_str("kind", h.kind)
                    .field_str("code", &h.code)
                    .field_u64("executions", h.executions)
                    .field_u64("cycles", h.cycles);
            });
        }
        for ph in &wp.phases {
            line(&|w| {
                emit_phase(w, &wp.workload, ph);
            });
        }
    }
    for c in &p.keep_codes {
        line(&|w| {
            w.field_str("record", "keep_code")
                .field_str("workload", "__suite__")
                .field_str("code", &c.code)
                .field_u64("sites", c.sites)
                .field_u64("executions", c.executions)
                .field_u64("cycles", c.cycles)
                .field_raw("headroom_pct", &format!("{:.3}", p.headroom_pct(c)));
        });
    }
    for ph in &p.phases {
        line(&|w| {
            emit_phase(w, "__suite__", ph);
        });
    }
    line(&|w| {
        w.field_str("record", "suite")
            .field_u64("barrier_executions", p.barrier_executions)
            .field_u64("elided_executions", p.elided_executions)
            .field_u64("kept_executions", p.kept_executions)
            .field_u64("barrier_cycles", p.barrier_cycles)
            .field_u64("max_stw_pause", p.max_stw_pause)
            .field_u64("p99_stw_pause", p.p99_stw_pause);
        match p.slo_max_pause {
            Some(b) => w.field_u64("slo_max_pause", b),
            None => w.field_raw("slo_max_pause", "null"),
        };
        match p.slo_p99_pause {
            Some(b) => w.field_u64("slo_p99_pause", b),
            None => w.field_raw("slo_p99_pause", "null"),
        };
        w.field_bool("slo_ok", p.slo_ok());
    });
    out
}

fn emit_phase(w: &mut ObjWriter<'_>, workload: &str, ph: &PhasePercentiles) {
    w.field_str("record", "phase")
        .field_str("workload", workload)
        .field_str("phase", ph.phase)
        .field_bool("stw", ph.stw)
        .field_u64("count", ph.count)
        .field_u64("samples", ph.count)
        .field_u64("p50", ph.p50)
        .field_u64("p90", ph.p90)
        .field_u64("p99", ph.p99)
        .field_u64("p999", ph.p999)
        .field_u64("max", ph.max);
}

/// Renders the profile as a human-readable report.
pub fn to_text(p: &SuiteProfile) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for wp in &p.workloads {
        let _ = writeln!(
            out,
            "{}: {} barrier executions ({} elided, {} kept), {} barrier cycles, max STW pause {}",
            wp.workload,
            wp.barrier_executions,
            wp.elided_executions,
            wp.kept_executions,
            wp.barrier_cycles,
            wp.max_stw_pause
        );
        if !wp.keep_codes.is_empty() {
            let _ = writeln!(out, "  keep-code attribution:");
            for c in &wp.keep_codes {
                let _ = writeln!(
                    out,
                    "    {:<28} {:>4} sites {:>10} execs {:>10} cycles ({:>6.3}% of cycles)",
                    c.code,
                    c.sites,
                    c.executions,
                    c.cycles,
                    pct(c.cycles, wp.barrier_cycles)
                );
            }
        }
        if !wp.hot_sites.is_empty() {
            let _ = writeln!(out, "  hottest kept sites:");
            for (rank, h) in wp.hot_sites.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    #{:<2} {:<40} {:<5} {:<28} {:>8} execs {:>8} cycles",
                    rank + 1,
                    h.site,
                    h.kind,
                    h.code,
                    h.executions,
                    h.cycles
                );
            }
        }
        let _ = writeln!(out, "  pause percentiles (work units):");
        for ph in &wp.phases {
            let _ = writeln!(
                out,
                "    {:<13}{} count {:>6}  p50 {:>6}  p90 {:>6}  p99 {:>6}  p99.9 {:>6}  max {:>6}",
                ph.phase,
                if ph.stw { " [STW]" } else { "      " },
                ph.count,
                ph.p50,
                ph.p90,
                ph.p99,
                ph.p999,
                ph.max
            );
        }
    }
    let _ = writeln!(
        out,
        "suite: {} barrier executions ({} elided, {} kept), {} barrier cycles",
        p.barrier_executions, p.elided_executions, p.kept_executions, p.barrier_cycles
    );
    let _ = writeln!(out, "  headroom by keep-code:");
    for c in &p.keep_codes {
        let _ = writeln!(
            out,
            "    {:<28} {:>4} sites {:>10} execs {:>10} cycles ({:>6.3}% headroom)",
            c.code,
            c.sites,
            c.executions,
            c.cycles,
            p.headroom_pct(c)
        );
    }
    let _ = writeln!(out, "  suite pause percentiles (work units):");
    for ph in &p.phases {
        let _ = writeln!(
            out,
            "    {:<13}{} count {:>6}  p50 {:>6}  p90 {:>6}  p99 {:>6}  p99.9 {:>6}  max {:>6}",
            ph.phase,
            if ph.stw { " [STW]" } else { "      " },
            ph.count,
            ph.p50,
            ph.p90,
            ph.p99,
            ph.p999,
            ph.max
        );
    }
    match p.slo_max_pause {
        Some(b) if p.slo_max_ok() => {
            let _ = writeln!(
                out,
                "SLO OK: max STW pause {} <= budget {b}",
                p.max_stw_pause
            );
        }
        Some(b) => {
            let _ = writeln!(
                out,
                "SLO VIOLATION: max STW pause {} > budget {b}",
                p.max_stw_pause
            );
        }
        None => {}
    }
    match p.slo_p99_pause {
        Some(b) if p.slo_p99_ok() => {
            let _ = writeln!(
                out,
                "SLO OK: p99 STW pause {} <= budget {b}",
                p.p99_stw_pause
            );
        }
        Some(b) => {
            let _ = writeln!(
                out,
                "SLO VIOLATION: p99 STW pause {} > budget {b}",
                p.p99_stw_pause
            );
        }
        None => {}
    }
    out
}

/// The `wbe_tool profile` driver: measures, renders, and writes or
/// prints the result. Returns the process exit code (0 ok, 1 SLO
/// violation, 2 configuration/run error).
pub fn run_profile(opts: &ProfileOptions, ndjson: bool, out_path: Option<&str>) -> i32 {
    let profile = match measure(opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("profile: {e}");
            return 2;
        }
    };
    let body = if ndjson {
        to_ndjson(&profile)
    } else {
        to_text(&profile)
    };
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
            eprintln!("profile written to {path}");
        }
        None => print!("{body}"),
    }
    let mut violated = false;
    if !profile.slo_max_ok() {
        eprintln!(
            "SLO VIOLATION: max STW pause {} > budget {}",
            profile.max_stw_pause,
            profile.slo_max_pause.unwrap_or(0)
        );
        violated = true;
    }
    if !profile.slo_p99_ok() {
        eprintln!(
            "SLO VIOLATION: p99 STW pause {} > budget {}",
            profile.p99_stw_pause,
            profile.slo_p99_pause.unwrap_or(0)
        );
        violated = true;
    }
    if violated {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> ProfileOptions {
        ProfileOptions {
            scale: 0.05,
            ..ProfileOptions::default()
        }
    }

    #[test]
    fn join_loses_nothing() {
        let p = measure(&small_opts()).unwrap();
        assert_eq!(p.workloads.len(), 6);
        for wp in &p.workloads {
            // Per-keep-code executions sum exactly to the kept total,
            // and kept + elided is the full dynamic count.
            let code_execs: u64 = wp.keep_codes.iter().map(|c| c.executions).sum();
            assert_eq!(code_execs, wp.kept_executions, "{}", wp.workload);
            assert_eq!(
                wp.kept_executions + wp.elided_executions,
                wp.barrier_executions,
                "{}",
                wp.workload
            );
            // Every charged cycle is attributed to some keep-code
            // (elided executions charge nothing).
            let code_cycles: u64 = wp.keep_codes.iter().map(|c| c.cycles).sum();
            assert_eq!(code_cycles, wp.barrier_cycles, "{}", wp.workload);
            // Nothing fell through the ledger join.
            assert!(
                !wp.keep_codes.iter().any(|c| c.code == UNATTRIBUTED),
                "{}: unattributed kept executions",
                wp.workload
            );
            assert!(wp.barrier_cycles > 0, "{}", wp.workload);
        }
        // Suite rollups are the column sums.
        assert_eq!(
            p.barrier_executions,
            p.workloads
                .iter()
                .map(|w| w.barrier_executions)
                .sum::<u64>()
        );
        assert_eq!(
            p.keep_codes.iter().map(|c| c.executions).sum::<u64>(),
            p.kept_executions
        );
        // Headroom over all codes covers 100% of charged cycles.
        let total_headroom: f64 = p.keep_codes.iter().map(|c| p.headroom_pct(c)).sum();
        assert!((total_headroom - 100.0).abs() < 1e-6, "{total_headroom}");
    }

    #[test]
    fn ndjson_is_deterministic_and_parseable() {
        let a = to_ndjson(&measure(&small_opts()).unwrap());
        let b = to_ndjson(&measure(&small_opts()).unwrap());
        assert_eq!(a, b, "profile NDJSON must be byte-identical across runs");
        let mut kinds = std::collections::BTreeSet::new();
        for l in a.lines() {
            let v = wbe_telemetry::json::parse(l).expect("valid JSON");
            kinds.insert(v.get("record").unwrap().as_str().unwrap().to_string());
        }
        for k in ["workload", "keep_code", "hot_site", "phase", "suite"] {
            assert!(kinds.contains(k), "missing record kind {k}");
        }
    }

    #[test]
    fn phases_report_pauses_and_slo_gates_both_ways() {
        // jbb is the only standard-suite workload that allocates enough
        // to trigger the deterministic GC policy at reduced scale.
        let mut opts = small_opts();
        opts.workloads = vec!["jbb".into()];
        let p = measure(&opts).unwrap();
        let wp = &p.workloads[0];
        let remark = wp.phases.iter().find(|ph| ph.phase == "remark").unwrap();
        assert!(remark.count > 0, "deterministic GC policy must pause");
        assert!(remark.max >= remark.p50);
        assert!(p.max_stw_pause > 0);

        // A zero budget is always violated; a huge one never is.
        opts.slo_max_pause = Some(0);
        assert!(!measure(&opts).unwrap().slo_ok());
        opts.slo_max_pause = Some(u64::MAX);
        assert!(measure(&opts).unwrap().slo_ok());
    }

    #[test]
    fn p99_slo_gates_independently_of_max() {
        let mut opts = small_opts();
        opts.workloads = vec!["jbb".into()];
        let p = measure(&opts).unwrap();
        assert!(p.p99_stw_pause > 0, "jbb pauses at this scale");
        assert!(
            p.p99_stw_pause <= p.max_stw_pause,
            "a percentile cannot exceed the max"
        );

        // The p99 gate trips on its own with no max budget set.
        opts.slo_p99_pause = Some(0);
        let violated = measure(&opts).unwrap();
        assert!(!violated.slo_p99_ok());
        assert!(violated.slo_max_ok(), "max gate stays vacuous");
        assert!(!violated.slo_ok());
        // Both budgets generous: the combined gate passes, and the
        // NDJSON carries both budgets and the verdict.
        opts.slo_p99_pause = Some(u64::MAX);
        opts.slo_max_pause = Some(u64::MAX);
        let ok = measure(&opts).unwrap();
        assert!(ok.slo_ok());
        let nd = to_ndjson(&ok);
        assert!(nd.contains("\"p99_stw_pause\""), "{nd}");
        assert!(nd.contains("\"slo_p99_pause\""), "{nd}");
        assert!(nd.contains("\"slo_ok\":true"), "{nd}");
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let opts = ProfileOptions {
            workloads: vec!["nope".into()],
            ..ProfileOptions::default()
        };
        assert!(measure(&opts).is_err());
    }
}
