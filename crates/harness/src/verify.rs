//! Differential fault-injection verification.
//!
//! The robustness argument for barrier elision is end-to-end: for every
//! workload, running with elided barriers must be *observably identical*
//! to running with full barriers, no matter how the collector's schedule
//! is perturbed. This module drives that experiment:
//!
//! 1. compile the workload and take a **baseline** run (full barriers,
//!    no faults);
//! 2. for each of N seeded fault schedules, run both the **elided** and
//!    the **full-barrier** configuration with heap-invariant
//!    verification enabled at every GC cycle boundary;
//! 3. diff the schedule-independent observables (result value,
//!    allocation count, statics-reachable object count) against the
//!    baseline.
//!
//! Any trap (including the [`wbe_interp::Trap::UnsoundElision`] oracle
//! and [`wbe_interp::Trap::InvariantViolation`]) or observable
//! divergence is a reported problem. [`demo_unsound_detection`]
//! deliberately elides a barrier the analysis did *not* prove safe and
//! confirms the same machinery catches it.

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_heap::{debug, FaultPlan, FaultStats};
use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, GcPolicy, Interp, Trap, Value};
use wbe_ir::{MethodId, Program};
use wbe_opt::OptMode;
use wbe_workloads::Workload;

use crate::runner::compile_workload;

/// Options for one verification sweep.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Number of distinct fault schedules per workload.
    pub schedules: u32,
    /// Base seed; schedule `k` uses a mix of this and `k`.
    pub seed: u64,
    /// Iteration scale applied to each workload's default size.
    pub scale: f64,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            schedules: 20,
            seed: 42,
            scale: 0.05,
        }
    }
}

/// Observables that must not depend on the GC schedule: the program's
/// result, how many objects it allocated, and how many objects remain
/// reachable from the static roots afterwards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Observables {
    /// Entry method's return value.
    pub result: Option<Value>,
    /// Objects allocated over the run (failed injected allocations are
    /// not counted, so retries leave this unchanged).
    pub allocations: u64,
    /// Live objects reachable from statics after the run.
    pub reachable: usize,
}

impl fmt::Display for Observables {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.result {
            Some(v) => write!(f, "result={v}")?,
            None => write!(f, "result=void")?,
        }
        write!(
            f,
            ", allocations={}, reachable={}",
            self.allocations, self.reachable
        )
    }
}

/// Verdict for one workload's sweep.
#[derive(Debug)]
pub struct WorkloadVerdict {
    /// Workload name.
    pub name: &'static str,
    /// Fault schedules exercised.
    pub schedules: u32,
    /// Sites elided by the analysis.
    pub elided_sites: usize,
    /// Faults injected across all schedule runs.
    pub faults_injected: u64,
    /// Emergency full pauses taken across all schedule runs.
    pub emergency_pauses: u64,
    /// GC cycles completed across all schedule runs.
    pub gc_cycles: u64,
    /// Everything that went wrong (empty means the workload passed).
    pub problems: Vec<String>,
}

impl WorkloadVerdict {
    /// Did every schedule run clean and agree with the baseline?
    pub fn passed(&self) -> bool {
        self.problems.is_empty()
    }
}

impl fmt::Display for WorkloadVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {}: {} schedules, {} elided sites, {} faults injected, \
             {} emergency pauses, {} gc cycles",
            self.name,
            if self.passed() { "PASS" } else { "FAIL" },
            self.schedules,
            self.elided_sites,
            self.faults_injected,
            self.emergency_pauses,
            self.gc_cycles
        )?;
        for p in &self.problems {
            write!(f, "\n  problem: {p}")?;
        }
        Ok(())
    }
}

/// Derives schedule `k`'s seed from the base seed (SplitMix64
/// finalizer, so neighbouring `k` give unrelated streams).
fn mix_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ k.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The GC policy used for every verification run: aggressive enough
/// that several cycles complete even at small scales.
fn verify_policy() -> GcPolicy {
    GcPolicy {
        alloc_trigger: 200,
        step_interval: 16,
        step_budget: 4,
    }
}

struct RunOutcome {
    obs: Observables,
    fault: Option<FaultStats>,
    digest: Option<u64>,
    emergency_pauses: u64,
    gc_cycles: u64,
}

fn run_one(
    program: &Program,
    entry: MethodId,
    iters: i64,
    fuel: u64,
    elided: ElidedBarriers,
    fault_seed: Option<u64>,
) -> Result<RunOutcome, Trap> {
    let config = BarrierConfig::with_elision(BarrierMode::Checked, elided);
    let mut interp = Interp::with_style(program, config, MarkStyle::Satb);
    interp.set_gc_policy(verify_policy());
    if let Some(seed) = fault_seed {
        interp.set_fault_plan(FaultPlan::from_seed(seed));
    }
    interp.set_verify_invariants(true);
    let result = interp.run(entry, &[Value::Int(iters)], fuel)?;
    let roots = interp.heap.static_roots();
    let graph = debug::graph_stats(&interp.heap, &roots);
    Ok(RunOutcome {
        obs: Observables {
            result,
            allocations: interp.heap.stats.allocations,
            reachable: graph.reachable,
        },
        fault: interp.heap.fault.as_ref().map(|p| p.stats),
        digest: interp.heap.fault.as_ref().map(|p| p.digest()),
        emergency_pauses: interp.stats.emergency_pauses,
        gc_cycles: interp.stats.gc_cycles,
    })
}

/// Runs the full differential sweep for one workload.
pub fn verify_workload(w: &Workload, opts: &VerifyOptions) -> WorkloadVerdict {
    let (compiled, elided) = compile_workload(w, OptMode::Full, 100);
    let iters = ((w.default_iters as f64 * opts.scale) as i64).max(8);
    let fuel = w.fuel_for(iters);
    let mut verdict = WorkloadVerdict {
        name: w.name,
        schedules: opts.schedules,
        elided_sites: elided.len(),
        faults_injected: 0,
        emergency_pauses: 0,
        gc_cycles: 0,
        problems: Vec::new(),
    };

    let baseline = match run_one(
        &compiled.program,
        w.entry,
        iters,
        fuel,
        ElidedBarriers::new(),
        None,
    ) {
        Ok(out) => out,
        Err(t) => {
            verdict.problems.push(format!("baseline run trapped: {t}"));
            return verdict;
        }
    };

    let mut first_digest: Option<u64> = None;
    for k in 0..opts.schedules {
        let seed = mix_seed(opts.seed, u64::from(k));
        for (label, el) in [
            ("elided", elided.clone()),
            ("full-barrier", ElidedBarriers::new()),
        ] {
            match run_one(&compiled.program, w.entry, iters, fuel, el, Some(seed)) {
                Ok(out) => {
                    if out.obs != baseline.obs {
                        verdict.problems.push(format!(
                            "schedule {k} (seed {seed:#018x}) {label}: observables diverged: \
                             [{}] vs baseline [{}]",
                            out.obs, baseline.obs
                        ));
                    }
                    verdict.faults_injected += out.fault.map_or(0, |f| f.injected());
                    verdict.emergency_pauses += out.emergency_pauses;
                    verdict.gc_cycles += out.gc_cycles;
                    if k == 0 && label == "elided" {
                        first_digest = out.digest;
                    }
                }
                Err(t) => verdict.problems.push(format!(
                    "schedule {k} (seed {seed:#018x}) {label}: trapped: {t}"
                )),
            }
        }
    }

    // Seed reproducibility: replaying schedule 0 must yield the exact
    // same decision stream (digest covers every decision taken).
    if let Some(d0) = first_digest {
        let seed = mix_seed(opts.seed, 0);
        match run_one(&compiled.program, w.entry, iters, fuel, elided, Some(seed)) {
            Ok(out) if out.digest != Some(d0) => verdict.problems.push(format!(
                "seed {seed:#018x} did not reproduce its fault schedule \
                 (digest {:?} vs {d0:#x})",
                out.digest
            )),
            Ok(_) => {}
            Err(t) => verdict
                .problems
                .push(format!("schedule 0 replay trapped: {t}")),
        }
    }
    verdict
}

/// Outcome of [`demo_unsound_detection`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DemoOutcome {
    /// The injected unsound elision was caught (trap or divergence).
    Detected(String),
    /// Every executed store on this input was pre-null, so no elision
    /// can be dynamically unsound — nothing to corrupt.
    NoCandidate(String),
    /// The unsound elision slipped through: a harness bug.
    Missed(String),
}

/// Deliberately elides a barrier the analysis did **not** prove safe —
/// the most-executed site that observes non-null pre-values under full
/// barriers — and runs the sweep expecting detection.
pub fn demo_unsound_detection(w: &Workload, opts: &VerifyOptions) -> DemoOutcome {
    let (compiled, sound) = compile_workload(w, OptMode::Full, 100);
    let iters = ((w.default_iters as f64 * opts.scale) as i64).max(8);
    let fuel = w.fuel_for(iters);

    // Profile under full barriers to find a site whose pre-value is
    // sometimes non-null — exactly what a sound elision must never touch.
    let mut profiler = Interp::with_style(
        &compiled.program,
        BarrierConfig::new(BarrierMode::Checked),
        MarkStyle::Satb,
    );
    profiler.set_gc_policy(verify_policy());
    if let Err(t) = profiler.run(w.entry, &[Value::Int(iters)], fuel) {
        return DemoOutcome::Missed(format!("{}: profiling run trapped: {t}", w.name));
    }
    let target = profiler
        .stats
        .barrier
        .iter()
        .filter(|((m, a, _), s)| s.pre_null < s.executions && !sound.contains(*m, *a))
        .max_by_key(|(_, s)| s.executions - s.pre_null)
        .map(|((m, a, _), _)| (*m, *a));
    let Some((m, a)) = target else {
        return DemoOutcome::NoCandidate(format!(
            "{}: every executed store is pre-null on this input; \
             no elision can be dynamically unsound",
            w.name
        ));
    };

    let mut unsound = sound.clone();
    unsound.insert(m, a);
    let baseline = match run_one(
        &compiled.program,
        w.entry,
        iters,
        fuel,
        ElidedBarriers::new(),
        None,
    ) {
        Ok(out) => out,
        Err(t) => return DemoOutcome::Missed(format!("{}: baseline run trapped: {t}", w.name)),
    };
    for k in 0..opts.schedules.max(1) {
        let seed = mix_seed(opts.seed, u64::from(k));
        match run_one(
            &compiled.program,
            w.entry,
            iters,
            fuel,
            unsound.clone(),
            Some(seed),
        ) {
            Err(t) => {
                return DemoOutcome::Detected(format!(
                    "{}: unsound elision of {m} {a} detected on schedule {k}: {t}",
                    w.name
                ))
            }
            Ok(out) if out.obs != baseline.obs => {
                return DemoOutcome::Detected(format!(
                    "{}: unsound elision of {m} {a} detected on schedule {k}: \
                     observables diverged ([{}] vs [{}])",
                    w.name, out.obs, baseline.obs
                ))
            }
            Ok(_) => {}
        }
    }
    DemoOutcome::Missed(format!(
        "{}: unsound elision of {m} {a} was NOT detected over {} schedules",
        w.name,
        opts.schedules.max(1)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_workloads::by_name;

    fn quick_opts() -> VerifyOptions {
        VerifyOptions {
            schedules: 3,
            seed: 42,
            scale: 0.02,
        }
    }

    #[test]
    fn jess_survives_fault_schedules_with_invariants_verified() {
        let w = by_name("jess").unwrap();
        let v = verify_workload(&w, &quick_opts());
        assert!(v.passed(), "{v}");
        assert!(v.elided_sites > 0, "elision actually exercised");
        assert!(v.faults_injected > 0, "faults actually injected");
    }

    #[test]
    fn db_survives_fault_schedules() {
        let w = by_name("db").unwrap();
        let v = verify_workload(&w, &quick_opts());
        assert!(v.passed(), "{v}");
    }

    #[test]
    fn unsound_elision_is_detected() {
        let w = by_name("db").unwrap();
        match demo_unsound_detection(&w, &quick_opts()) {
            DemoOutcome::Detected(msg) => assert!(msg.contains("detected"), "{msg}"),
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn observables_display() {
        let o = Observables {
            result: None,
            allocations: 3,
            reachable: 1,
        };
        assert!(o.to_string().contains("void"));
    }
}
