//! Figure 3: effect of the analyses on compiled code size.
//!
//! At inline limit 100, reports the modeled code size for modes B/F/A
//! per benchmark. The paper's finding to reproduce: elision shrinks
//! compiled code by roughly 2–6%, with the array analysis contributing
//! less statically than dynamically (array barriers sit in loops).

use std::fmt;

use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

use crate::runner::compile_workload;

/// One benchmark's code sizes under the three modes.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Code size with no elision (bytes).
    pub base: usize,
    /// Code size with field analysis.
    pub field: usize,
    /// Code size with field + array analyses.
    pub full: usize,
}

impl Fig3Row {
    /// Percentage saved by the full analyses.
    pub fn pct_saved(&self) -> f64 {
        100.0 * (self.base - self.full) as f64 / self.base as f64
    }
}

/// The whole figure.
#[derive(Clone, Debug, Default)]
pub struct Fig3 {
    /// Rows in the paper's order.
    pub rows: Vec<Fig3Row>,
}

/// Runs the experiment at inline limit 100.
pub fn run() -> Fig3 {
    let mut rows = Vec::new();
    for w in standard_suite() {
        let (b, _) = compile_workload(&w, OptMode::Baseline, 100);
        let (f, _) = compile_workload(&w, OptMode::FieldOnly, 100);
        let (a, _) = compile_workload(&w, OptMode::Full, 100);
        rows.push(Fig3Row {
            name: w.name,
            base: b.code_size(),
            field: f.code_size(),
            full: a.code_size(),
        });
    }
    Fig3 { rows }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>9} {:>9} {:>9} {:>8}",
            "benchmark", "B bytes", "F bytes", "A bytes", "% saved"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>9} {:>9} {:>9} {:>8.1}",
                r.name,
                r.base,
                r.field,
                r.full,
                r.pct_saved()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elision_shrinks_code_modestly() {
        let fig = run();
        assert_eq!(fig.rows.len(), 6);
        for r in &fig.rows {
            assert!(r.full <= r.field && r.field <= r.base, "{r:?}");
            let saved = r.pct_saved();
            assert!(
                saved > 0.5 && saved < 15.0,
                "{}: saving {saved:.1}% outside the plausible band",
                r.name
            );
        }
        // Static array impact is smaller than field impact overall:
        // the F→A step saves less than the B→F step across the suite.
        let bf: usize = fig.rows.iter().map(|r| r.base - r.field).sum();
        let fa: usize = fig.rows.iter().map(|r| r.field - r.full).sum();
        assert!(bf > fa, "B→F saved {bf}, F→A saved {fa}");
    }
}
