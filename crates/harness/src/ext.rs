//! §4.3 extension experiment: additional barriers eliminated by the
//! null-or-same analysis on top of the pre-null analyses.
//!
//! The paper measured (by inspection) that null-or-same stores account
//! for 15% of executed barriers in javac, 14% in jack, and 4% in jbb.
//! This experiment runs the automated analysis and reports the dynamic
//! elimination rate with and without it.

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, Interp, Value};
use wbe_opt::{OptMode, PipelineConfig};
use wbe_workloads::standard_suite;

use crate::runner::compile_workload_with;

/// One row: elimination with pre-null only vs with null-or-same added.
#[derive(Clone, Debug)]
pub struct ExtRow {
    /// Benchmark name.
    pub name: &'static str,
    /// % of dynamic barriers eliminated by the pre-null analyses.
    pub pct_pre_null: f64,
    /// % eliminated with the §4.3 null-or-same analysis added.
    pub pct_with_nos: f64,
}

impl ExtRow {
    /// The §4.3 gain in percentage points.
    pub fn gain(&self) -> f64 {
        self.pct_with_nos - self.pct_pre_null
    }
}

/// The experiment result.
#[derive(Clone, Debug, Default)]
pub struct ExtReport {
    /// Rows in the paper's benchmark order.
    pub rows: Vec<ExtRow>,
}

/// Runs the experiment at `scale`.
pub fn run(scale: f64) -> ExtReport {
    let mut rows = Vec::new();
    for w in standard_suite() {
        let iters = ((w.default_iters as f64 * scale) as i64).max(16);
        let cfg = PipelineConfig::new(OptMode::Full, 100).with_null_or_same();
        let (compiled, elided) = compile_workload_with(&w, &cfg);
        let config = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
        let mut interp = Interp::with_style(&compiled.program, config, MarkStyle::Satb);
        interp
            .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
            .unwrap_or_else(|t| panic!("{} trapped: {t}", w.name));
        // Summaries against the combined set and the pre-null-only set.
        let with_nos = interp.stats.barrier.summarize(&elided);
        let pre_null_only = compiled.elided_sites().into_iter().collect();
        let pre = interp.stats.barrier.summarize(&pre_null_only);
        rows.push(ExtRow {
            name: w.name,
            pct_pre_null: pre.pct_eliminated(),
            pct_with_nos: with_nos.pct_eliminated(),
        });
    }
    ExtReport { rows }
}

impl fmt::Display for ExtReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>12} {:>14} {:>9}",
            "benchmark", "pre-null %", "+null-or-same", "gain (pp)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>12.1} {:>14.1} {:>9.1}",
                r.name,
                r.pct_pre_null,
                r.pct_with_nos,
                r.gain()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_or_same_gains_match_the_papers_observations() {
        let rep = run(0.1);
        let by: std::collections::HashMap<_, _> =
            rep.rows.iter().map(|r| (r.name, r.clone())).collect();
        // The §4.3 stores live in javac, jack, and jbb; the gains are
        // roughly one store per iteration of each mix.
        assert!(by["javac"].gain() > 8.0, "{}", by["javac"].gain());
        assert!(by["jack"].gain() > 8.0, "{}", by["jack"].gain());
        assert!(by["jbb"].gain() > 3.0, "{}", by["jbb"].gain());
        // jess/db/mtrt have no such idiom: no change.
        for name in ["jess", "db", "mtrt"] {
            assert!(by[name].gain().abs() < 1e-9, "{name}: {}", by[name].gain());
        }
        // Adding an analysis never reduces elimination.
        for r in &rep.rows {
            assert!(r.pct_with_nos >= r.pct_pre_null - 1e-9);
        }
    }
}
