//! Pause comparison: SATB vs incremental-update remark work.
//!
//! Supports the paper's motivating claim (§1, §4.5): "pause times
//! necessary to complete SATB marking are sometimes more than an order
//! of magnitude smaller than corresponding incremental update pauses".
//! Objects allocated during SATB marking are allocated black and never
//! examined; the incremental-update remark must rescan every dirty
//! object, including everything allocated and linked during the cycle.
//!
//! We run the allocation-heavy `jess` workload under both marker styles
//! with the same deterministic GC policy and compare the remark pauses.
//! Each row's distribution is summarized through a telemetry log₂
//! histogram ([`HistogramSnapshot::from_samples`]), so the p50/p99
//! columns here use the same quantile estimator as every exported
//! pause histogram.

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierMode, GcPolicy};
use wbe_opt::OptMode;
use wbe_telemetry::registry::HistogramSnapshot;
use wbe_workloads::by_name;

use crate::runner::run_workload;

/// Pause statistics for one marker style.
#[derive(Clone, Debug)]
pub struct PauseRow {
    /// Style label.
    pub style: &'static str,
    /// Completed GC cycles.
    pub cycles: u64,
    /// Mean remark pause (work units).
    pub mean_pause: f64,
    /// Median remark pause (work units, histogram estimate).
    pub p50_pause: u64,
    /// 99th-percentile remark pause (work units, histogram estimate).
    pub p99_pause: u64,
    /// 99.9th-percentile remark pause (work units, histogram estimate).
    pub p999_pause: u64,
    /// Pause samples behind the percentile estimates (one per remark).
    pub samples: u64,
    /// Max remark pause (work units).
    pub max_pause: usize,
}

/// The experiment result.
#[derive(Clone, Debug)]
pub struct PauseReport {
    /// SATB then incremental update.
    pub rows: Vec<PauseRow>,
}

impl PauseReport {
    /// Ratio of incremental-update to SATB mean pause.
    pub fn ratio(&self) -> f64 {
        let satb = self.rows[0].mean_pause.max(1e-9);
        self.rows[1].mean_pause / satb
    }
}

/// Runs the experiment; `scale` shrinks the workload.
pub fn run(scale: f64) -> PauseReport {
    let policy = GcPolicy {
        alloc_trigger: 400,
        step_interval: 32,
        step_budget: 4,
    };
    let mut rows = Vec::new();
    for (label, style) in [
        ("satb", MarkStyle::Satb),
        ("incremental-update", MarkStyle::IncrementalUpdate),
    ] {
        let w = by_name("jess").expect("jess exists");
        let iters = ((w.default_iters as f64 * scale) as i64).max(512);
        let r = run_workload(
            &w,
            OptMode::Baseline,
            100,
            iters,
            BarrierMode::Checked,
            style,
            Some(policy),
        );
        let pauses = &r.stats.pauses;
        let hist = HistogramSnapshot::from_samples(pauses.iter().map(|p| p.work_units() as u64));
        rows.push(PauseRow {
            style: label,
            cycles: r.stats.gc_cycles,
            mean_pause: if hist.count == 0 {
                0.0
            } else {
                hist.sum as f64 / hist.count as f64
            },
            p50_pause: hist.quantile(0.50),
            p99_pause: hist.quantile(0.99),
            p999_pause: hist.quantile(0.999),
            samples: hist.count,
            max_pause: hist.max as usize,
        });
    }
    PauseReport { rows }
}

impl fmt::Display for PauseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<20} {:>7} {:>7} {:>12} {:>7} {:>7} {:>7} {:>11}",
            "marker style", "cycles", "samples", "mean pause", "p50", "p99", "p99.9", "max pause"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<20} {:>7} {:>7} {:>12.1} {:>7} {:>7} {:>7} {:>11}",
                r.style,
                r.cycles,
                r.samples,
                r.mean_pause,
                r.p50_pause,
                r.p99_pause,
                r.p999_pause,
                r.max_pause
            )?;
        }
        writeln!(f, "incremental/satb mean-pause ratio: {:.1}x", self.ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satb_pauses_are_an_order_of_magnitude_smaller() {
        let report = run(0.5);
        assert!(report.rows[0].cycles > 0, "SATB cycles completed");
        assert!(report.rows[1].cycles > 0, "IU cycles completed");
        assert!(
            report.ratio() >= 10.0,
            "expected ≥10x pause gap, got {:.1}x ({report})",
            report.ratio()
        );
    }

    #[test]
    fn percentile_columns_are_ordered_and_bounded() {
        let report = run(0.5);
        for r in &report.rows {
            assert!(r.p50_pause <= r.p99_pause, "{r:?}");
            assert!(r.p99_pause <= r.max_pause as u64, "{r:?}");
            assert!(r.max_pause > 0, "{r:?}");
        }
        // The IU percentile gap mirrors the mean gap: its remark rescans
        // dirty objects, so even its median dwarfs SATB's max.
        assert!(
            report.rows[1].p50_pause > report.rows[0].max_pause as u64,
            "{report}"
        );
    }
}
