#![warn(missing_docs)]

//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation section.
//!
//! | id | paper artifact | module |
//! |----|----------------|--------|
//! | T1 | Table 1 (dynamic elimination) | [`table1`] |
//! | F2 | Figure 2 (inline limit sweep) | [`fig2`] |
//! | F3 | Figure 3 (code size)          | [`fig3`] |
//! | T2 | Table 2 (jbb throughput)      | [`table2`] |
//! | P0 | §1/§4.5 pause claim           | [`pause`] |
//! | X1 | §4.3 null-or-same extension   | [`ext`]   |
//! | X2 | §4.3 rearrangement protocol   | [`rearrange_exp`] |
//! | X3 | §6 framework clients          | [`clients`] |
//! | S1 | §4.2 static counts (TR)       | [`static_counts`] |
//! | X4 | all techniques stacked        | [`combined`] |
//!
//! The `experiments` binary prints any of them:
//! `cargo run -p wbe-harness --bin experiments -- table1`.
//!
//! Beyond the experiments, [`ledger`] backs the `wbe_tool explain`,
//! `ledger`, and `ledger-diff` commands, [`baselines`] backs
//! `wbe_tool bench --check-baselines`, and [`mcheck`] the interleaving
//! model-checker CLI.

/// Serializes measurements that reset the global telemetry registry
/// ([`baselines::measure`], [`profile::measure`]): the default test
/// runner is multi-threaded, and a concurrent reset mid-run would
/// clobber another measurement's histograms.
pub(crate) fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

pub mod baselines;
pub mod clients;
pub mod combined;
pub mod ext;
pub mod fig2;
pub mod fig3;
pub mod ledger;
pub mod mcheck;
pub mod oracle;
pub mod pause;
pub mod profile;
pub mod rearrange_exp;
pub mod runner;
pub mod serve;
pub mod soak;
pub mod static_counts;
pub mod table1;
pub mod table2;
pub mod throughput;
pub mod verify;
