//! §4.3 array-rearrangement experiment.
//!
//! Runs each workload with the shift/swap recognizer's plan active and
//! aggressive concurrent marking: member stores skip their SATB logs
//! (checking the array tracing state instead), and the run's soundness
//! is established by the live collector — a lost object would surface
//! as a dangling reference.
//!
//! §4.3 motivates this with `db` (the swap idiom covers >70% of its
//! stores) and `jbb` (shift-down deletion loops).

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{
    BarrierConfig, BarrierMode, GcPolicy, Interp, RearrangeRole, RearrangeSites, Value,
};
use wbe_opt::{plan_program, OptMode, PipelineConfig, ShiftRole};
use wbe_workloads::standard_suite;

/// One workload's protocol results.
#[derive(Clone, Debug)]
pub struct RearrangeRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Recognized groups (swaps + shifts).
    pub groups: usize,
    /// Barrier executions whose log was skipped by the protocol.
    pub skipped: u64,
    /// Total barrier executions.
    pub total: u64,
    /// Conservative retraces scheduled due to marker interference.
    pub retraces: u64,
}

impl RearrangeRow {
    /// Percentage of barrier executions under the protocol.
    pub fn pct_skipped(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.skipped as f64 / self.total as f64
        }
    }
}

/// The experiment result.
#[derive(Clone, Debug, Default)]
pub struct RearrangeReport {
    /// Rows in suite order.
    pub rows: Vec<RearrangeRow>,
}

/// Runs the experiment at `scale`.
pub fn run(scale: f64) -> RearrangeReport {
    let mut rows = Vec::new();
    for w in standard_suite() {
        let iters = ((w.default_iters as f64 * scale) as i64).max(64);
        let compiled = wbe_opt::compile(&w.program, &PipelineConfig::new(OptMode::Baseline, 100));
        let plan = plan_program(&compiled.program);
        let mut sites = RearrangeSites::new();
        for (m, a, role) in plan.iter() {
            let r = match role {
                ShiftRole::First => RearrangeRole::First,
                ShiftRole::Member => RearrangeRole::Member,
            };
            sites.insert(m, a, r);
        }
        let config = BarrierConfig::new(BarrierMode::Checked).with_rearrange(sites);
        let mut interp = Interp::with_style(&compiled.program, config, MarkStyle::Satb);
        interp.set_gc_policy(GcPolicy {
            alloc_trigger: 200,
            step_interval: 16,
            step_budget: 4,
        });
        interp
            .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
            .unwrap_or_else(|t| panic!("{} trapped under the protocol: {t}", w.name));
        let summary = interp
            .stats
            .barrier
            .summarize(&wbe_interp::ElidedBarriers::new());
        rows.push(RearrangeRow {
            name: w.name,
            groups: plan.group_count(),
            skipped: interp.stats.rearrange_skipped,
            total: summary.total(),
            retraces: interp.stats.retraces_scheduled,
        });
    }
    RearrangeReport { rows }
}

impl fmt::Display for RearrangeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>7} {:>12} {:>10} {:>9}",
            "benchmark", "groups", "logs skipped", "% of total", "retraces"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>7} {:>12} {:>10.1} {:>9}",
                r.name,
                r.groups,
                r.skipped,
                r.pct_skipped(),
                r.retraces
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_covers_db_swaps_and_jbb_shifts() {
        let rep = run(0.1);
        let by: std::collections::HashMap<_, _> =
            rep.rows.iter().map(|r| (r.name, r.clone())).collect();
        // db: three swap triples per iteration → 6 of its 9 per-iter
        // stores run under the protocol (≈ the paper's "more than 70%
        // of stores" being the swap idiom, of array stores).
        assert_eq!(by["db"].groups, 3, "{:?}", by["db"]);
        assert!(by["db"].pct_skipped() > 50.0, "{}", by["db"].pct_skipped());
        // jbb: one shift-down group, two member stores per iteration.
        assert!(by["jbb"].groups >= 1);
        assert!(by["jbb"].skipped > 0);
        // Workloads without the idioms are untouched.
        for name in ["jess", "mtrt", "jack"] {
            assert_eq!(by[name].skipped, 0, "{name}");
        }
    }
}
