//! Table 2: jbb end-to-end barrier cost.
//!
//! Three modes, as in the paper (§4.5):
//! * **no-barrier** — all SATB barriers removed (the heap is large
//!   enough that no marking runs);
//! * **always-log** — the marking check is elided and non-null
//!   pre-values are always logged, simulating fully incrementalized
//!   marking;
//! * **always-log-elim** — always-log plus static barrier elision.
//!
//! The paper reports throughputs 29968 / 29218 / 29503 (1.000 / 0.975 /
//! 0.984): barriers cost ~2.5% and elision wins back the eliminated
//! fraction of that cost. Our throughput is transactions per modeled
//! second at 750 MHz (the paper's UltraSPARC III clock).

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierMode, GcPolicy};
use wbe_opt::OptMode;
use wbe_workloads::by_name;

use crate::runner::run_workload;

/// Modeled clock rate (the paper's 750 MHz UltraSPARC III).
pub const CLOCK_HZ: f64 = 750.0e6;

/// One Table 2 row.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Mode label.
    pub mode: &'static str,
    /// Transactions (iterations) per modeled second.
    pub throughput: f64,
    /// Ratio to the no-barrier row.
    pub relative: f64,
}

/// The whole table.
#[derive(Clone, Debug, Default)]
pub struct Table2 {
    /// no-barrier / always-log / always-log-elim.
    pub rows: Vec<Table2Row>,
}

/// Runs the experiment on the jbb workload. Each configuration is run
/// `runs` times and averaged (the interpreter is deterministic, so this
/// mirrors the paper's 5-run averaging without adding information).
pub fn run(scale: f64, runs: usize) -> Table2 {
    let w = by_name("jbb").expect("jbb exists");
    let iters = ((w.default_iters as f64 * scale) as i64).max(64);
    let mut rows = Vec::new();
    // The paper's three rows, plus a fourth showing §4.5's first
    // observation: under the ordinary *checked* barrier with marking
    // active only part of the time, barriers cost far less than in
    // always-log mode (which simulates fully incrementalized marking).
    let configs: [(&'static str, BarrierMode, bool, bool); 4] = [
        ("no-barrier", BarrierMode::None, false, false),
        ("checked+gc", BarrierMode::Checked, false, true),
        ("always-log", BarrierMode::AlwaysLog, false, false),
        ("always-log-elim", BarrierMode::AlwaysLog, true, false),
    ];
    for (label, mode, elide, gc) in configs {
        let mut tput = 0.0;
        for _ in 0..runs.max(1) {
            let opt_mode = if elide {
                OptMode::Full
            } else {
                OptMode::Baseline
            };
            let policy = gc.then_some(GcPolicy {
                alloc_trigger: 2_000,
                step_interval: 64,
                step_budget: 16,
            });
            let r = run_workload(&w, opt_mode, 100, iters, mode, MarkStyle::Satb, policy);
            let seconds = r.stats.cycles as f64 / CLOCK_HZ;
            tput += iters as f64 / seconds;
        }
        rows.push(Table2Row {
            mode: label,
            throughput: tput / runs.max(1) as f64,
            relative: 0.0,
        });
    }
    let base = rows[0].throughput;
    for r in &mut rows {
        r.relative = r.throughput / base;
    }
    Table2 { rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<16} {:>12} {:>10}",
            "Barrier mode", "Throughput", "Relative"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>12.0} {:>10.3}",
                r.mode, r.throughput, r.relative
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_cost_and_elision_recovery() {
        let t = run(0.02, 1);
        assert_eq!(t.rows.len(), 4);
        let (none, checked, log, elim) = (&t.rows[0], &t.rows[1], &t.rows[2], &t.rows[3]);
        // §4.5: the checked barrier with occasional marking costs much
        // less than always-log (and less than no-barrier costs nothing).
        assert!(checked.relative < 1.0);
        assert!(
            checked.relative > log.relative,
            "checked {} vs always-log {}",
            checked.relative,
            log.relative
        );
        assert_eq!(none.relative, 1.0);
        // Barriers cost a modest fraction of throughput. (The paper saw
        // 2.5%; our synthetic jbb is more store-dense, so the band is
        // wider — the *ordering* and the recovery shape are the claim.)
        assert!(
            log.relative < 0.99 && log.relative > 0.80,
            "{}",
            log.relative
        );
        // Elision recovers part of the cost but not all of it.
        assert!(
            elim.relative > log.relative,
            "{} vs {}",
            elim.relative,
            log.relative
        );
        assert!(elim.relative < 1.0);
        // The recovered share of the barrier gap is loosely proportional
        // to the eliminated fraction of barriers (~25% for jbb).
        let recovery = (elim.relative - log.relative) / (1.0 - log.relative);
        assert!((0.02..0.6).contains(&recovery), "recovery {recovery}");
    }
}
