//! Table 1: dynamic barrier-elimination results per benchmark.
//!
//! Columns mirror the paper: total barrier executions, % eliminated,
//! % at potentially-pre-null sites, field/array split, and per-kind
//! elimination rates. Totals here are in thousands (the synthetic
//! workloads scale the paper's ×10⁶ column down ×1000 by default).

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::BarrierMode;
use wbe_opt::OptMode;
use wbe_workloads::standard_suite;

use crate::runner::run_workload;

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Total barrier executions.
    pub total: u64,
    /// Percentage eliminated by the analyses.
    pub pct_elim: f64,
    /// Percentage at potentially pre-null store sites (dynamic upper
    /// bound for pre-null techniques).
    pub pct_potential: f64,
    /// Field share of executions (the paper's "Field/Array" column is
    /// `field/100-field`).
    pub pct_field: f64,
    /// Percentage of field-store executions eliminated.
    pub field_elim: f64,
    /// Percentage of array-store executions eliminated.
    pub array_elim: f64,
}

/// The whole table.
#[derive(Clone, Debug, Default)]
pub struct Table1 {
    /// Rows in the paper's order.
    pub rows: Vec<Table1Row>,
}

/// Runs the Table 1 experiment. `scale` multiplies each workload's
/// default iteration count (1.0 reproduces the default magnitudes;
/// tests use smaller scales).
pub fn run(scale: f64) -> Table1 {
    let inline_limit = 100; // the paper's headline inlining level (§4.4)
    let mut rows = Vec::new();
    for w in standard_suite() {
        let iters = ((w.default_iters as f64 * scale) as i64).max(8);
        let run = run_workload(
            &w,
            OptMode::Full,
            inline_limit,
            iters,
            BarrierMode::Checked,
            MarkStyle::Satb,
            None,
        );
        let s = &run.summary;
        rows.push(Table1Row {
            name: run.name,
            total: s.total(),
            pct_elim: s.pct_eliminated(),
            pct_potential: s.pct_potential_pre_null(),
            pct_field: s.pct_field(),
            field_elim: s.pct_field_eliminated(),
            array_elim: s.pct_array_eliminated(),
        });
    }
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>10} {:>7} {:>11} {:>11} {:>7} {:>7}",
            "benchmark", "Total x10^3", "% elim", "% Pot.pre0", "Field/Array", "Fld%el", "Arr%el"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>10.1} {:>7.1} {:>11.1} {:>8.0}/{:<2.0} {:>7.1} {:>7.1}",
                r.name,
                r.total as f64 / 1_000.0,
                r.pct_elim,
                r.pct_potential,
                r.pct_field,
                100.0 - r.pct_field,
                r.field_elim,
                r.array_elim,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let t = run(0.1);
        assert_eq!(t.rows.len(), 6);
        let by: std::collections::HashMap<_, _> =
            t.rows.iter().map(|r| (r.name, r.clone())).collect();

        // Elimination-rate ordering: mtrt > jess > jack > javac > jbb > db.
        assert!(by["mtrt"].pct_elim > by["jess"].pct_elim);
        assert!(by["jess"].pct_elim > by["jack"].pct_elim);
        assert!(by["jack"].pct_elim > by["javac"].pct_elim);
        assert!(by["javac"].pct_elim > by["jbb"].pct_elim);
        assert!(by["jbb"].pct_elim > by["db"].pct_elim);

        // Field elimination is near-total for jess and db.
        assert!(by["jess"].field_elim > 90.0, "{}", by["jess"].field_elim);
        assert!(by["db"].field_elim > 90.0, "{}", by["db"].field_elim);

        // Array elimination is zero except for javac and mtrt.
        for name in ["jess", "db", "jack", "jbb"] {
            assert_eq!(by[name].array_elim, 0.0, "{name}");
        }
        assert!(by["mtrt"].array_elim > 30.0);
        assert!(by["javac"].array_elim > 10.0);

        // db is array-dominated; javac is field-dominated.
        assert!(by["db"].pct_field < 20.0);
        assert!(by["javac"].pct_field > 84.0);

        // %elim never exceeds the potential upper bound.
        for r in &t.rows {
            assert!(
                r.pct_elim <= r.pct_potential + 1e-9,
                "{}: {} > {}",
                r.name,
                r.pct_elim,
                r.pct_potential
            );
        }
    }
}
