//! `wbe_tool` front end for the elision provenance ledger: build the
//! post-inlining ledger for a program, render the human `explain` view,
//! and diff two NDJSON ledgers site-by-site.
//!
//! The diff's exit contract (enforced by `wbe_tool ledger-diff`):
//!
//! * **0** — ledgers agree, or only *improvements* changed (new sites,
//!   newly-elided sites, degraded sites that recovered).
//! * **1** — at least one **regression**: an elided site now keeps its
//!   barrier, a site flipped to degraded, or an elided site vanished.
//! * **2** — usage or I/O error (missing file, malformed NDJSON).
//!
//! [`demo_flip`] is the negative control: it deliberately flips every
//! elided record to `keep`, the same spirit as `mcheck --demo-unsound`
//! — a diff against the flipped ledger *must* report regressions.

use std::collections::BTreeMap;
use std::fmt;

use wbe_analysis::{ElisionLedger, SiteRecord, Verdict};
use wbe_ir::Program;
use wbe_opt::{compile, OptMode, PipelineConfig};

/// Compiles `program` (inlining included) and returns its ledger.
/// `None` only for [`OptMode::Baseline`], which runs no analysis.
pub fn build_ledger(
    program: &Program,
    mode: OptMode,
    inline_limit: usize,
    null_or_same: bool,
) -> Option<ElisionLedger> {
    let mut cfg = PipelineConfig::new(mode, inline_limit).with_ledger();
    cfg.null_or_same = null_or_same;
    compile(program, &cfg).ledger
}

/// Renders the human `explain` view of `ledger`: one stanza per site,
/// verdict first, then the evidence chain, then — for kept barriers —
/// the first failing elision condition. `method` restricts to one
/// (post-inlining) method; `site` to the n-th barrier site within the
/// selection (0-based).
pub fn explain(ledger: &ElisionLedger, method: Option<&str>, site: Option<usize>) -> String {
    let mut out = String::new();
    let selected: Vec<&SiteRecord> = ledger
        .records
        .iter()
        .filter(|r| method.is_none_or(|m| r.method == m))
        .collect();
    let selected: Vec<&SiteRecord> = match site {
        Some(n) => selected.into_iter().skip(n).take(1).collect(),
        None => selected,
    };
    let shown = selected.len();
    for rec in &selected {
        render_site(&mut out, rec);
    }
    if method.is_none() && site.is_none() {
        out.push_str(&format!(
            "{} sites: {} elided, {} kept, {} degraded\n",
            ledger.records.len(),
            ledger.elided(),
            ledger.kept(),
            ledger.degraded()
        ));
    } else if shown == 0 {
        out.push_str("no matching barrier site\n");
    }
    out
}

fn render_site(out: &mut String, rec: &SiteRecord) {
    use fmt::Write as _;
    let verdict = match rec.verdict {
        Verdict::Elide => "ELIDE (store overwrites null; W_none is sound)".to_string(),
        Verdict::Keep => format!("KEEP — {}", rec.keep_code),
        Verdict::Degraded => format!("DEGRADED ({})", rec.degraded),
    };
    let _ = writeln!(
        out,
        "{} {} {}: {verdict}",
        rec.site_key(),
        rec.kind,
        rec.target
    );
    if !rec.receiver.is_empty() {
        let _ = writeln!(out, "  receiver: {}", rec.receiver);
    }
    if !rec.nl.is_empty() {
        let _ = writeln!(out, "  non-thread-local: {}", rec.nl.join(", "));
    }
    for fact in &rec.facts {
        let _ = writeln!(out, "  fact: {fact}");
    }
    if !rec.keep_detail.is_empty() {
        let _ = writeln!(out, "  first failing condition: {}", rec.keep_detail);
    }
    if rec.null_or_same {
        let _ = writeln!(
            out,
            "  note: null-or-same (§4.3) elides this site with W_NS"
        );
    }
    if rec.revoked {
        let _ = writeln!(out, "  REVOKED at runtime — {}", rec.revoke_reason);
    }
    if rec.oracle_executions > 0 {
        let _ = writeln!(
            out,
            "  oracle: {}/{} kept executions necessary ({:.3}%)",
            rec.oracle_necessary,
            rec.oracle_executions,
            100.0 * rec.oracle_necessary as f64 / rec.oracle_executions as f64
        );
        if rec.oracle_necessary == 0 && !rec.oracle_witness.is_empty() {
            let _ = writeln!(out, "  refuting witness: {}", rec.oracle_witness);
        }
    }
}

/// Deliberately flips every `elide` record to `keep` — the ledger-diff
/// negative control. A diff of the original against the flipped ledger
/// must exit nonzero.
pub fn demo_flip(ledger: &mut ElisionLedger) {
    for rec in &mut ledger.records {
        if rec.verdict == Verdict::Elide {
            rec.verdict = Verdict::Keep;
            rec.keep_code = "demo-flip".to_string();
            rec.keep_detail = "deliberately flipped for the negative control".to_string();
        }
    }
}

/// One oracle `site` record parsed back from `wbe_tool oracle --format
/// ndjson` output: the slice [`ElisionLedger::join_oracle`] consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleSiteRow {
    /// Post-inlining method name.
    pub method: String,
    /// Block id of the store site.
    pub block: usize,
    /// Instruction index within the block.
    pub index: usize,
    /// Kept-barrier executions the oracle witnessed.
    pub executions: u64,
    /// Of those, semantically necessary SATB enqueues.
    pub necessary: u64,
    /// Rendered refuting witness (empty unless never-necessary).
    pub witness: String,
}

/// Parses oracle NDJSON, keeping only `record == "site"` lines, and
/// aggregates repeated sites (the same site observed under several
/// workloads) by summing counts and keeping the first non-empty
/// witness. `Err` names the bad line.
pub fn parse_oracle_sites(ndjson: &str) -> Result<Vec<OracleSiteRow>, String> {
    let mut by_site: BTreeMap<(String, usize, usize), OracleSiteRow> = BTreeMap::new();
    for (lineno, line) in ndjson.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            wbe_telemetry::json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if v.get("record").and_then(|f| f.as_str()) != Some("site") {
            continue;
        }
        let site = v
            .get("site")
            .and_then(|f| f.as_str())
            .ok_or_else(|| format!("line {}: missing 'site'", lineno + 1))?;
        // Site identity renders as `method@B<block>[<index>]`.
        let (method, block, index) = (|| {
            let (method, rest) = site.rsplit_once("@B")?;
            let (block, index) = rest.strip_suffix(']')?.split_once('[')?;
            Some((method.to_string(), block.parse().ok()?, index.parse().ok()?))
        })()
        .ok_or_else(|| format!("line {}: malformed site '{site}'", lineno + 1))?;
        let get_u64 = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("line {}: missing integer field '{k}'", lineno + 1))
        };
        let executions = get_u64("executions")?;
        let necessary = get_u64("necessary")?;
        let witness = v
            .get("witness")
            .and_then(|f| f.as_str())
            .unwrap_or("")
            .to_string();
        let row = by_site
            .entry((method.clone(), block, index))
            .or_insert_with(|| OracleSiteRow {
                method,
                block,
                index,
                executions: 0,
                necessary: 0,
                witness: String::new(),
            });
        row.executions += executions;
        row.necessary += necessary;
        if row.witness.is_empty() {
            row.witness = witness;
        }
    }
    Ok(by_site.into_values().collect())
}

/// One parsed site from an NDJSON ledger: just what the diff needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffSite {
    /// The verdict recorded for the site.
    pub verdict: Verdict,
    /// First failing condition code (empty for elide).
    pub keep_code: String,
}

/// Parses a ledger NDJSON document into `site_key → DiffSite`, in
/// deterministic order. `Err` carries a message naming the bad line.
pub fn parse_ledger(ndjson: &str) -> Result<BTreeMap<String, DiffSite>, String> {
    let mut sites = BTreeMap::new();
    for (lineno, line) in ndjson.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v =
            wbe_telemetry::json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let get_str = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(|f| f.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing string field '{k}'", lineno + 1))
        };
        let get_u64 = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(|f| f.as_u64())
                .ok_or_else(|| format!("line {}: missing integer field '{k}'", lineno + 1))
        };
        let verdict: Verdict = get_str("verdict")?
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let key = format!(
            "{}@B{}[{}]",
            get_str("method")?,
            get_u64("block")?,
            get_u64("index")?
        );
        sites.insert(
            key,
            DiffSite {
                verdict,
                keep_code: get_str("keep_code")?,
            },
        );
    }
    Ok(sites)
}

/// Site-level differences between two ledgers, split into the classes
/// the exit contract cares about.
#[derive(Clone, Debug, Default)]
pub struct LedgerDiff {
    /// Regression: `elide` in the old ledger, `keep` in the new.
    pub newly_kept: Vec<String>,
    /// Regression: any verdict flipped to `degraded`.
    pub newly_degraded: Vec<String>,
    /// Regression: site was `elide` in the old ledger and is gone.
    pub removed_elided: Vec<String>,
    /// Improvement: `keep`/`degraded` in the old ledger, `elide` now.
    pub newly_elided: Vec<String>,
    /// Improvement: `degraded` in the old ledger, `keep` (converged) now.
    pub recovered: Vec<String>,
    /// Neutral: site exists only in the new ledger.
    pub added: Vec<String>,
    /// Neutral: non-elided site removed.
    pub removed_other: Vec<String>,
    /// Neutral: still kept, but the first failing condition changed.
    pub reason_changed: Vec<String>,
}

impl LedgerDiff {
    /// Number of regression entries (the exit-1 trigger).
    pub fn regressions(&self) -> usize {
        self.newly_kept.len() + self.newly_degraded.len() + self.removed_elided.len()
    }

    /// True when the two ledgers are site-for-site identical.
    pub fn is_empty(&self) -> bool {
        self.regressions() == 0
            && self.newly_elided.is_empty()
            && self.recovered.is_empty()
            && self.added.is_empty()
            && self.removed_other.is_empty()
            && self.reason_changed.is_empty()
    }
}

impl fmt::Display for LedgerDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut section = |title: &str, items: &[String]| -> fmt::Result {
            for key in items {
                writeln!(f, "{title} {key}")?;
            }
            Ok(())
        };
        section("REGRESSION newly-kept      ", &self.newly_kept)?;
        section("REGRESSION newly-degraded  ", &self.newly_degraded)?;
        section("REGRESSION removed-elided  ", &self.removed_elided)?;
        section("improvement newly-elided   ", &self.newly_elided)?;
        section("improvement recovered      ", &self.recovered)?;
        section("note        added-site     ", &self.added)?;
        section("note        removed-site   ", &self.removed_other)?;
        section("note        reason-changed ", &self.reason_changed)?;
        if self.is_empty() {
            writeln!(f, "ledgers are identical")?;
        } else {
            writeln!(
                f,
                "{} regression(s), {} improvement(s)",
                self.regressions(),
                self.newly_elided.len() + self.recovered.len()
            )?;
        }
        Ok(())
    }
}

/// Computes the site-level diff `old → new`.
pub fn diff_ledgers(
    old: &BTreeMap<String, DiffSite>,
    new: &BTreeMap<String, DiffSite>,
) -> LedgerDiff {
    let mut d = LedgerDiff::default();
    for (key, o) in old {
        match new.get(key) {
            None => match o.verdict {
                Verdict::Elide => d.removed_elided.push(key.clone()),
                _ => d.removed_other.push(key.clone()),
            },
            Some(n) => match (o.verdict, n.verdict) {
                (Verdict::Elide, Verdict::Keep) => d.newly_kept.push(key.clone()),
                (Verdict::Elide | Verdict::Keep, Verdict::Degraded) => {
                    d.newly_degraded.push(key.clone())
                }
                (Verdict::Keep | Verdict::Degraded, Verdict::Elide) => {
                    d.newly_elided.push(key.clone())
                }
                (Verdict::Degraded, Verdict::Keep) => d.recovered.push(key.clone()),
                (Verdict::Keep, Verdict::Keep) if o.keep_code != n.keep_code => {
                    d.reason_changed.push(key.clone())
                }
                _ => {}
            },
        }
    }
    for key in new.keys() {
        if !old.contains_key(key) {
            d.added.push(key.clone());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_ir::builder::ProgramBuilder;
    use wbe_ir::Ty;

    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C");
        let f = pb.field(c, "f", Ty::Ref(c));
        let g = pb.static_field("g", Ty::Ref(c));
        pb.method("mixed", vec![Ty::Ref(c)], None, 1, |mb| {
            let arg = mb.local(0);
            let o = mb.local(1);
            mb.new_object(c).store(o);
            mb.load(o).load(arg).putfield(f); // elided
            mb.load(o).putstatic(g); // escape
            mb.load(o).load(arg).putfield(f); // kept
            mb.return_();
        });
        pb.finish()
    }

    fn site(verdict: Verdict, code: &str) -> DiffSite {
        DiffSite {
            verdict,
            keep_code: code.to_string(),
        }
    }

    #[test]
    fn explain_names_first_failing_condition() {
        let p = sample_program();
        let ledger = build_ledger(&p, OptMode::Full, 100, false).unwrap();
        let text = explain(&ledger, None, None);
        assert!(text.contains("ELIDE"), "{text}");
        assert!(text.contains("KEEP — receiver-may-escape"), "{text}");
        assert!(text.contains("first failing condition:"), "{text}");
        let one = explain(&ledger, Some("mixed"), Some(1));
        assert!(one.contains("KEEP"), "{one}");
        assert!(!one.contains("ELIDE ("), "{one}");
        let none = explain(&ledger, Some("nope"), None);
        assert!(none.contains("no matching barrier site"), "{none}");
    }

    #[test]
    fn explain_shows_runtime_revocations_without_diff_flips() {
        let p = sample_program();
        let ledger = build_ledger(&p, OptMode::Full, 100, false).unwrap();
        let mut joined = ledger.clone();
        let elided = joined
            .records
            .iter()
            .find(|r| r.verdict == Verdict::Elide)
            .cloned()
            .unwrap();
        assert_eq!(
            joined.join_revocations([(
                elided.method.as_str(),
                elided.block,
                elided.index,
                "barrier panic mode: post-mark verify failed",
            )]),
            1
        );
        let text = explain(&joined, None, None);
        assert!(
            text.contains("REVOKED at runtime — barrier panic mode"),
            "{text}"
        );
        // Runtime revocation is provenance, not a verdict change: the
        // diff between the static and the joined ledger stays empty.
        let old = parse_ledger(&ledger.to_ndjson()).unwrap();
        let new = parse_ledger(&joined.to_ndjson()).unwrap();
        let d = diff_ledgers(&old, &new);
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn oracle_sites_parse_aggregate_and_render_in_explain() {
        let p = sample_program();
        let mut ledger = build_ledger(&p, OptMode::Full, 100, false).unwrap();
        let kept = ledger
            .records
            .iter()
            .find(|r| r.verdict == Verdict::Keep)
            .cloned()
            .unwrap();
        // The same site reported under two workloads: counts sum, the
        // first non-empty witness sticks.
        let ndjson = format!(
            "{{\"record\":\"workload\",\"workload\":\"a\"}}\n\
             {{\"record\":\"site\",\"workload\":\"a\",\"site\":\"{m}@B{b}[{i}]\",\
               \"executions\":300,\"necessary\":0,\"witness\":\"\"}}\n\
             {{\"record\":\"site\",\"workload\":\"b\",\"site\":\"{m}@B{b}[{i}]\",\
               \"executions\":100,\"necessary\":0,\
               \"witness\":\"receiver thread-local in 100 executions\"}}\n",
            m = kept.method,
            b = kept.block,
            i = kept.index
        );
        let rows = parse_oracle_sites(&ndjson).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].executions, 400);
        assert_eq!(rows[0].witness, "receiver thread-local in 100 executions");
        let joined = ledger.join_oracle(rows.iter().map(|r| {
            (
                r.method.as_str(),
                r.block,
                r.index,
                r.executions,
                r.necessary,
                r.witness.as_str(),
            )
        }));
        assert_eq!(joined, 1);
        let text = explain(&ledger, None, None);
        assert!(
            text.contains("oracle: 0/400 kept executions necessary (0.000%)"),
            "{text}"
        );
        assert!(
            text.contains("refuting witness: receiver thread-local in 100 executions"),
            "{text}"
        );
        assert!(parse_oracle_sites("{\"record\":\"site\",\"site\":\"oops\"}").is_err());
    }

    #[test]
    fn ndjson_round_trips_through_the_diff_parser() {
        let p = sample_program();
        let ledger = build_ledger(&p, OptMode::Full, 100, false).unwrap();
        let parsed = parse_ledger(&ledger.to_ndjson()).unwrap();
        assert_eq!(parsed.len(), ledger.records.len());
        let d = diff_ledgers(&parsed, &parsed);
        assert!(d.is_empty(), "{d}");
    }

    #[test]
    fn demo_flip_is_caught_as_a_regression() {
        let p = sample_program();
        let ledger = build_ledger(&p, OptMode::Full, 100, false).unwrap();
        let mut flipped = ledger.clone();
        demo_flip(&mut flipped);
        let old = parse_ledger(&ledger.to_ndjson()).unwrap();
        let new = parse_ledger(&flipped.to_ndjson()).unwrap();
        let d = diff_ledgers(&old, &new);
        assert_eq!(d.newly_kept.len(), ledger.elided());
        assert!(d.regressions() > 0, "{d}");
    }

    #[test]
    fn diff_classifies_every_flip_class() {
        let mut old = BTreeMap::new();
        let mut new = BTreeMap::new();
        // elide -> keep: regression.
        old.insert("m@B0[0]".into(), site(Verdict::Elide, ""));
        new.insert("m@B0[0]".into(), site(Verdict::Keep, "receiver-may-escape"));
        // keep -> degraded: regression.
        old.insert("m@B0[1]".into(), site(Verdict::Keep, "receiver-unknown"));
        new.insert("m@B0[1]".into(), site(Verdict::Degraded, ""));
        // elide -> degraded: regression.
        old.insert("m@B0[2]".into(), site(Verdict::Elide, ""));
        new.insert("m@B0[2]".into(), site(Verdict::Degraded, ""));
        // removed elided site: regression.
        old.insert("m@B0[3]".into(), site(Verdict::Elide, ""));
        // keep -> elide: improvement.
        old.insert(
            "m@B0[4]".into(),
            site(Verdict::Keep, "field-may-be-non-null"),
        );
        new.insert("m@B0[4]".into(), site(Verdict::Elide, ""));
        // degraded -> keep: recovery.
        old.insert("m@B0[5]".into(), site(Verdict::Degraded, ""));
        new.insert("m@B0[5]".into(), site(Verdict::Keep, "receiver-may-escape"));
        // keep -> keep with a different reason: note.
        old.insert("m@B0[6]".into(), site(Verdict::Keep, "receiver-may-escape"));
        new.insert(
            "m@B0[6]".into(),
            site(Verdict::Keep, "field-may-be-non-null"),
        );
        // removed kept site and an added site: notes.
        old.insert("m@B0[7]".into(), site(Verdict::Keep, "receiver-unknown"));
        new.insert("m@B9[0]".into(), site(Verdict::Elide, ""));

        let d = diff_ledgers(&old, &new);
        assert_eq!(d.newly_kept, vec!["m@B0[0]"]);
        assert_eq!(d.newly_degraded, vec!["m@B0[1]", "m@B0[2]"]);
        assert_eq!(d.removed_elided, vec!["m@B0[3]"]);
        assert_eq!(d.newly_elided, vec!["m@B0[4]"]);
        assert_eq!(d.recovered, vec!["m@B0[5]"]);
        assert_eq!(d.reason_changed, vec!["m@B0[6]"]);
        assert_eq!(d.removed_other, vec!["m@B0[7]"]);
        assert_eq!(d.added, vec!["m@B9[0]"]);
        assert_eq!(d.regressions(), 4);
        let text = d.to_string();
        assert!(text.contains("REGRESSION newly-kept"), "{text}");
        assert!(text.contains("4 regression(s)"), "{text}");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_ledger("{not json").is_err());
        assert!(parse_ledger("{\"method\":\"m\"}").is_err());
        assert!(parse_ledger(
            "{\"method\":\"m\",\"block\":0,\"index\":0,\"verdict\":\"bogus\",\"keep_code\":\"\"}"
        )
        .is_err());
        assert!(parse_ledger("\n\n").unwrap().is_empty());
    }
}
