//! The elision-headroom observatory: joins the runtime necessity
//! oracle ([`wbe_interp::oracle`]) with the static provenance ledger.
//!
//! The static ledger says *why* each barrier stayed (PR 5); the cost
//! profiler says *what it costs* (PR 6). This third plane says *whether
//! it was ever needed*: every kept-barrier execution carries a
//! necessity verdict (necessary, or vacuous by marking-idle / null-old
//! / already-marked / duplicate), and every necessary enqueue is
//! audited against snapshot reachability at the remark rendezvous.
//! Joining verdicts against keep-codes on `(method, block, index)`
//! yields:
//!
//! * a per-site **necessity rate** next to the static keep-code;
//! * the suite-wide **dynamic-upper-bound elision rate** — the fraction
//!   of barrier executions a *perfect* analysis could have elided on
//!   these executions (statically elided executions plus every kept
//!   execution at a never-necessary site) — against the frozen static
//!   25.770%;
//! * a ranked **worklist** of never-necessary kept sites, each
//!   annotated with the runtime witness refuting its keep-code
//!   (receiver observed thread-local, pre-value observed always null,
//!   or the dominant vacuity class) — the target list for the
//!   interprocedural-precision roadmap item.
//!
//! Determinism: workloads run under the same pinned GC policy and scale
//! as the baseline gate, all aggregation goes through ordered maps, and
//! the NDJSON carries no timestamps and no engine name — `--engine
//! classic` and `--engine compiled` must produce byte-identical bytes
//! (CI diffs them), which folds the engine-equivalence claim into the
//! oracle's own output.

use std::collections::BTreeMap;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, EngineKind, GcPolicy, StoreKind, Value};
use wbe_opt::{OptMode, PipelineConfig};
use wbe_telemetry::json::ObjWriter;

use crate::runner::compile_workload_with;

/// The frozen suite-wide *static* elision rate (percent) the dynamic
/// upper bound is reported against — `pct_elided` in
/// `baselines/suite.ndjson`, unchanged since PR 1.
pub const STATIC_ELISION_PCT: f64 = 25.770;

/// Oracle run configuration (mirrors the `wbe_tool oracle` flags).
#[derive(Clone, Debug)]
pub struct OracleOptions {
    /// Workloads to run (empty = standard suite + server family, the
    /// same set the baseline gate measures).
    pub workloads: Vec<String>,
    /// Which engine executes the workloads.
    pub engine: EngineKind,
    /// Iteration scale (same meaning as the baseline gate's scale).
    pub scale: f64,
    /// Maximum ranked worklist rows to emit.
    pub top: usize,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            workloads: Vec::new(),
            engine: EngineKind::Classic,
            scale: crate::baselines::SCALE,
            top: 10,
        }
    }
}

/// One kept site's joined static + dynamic record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteOracleRow {
    /// Stable site identity (`method@B<block>[<index>]`).
    pub site: String,
    /// `"field"` or `"array"`.
    pub kind: &'static str,
    /// The static keep-code blocking elision at this site.
    pub keep_code: String,
    /// Kept-barrier executions witnessed.
    pub executions: u64,
    /// Executions whose SATB enqueue was semantically necessary.
    pub necessary: u64,
    /// Vacuous: marking idle.
    pub marking_idle: u64,
    /// Vacuous: null old value.
    pub null_old: u64,
    /// Vacuous: old value already marked.
    pub already_marked: u64,
    /// Vacuous: old value already pending in the SATB log.
    pub duplicate: u64,
    /// Necessary enqueues that were the sole snapshot witness.
    pub sole_witness: u64,
    /// Necessary enqueues still root-reachable at remark.
    pub shielded: u64,
    /// Executions whose pre-value was null (all executions, not just
    /// those during marking — the interpreter's per-site counter).
    pub pre_null: u64,
    /// Executions whose receiver had already escaped its allocating
    /// logical thread.
    pub receiver_escaped: u64,
    /// The refuting witness for never-necessary sites (empty when some
    /// execution was necessary).
    pub witness: String,
}

impl SiteOracleRow {
    /// True if no execution ever needed this site's enqueue.
    #[must_use]
    pub fn never_necessary(&self) -> bool {
        self.executions > 0 && self.necessary == 0
    }
}

/// One ranked worklist entry: a never-necessary kept site and the
/// runtime witness refuting its keep-code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorklistRow {
    /// Workload the evidence comes from.
    pub workload: String,
    /// Site identity.
    pub site: String,
    /// The static keep-code the witness refutes.
    pub keep_code: String,
    /// Kept executions wasted at this site.
    pub executions: u64,
    /// The refuting witness, rendered.
    pub witness: String,
}

/// The oracle's view of one workload run.
#[derive(Clone, Debug)]
pub struct WorkloadOracle {
    /// Workload name.
    pub workload: String,
    /// Whether this workload feeds the headline rates (the six Table 1
    /// mimics do; server-family rows ride along without moving the
    /// frozen static number, exactly as in the baseline gate).
    pub headline: bool,
    /// Total dynamic barrier executions (kept + elided).
    pub total_executions: u64,
    /// Executions at statically elided sites.
    pub elided_executions: u64,
    /// Executions at kept sites (all witnessed by the oracle).
    pub kept_executions: u64,
    /// Of those, semantically necessary enqueues.
    pub necessary_executions: u64,
    /// Kept executions at never-necessary sites — elidable by a
    /// perfect analysis on these executions.
    pub never_necessary_executions: u64,
    /// Never-necessary kept sites.
    pub never_necessary_sites: u64,
    /// Per-site joined rows, in deterministic site order.
    pub sites: Vec<SiteOracleRow>,
    /// Marking cycles the oracle audited at their remark.
    pub cycles_audited: u64,
    /// Necessary-enqueued refs found live-but-unmarked after remark
    /// (zero unless fault injection corrupted a cycle).
    pub audit_violations: u64,
    /// Objects the witness table saw allocated.
    pub allocated_objects: u64,
    /// Of those, objects that ever escaped their allocating thread.
    pub escaped_objects: u64,
}

/// The whole oracle run: per-workload results plus suite rollups.
#[derive(Clone, Debug)]
pub struct SuiteOracle {
    /// Engine that produced the run (reported in text output only —
    /// NDJSON omits it so both engines' bytes can be diffed).
    pub engine: &'static str,
    /// One result per workload, in run order.
    pub workloads: Vec<WorkloadOracle>,
    /// Headline totals (Table 1 workloads only, unless explicit
    /// workloads were requested).
    pub total_executions: u64,
    /// Headline executions at elided sites.
    pub elided_executions: u64,
    /// Headline executions at kept sites.
    pub kept_executions: u64,
    /// Headline necessary enqueues.
    pub necessary_executions: u64,
    /// Headline kept executions at never-necessary sites.
    pub never_necessary_executions: u64,
    /// Ranked worklist of never-necessary kept sites (all workloads),
    /// at most `top` rows.
    pub worklist: Vec<WorklistRow>,
    /// Never-necessary kept sites across all workloads.
    pub never_necessary_sites: u64,
}

impl SuiteOracle {
    /// The measured static elision rate (percent) of the headline
    /// workloads — should reproduce [`STATIC_ELISION_PCT`] on the
    /// default set.
    #[must_use]
    pub fn static_rate(&self) -> f64 {
        pct(self.elided_executions, self.total_executions)
    }

    /// The dynamic-upper-bound elision rate (percent): executions a
    /// perfect analysis could have elided on these runs.
    #[must_use]
    pub fn dynamic_rate(&self) -> f64 {
        pct(
            self.elided_executions + self.never_necessary_executions,
            self.total_executions,
        )
    }

    /// Measured headroom (points) between the upper bound and the
    /// static rate.
    #[must_use]
    pub fn headroom_points(&self) -> f64 {
        self.dynamic_rate() - self.static_rate()
    }
}

fn pct(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Runs the oracle over the requested workloads. `Err` names an
/// unknown workload or a trapped run.
pub fn measure(opts: &OracleOptions) -> Result<SuiteOracle, String> {
    let _guard = crate::registry_lock();
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
        metrics: true,
        tracing: wbe_telemetry::tracing_enabled(),
    });
    // (workload, feeds-the-headline-rates) pairs: the default set is
    // the baseline gate's — six Table 1 mimics feeding the rates, the
    // server family riding along.
    let workloads: Vec<(wbe_workloads::Workload, bool)> = if opts.workloads.is_empty() {
        wbe_workloads::standard_suite()
            .into_iter()
            .map(|w| (w, true))
            .chain(
                wbe_workloads::server_family()
                    .into_iter()
                    .map(|w| (w, false)),
            )
            .collect()
    } else {
        opts.workloads
            .iter()
            .map(|n| {
                wbe_workloads::by_name(n)
                    .map(|w| (w, true))
                    .ok_or_else(|| format!("unknown workload '{n}'"))
            })
            .collect::<Result<_, _>>()?
    };

    let mut results = Vec::new();
    for (w, headline) in &workloads {
        results.push(oracle_workload(w, *headline, opts.engine, opts.scale)?);
    }

    // The ranked worklist: never-necessary sites from every workload,
    // most wasted executions first (tie: workload, then site).
    let mut worklist: Vec<WorklistRow> = results
        .iter()
        .flat_map(|r| {
            r.sites
                .iter()
                .filter(|s| s.never_necessary())
                .map(|s| WorklistRow {
                    workload: r.workload.clone(),
                    site: s.site.clone(),
                    keep_code: s.keep_code.clone(),
                    executions: s.executions,
                    witness: s.witness.clone(),
                })
        })
        .collect();
    let never_necessary_sites = worklist.len() as u64;
    worklist.sort_by(|a, b| {
        b.executions
            .cmp(&a.executions)
            .then_with(|| a.workload.cmp(&b.workload))
            .then_with(|| a.site.cmp(&b.site))
    });
    worklist.truncate(opts.top);

    let headline = |f: &dyn Fn(&WorkloadOracle) -> u64| -> u64 {
        results.iter().filter(|r| r.headline).map(f).sum()
    };
    Ok(SuiteOracle {
        engine: opts.engine.name(),
        total_executions: headline(&|r| r.total_executions),
        elided_executions: headline(&|r| r.elided_executions),
        kept_executions: headline(&|r| r.kept_executions),
        necessary_executions: headline(&|r| r.necessary_executions),
        never_necessary_executions: headline(&|r| r.never_necessary_executions),
        worklist,
        never_necessary_sites,
        workloads: results,
    })
}

/// Renders the refuting witness for a never-necessary kept site.
/// Escape-based keep-codes are refuted by observed thread-locality,
/// nullness-based codes by observed all-null pre-values; otherwise the
/// dominant vacuity class is the evidence.
fn refuting_witness(row: &SiteOracleRow, dominant: &str) -> String {
    let escape_code = row.keep_code.contains("escape") || row.keep_code.contains("unknown");
    if escape_code && row.receiver_escaped == 0 {
        let what = if row.kind == "array" {
            "array"
        } else {
            "receiver"
        };
        return format!("{what} thread-local in all {} executions", row.executions);
    }
    if row.keep_code.contains("non-null") && row.pre_null == row.executions {
        return format!("pre-value null in all {} executions", row.executions);
    }
    format!(
        "enqueue vacuous in all {} executions (dominant: {dominant})",
        row.executions
    )
}

fn oracle_workload(
    w: &wbe_workloads::Workload,
    headline: bool,
    engine: EngineKind,
    scale: f64,
) -> Result<WorkloadOracle, String> {
    wbe_telemetry::registry::global().reset();
    let cfg = PipelineConfig::new(OptMode::Full, 100).with_ledger();
    let (compiled, elided) = compile_workload_with(w, &cfg);
    let ledger = compiled.ledger.as_ref().expect("full mode builds a ledger");
    let ledger_index = ledger.index();
    let iters = ((w.default_iters as f64 * scale) as i64).max(8);
    let bc = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
    let mut eng = engine.build(&compiled.program, bc, MarkStyle::Satb);
    eng.set_oracle(true);
    eng.set_gc_policy(GcPolicy {
        alloc_trigger: 400,
        step_interval: 32,
        step_budget: 4,
    });
    eng.run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
        .map_err(|t| format!("workload {} trapped: {t}", w.name))?;

    // Per-site dynamic counters keyed like the oracle's SiteKey, for
    // the pre-null join.
    let mut dyn_stats: BTreeMap<(u64, u32, u32), (u64, u64)> = BTreeMap::new();
    let mut elided_executions = 0u64;
    for (&(mid, addr, _), stats) in eng.stats().barrier.iter() {
        if elided.contains(mid, addr) {
            elided_executions += stats.executions;
            continue;
        }
        let key = (u64::from(mid.0), addr.block.0, addr.index as u32);
        let e = dyn_stats.entry(key).or_insert((0, 0));
        e.0 += stats.executions;
        e.1 += stats.pre_null;
    }

    let oracle = eng.oracle().expect("oracle was enabled");
    let mut sites = Vec::new();
    let mut necessary_executions = 0u64;
    let mut never_necessary_executions = 0u64;
    let mut never_necessary_sites = 0u64;
    let mut kept_witnessed = 0u64;
    for (&key, sn) in &oracle.sites {
        let mid = wbe_ir::MethodId(key.0 as u32);
        let method = compiled.program.method(mid).name.as_str();
        let (block, index) = (key.1 as usize, key.2 as usize);
        let keep_code = ledger_index
            .get(&(method, block, index))
            .filter(|rec| !rec.keep_code.is_empty())
            .map_or_else(
                || crate::profile::UNATTRIBUTED.to_string(),
                |rec| rec.keep_code.clone(),
            );
        let (_, pre_null) = dyn_stats.get(&key).copied().unwrap_or((0, 0));
        let mut row = SiteOracleRow {
            site: format!("{method}@B{block}[{index}]"),
            kind: match sn.kind {
                Some(StoreKind::Array) => "array",
                _ => "field",
            },
            keep_code,
            executions: sn.executions,
            necessary: sn.necessary,
            marking_idle: sn.marking_idle,
            null_old: sn.null_old,
            already_marked: sn.already_marked,
            duplicate: sn.duplicate,
            sole_witness: sn.sole_witness,
            shielded: sn.shielded,
            pre_null,
            receiver_escaped: sn.receiver_escaped,
            witness: String::new(),
        };
        kept_witnessed += sn.executions;
        necessary_executions += sn.necessary;
        if row.never_necessary() {
            never_necessary_sites += 1;
            never_necessary_executions += sn.executions;
            row.witness = refuting_witness(&row, sn.dominant());
        }
        sites.push(row);
    }

    let (total_executions, _) = eng.stats().barrier.totals();
    let kept_executions = total_executions - elided_executions;
    debug_assert_eq!(
        kept_executions, kept_witnessed,
        "{}: every kept execution must carry a verdict",
        w.name
    );
    let witness = eng
        .heap()
        .witness
        .as_ref()
        .expect("oracle enables witnesses");
    // Sole/shielded are assigned at each cycle's remark audit, so a run
    // that ends inside an open marking cycle leaves that cycle's
    // necessary enqueues unaudited: sole + shielded ≤ necessary, with
    // equality when the last cycle closed before the run did.
    let (oracle_sole, oracle_shielded) = sites
        .iter()
        .fold((0, 0), |(s, h), r| (s + r.sole_witness, h + r.shielded));
    debug_assert!(oracle_sole + oracle_shielded <= necessary_executions);
    Ok(WorkloadOracle {
        workload: w.name.to_string(),
        headline,
        total_executions,
        elided_executions,
        kept_executions,
        necessary_executions,
        never_necessary_executions,
        never_necessary_sites,
        sites,
        cycles_audited: oracle.cycles_audited,
        audit_violations: oracle.audit_violations,
        allocated_objects: witness.allocated_objects(),
        escaped_objects: witness.escaped_objects(),
    })
}

/// Renders the run as NDJSON: per-workload summary + site rows (run
/// order), then the ranked worklist, then the closing `suite` line.
/// Deliberately engine-free and timestamp-free: classic and compiled
/// runs of the same seed must be byte-identical.
pub fn to_ndjson(o: &SuiteOracle) -> String {
    let mut out = String::new();
    let mut line = |f: &dyn Fn(&mut ObjWriter<'_>)| {
        let mut s = String::new();
        let mut w = ObjWriter::new(&mut s);
        f(&mut w);
        w.finish();
        out.push_str(&s);
        out.push('\n');
    };
    for wo in &o.workloads {
        line(&|w| {
            w.field_str("record", "workload")
                .field_str("workload", &wo.workload)
                .field_bool("headline", wo.headline)
                .field_u64("total_executions", wo.total_executions)
                .field_u64("elided_executions", wo.elided_executions)
                .field_u64("kept_executions", wo.kept_executions)
                .field_u64("necessary_executions", wo.necessary_executions)
                .field_u64("never_necessary_executions", wo.never_necessary_executions)
                .field_u64("never_necessary_sites", wo.never_necessary_sites)
                .field_u64("cycles_audited", wo.cycles_audited)
                .field_u64("audit_violations", wo.audit_violations)
                .field_u64("allocated_objects", wo.allocated_objects)
                .field_u64("escaped_objects", wo.escaped_objects);
        });
        for s in &wo.sites {
            line(&|w| {
                w.field_str("record", "site")
                    .field_str("workload", &wo.workload)
                    .field_str("site", &s.site)
                    .field_str("kind", s.kind)
                    .field_str("keep_code", &s.keep_code)
                    .field_u64("executions", s.executions)
                    .field_u64("necessary", s.necessary)
                    .field_raw(
                        "necessity_pct",
                        &format!("{:.3}", pct(s.necessary, s.executions)),
                    )
                    .field_u64("marking_idle", s.marking_idle)
                    .field_u64("null_old", s.null_old)
                    .field_u64("already_marked", s.already_marked)
                    .field_u64("duplicate", s.duplicate)
                    .field_u64("sole_witness", s.sole_witness)
                    .field_u64("shielded", s.shielded)
                    .field_u64("pre_null", s.pre_null)
                    .field_u64("receiver_escaped", s.receiver_escaped)
                    .field_bool("never_necessary", s.never_necessary())
                    .field_str("witness", &s.witness);
            });
        }
    }
    for (rank, r) in o.worklist.iter().enumerate() {
        line(&|w| {
            w.field_str("record", "worklist")
                .field_u64("rank", rank as u64 + 1)
                .field_str("workload", &r.workload)
                .field_str("site", &r.site)
                .field_str("keep_code", &r.keep_code)
                .field_u64("executions", r.executions)
                .field_str("witness", &r.witness);
        });
    }
    line(&|w| {
        w.field_str("record", "suite")
            .field_u64("total_executions", o.total_executions)
            .field_u64("elided_executions", o.elided_executions)
            .field_u64("kept_executions", o.kept_executions)
            .field_u64("necessary_executions", o.necessary_executions)
            .field_u64("never_necessary_executions", o.never_necessary_executions)
            .field_u64("never_necessary_sites", o.never_necessary_sites)
            .field_raw("static_elision_pct", &format!("{:.3}", o.static_rate()))
            .field_raw(
                "dynamic_upper_bound_pct",
                &format!("{:.3}", o.dynamic_rate()),
            )
            .field_raw("headroom_points", &format!("{:.3}", o.headroom_points()));
    });
    out
}

/// Renders the run as a human-readable report.
pub fn to_text(o: &SuiteOracle) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "barrier-necessity oracle ({} engine)", o.engine);
    for wo in &o.workloads {
        let _ = writeln!(
            out,
            "{}: {} executions ({} elided, {} kept), {} necessary, \
             {} never-necessary sites ({} executions), {} cycles audited{}",
            wo.workload,
            wo.total_executions,
            wo.elided_executions,
            wo.kept_executions,
            wo.necessary_executions,
            wo.never_necessary_sites,
            wo.never_necessary_executions,
            wo.cycles_audited,
            if wo.audit_violations > 0 {
                format!(", {} AUDIT VIOLATIONS", wo.audit_violations)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "  witnesses: {}/{} objects escaped their allocating thread",
            wo.escaped_objects, wo.allocated_objects
        );
        for s in wo.sites.iter().filter(|s| s.necessary > 0) {
            let _ = writeln!(
                out,
                "  {:<44} {:<24} {:>8} execs {:>6.3}% necessary ({} sole, {} shielded)",
                s.site,
                s.keep_code,
                s.executions,
                pct(s.necessary, s.executions),
                s.sole_witness,
                s.shielded
            );
        }
    }
    let _ = writeln!(
        out,
        "suite: {} executions, {} elided, {} kept, {} necessary",
        o.total_executions, o.elided_executions, o.kept_executions, o.necessary_executions
    );
    let _ = writeln!(
        out,
        "  static elision rate:       {:>7.3}% (frozen baseline {STATIC_ELISION_PCT:.3}%)",
        o.static_rate()
    );
    let _ = writeln!(
        out,
        "  dynamic upper bound:       {:>7.3}% (+{:.3} points of measured headroom)",
        o.dynamic_rate(),
        o.headroom_points()
    );
    let _ = writeln!(
        out,
        "  never-necessary kept sites: {} (worklist below)",
        o.never_necessary_sites
    );
    for (rank, r) in o.worklist.iter().enumerate() {
        let _ = writeln!(
            out,
            "  #{:<2} {:<10} {:<44} {:<24} {:>8} execs — {}",
            rank + 1,
            r.workload,
            r.site,
            r.keep_code,
            r.executions,
            r.witness
        );
    }
    out
}

/// The `wbe_tool oracle` driver: measures, renders, and writes or
/// prints the result. Returns the process exit code (0 report
/// produced, 2 configuration/run error).
pub fn run_oracle(opts: &OracleOptions, ndjson: bool, out_path: Option<&str>) -> i32 {
    let suite = match measure(opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oracle: {e}");
            return 2;
        }
    };
    let body = if ndjson {
        to_ndjson(&suite)
    } else {
        to_text(&suite)
    };
    match out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &body) {
                eprintln!("cannot write {path}: {e}");
                return 2;
            }
            eprintln!("oracle report written to {path}");
        }
        None => print!("{body}"),
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> OracleOptions {
        OracleOptions {
            scale: 0.05,
            ..OracleOptions::default()
        }
    }

    #[test]
    fn every_kept_execution_carries_a_verdict() {
        let o = measure(&small_opts()).unwrap();
        assert_eq!(o.workloads.len(), 8, "six Table 1 mimics + server family");
        for wo in &o.workloads {
            let site_execs: u64 = wo.sites.iter().map(|s| s.executions).sum();
            assert_eq!(site_execs, wo.kept_executions, "{}", wo.workload);
            assert_eq!(
                wo.kept_executions + wo.elided_executions,
                wo.total_executions,
                "{}",
                wo.workload
            );
            let verdicts: u64 = wo
                .sites
                .iter()
                .map(|s| s.necessary + s.marking_idle + s.null_old + s.already_marked + s.duplicate)
                .sum();
            assert_eq!(verdicts, wo.kept_executions, "{}", wo.workload);
            assert_eq!(wo.audit_violations, 0, "{}", wo.workload);
            assert!(
                !wo.sites
                    .iter()
                    .any(|s| s.keep_code == crate::profile::UNATTRIBUTED),
                "{}: verdicts lost ledger provenance",
                wo.workload
            );
        }
    }

    #[test]
    fn dynamic_upper_bound_exceeds_the_frozen_static_rate() {
        let o = measure(&OracleOptions::default()).unwrap();
        // The measured static rate reproduces the frozen headline.
        assert!(
            (o.static_rate() - STATIC_ELISION_PCT).abs() < 0.5,
            "measured static rate {:.3} drifted from the frozen {STATIC_ELISION_PCT}",
            o.static_rate()
        );
        assert!(
            o.dynamic_rate() > STATIC_ELISION_PCT,
            "dynamic upper bound {:.3} must exceed the static rate",
            o.dynamic_rate()
        );
        assert!(!o.worklist.is_empty(), "worklist must be non-empty");
        assert!(
            o.worklist
                .iter()
                .any(|r| r.keep_code == "receiver-may-escape" || r.keep_code == "array-may-escape"),
            "worklist must name escape-kept sites: {:?}",
            o.worklist
        );
        for r in &o.worklist {
            assert!(
                !r.witness.is_empty(),
                "{}: worklist rows carry evidence",
                r.site
            );
        }
    }

    #[test]
    fn ndjson_is_deterministic_and_engine_independent() {
        let mut opts = small_opts();
        opts.workloads = vec!["jbb".into(), "jess".into()];
        let classic = to_ndjson(&measure(&opts).unwrap());
        let classic2 = to_ndjson(&measure(&opts).unwrap());
        assert_eq!(classic, classic2, "oracle NDJSON must be deterministic");
        opts.engine = EngineKind::Compiled;
        let compiled = to_ndjson(&measure(&opts).unwrap());
        assert_eq!(
            classic, compiled,
            "classic and compiled engines must produce byte-identical verdicts"
        );
        let mut kinds = std::collections::BTreeSet::new();
        for l in classic.lines() {
            let v = wbe_telemetry::json::parse(l).expect("valid JSON");
            kinds.insert(v.get("record").unwrap().as_str().unwrap().to_string());
        }
        for k in ["workload", "site", "worklist", "suite"] {
            assert!(kinds.contains(k), "missing record kind {k}");
        }
    }

    #[test]
    fn necessary_enqueues_split_into_sole_and_shielded() {
        // jbb allocates enough to run real marking cycles at small
        // scale, so some barriers fire mid-cycle.
        let mut opts = small_opts();
        opts.workloads = vec!["jbb".into()];
        let o = measure(&opts).unwrap();
        let wo = &o.workloads[0];
        assert!(wo.cycles_audited > 0, "jbb must run marking cycles");
        let (mut audited, mut necessary) = (0u64, 0u64);
        for s in &wo.sites {
            assert!(
                s.sole_witness + s.shielded <= s.necessary,
                "{}: audited enqueues cannot exceed necessary ones",
                s.site
            );
            audited += s.sole_witness + s.shielded;
            necessary += s.necessary;
        }
        assert!(
            necessary == 0 || audited > 0,
            "with marking cycles closing, some necessary enqueues get audited"
        );
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let opts = OracleOptions {
            workloads: vec!["nope".into()],
            ..OracleOptions::default()
        };
        assert!(measure(&opts).is_err());
    }
}
