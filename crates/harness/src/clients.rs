//! §6 framework clients: the paper closes by arguing these analyses
//! belong in "an integrated static analysis framework that provides a
//! variety of information to inform subsequent compilation steps".
//! This experiment runs two such clients over the compiled (inlined)
//! workloads:
//!
//! * **bounds-check removal** — array accesses with provably in-range
//!   indices;
//! * **stack allocation** — allocation sites whose objects cannot
//!   outlive their frame.

use std::fmt;

use wbe_analysis::{bounds, stackalloc};
use wbe_opt::{compile, OptMode, PipelineConfig};
use wbe_workloads::standard_suite;

/// Per-workload client results.
#[derive(Clone, Debug)]
pub struct ClientsRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Array-access sites with removable bounds checks.
    pub bounds_safe: usize,
    /// Total array-access sites.
    pub bounds_total: usize,
    /// Stack-allocatable allocation sites.
    pub stack_ok: usize,
    /// Total allocation sites.
    pub stack_total: usize,
}

/// The experiment result.
#[derive(Clone, Debug, Default)]
pub struct ClientsReport {
    /// Rows in suite order.
    pub rows: Vec<ClientsRow>,
}

/// Runs both clients over the inlined programs.
pub fn run() -> ClientsReport {
    let mut rows = Vec::new();
    for w in standard_suite() {
        let compiled = compile(&w.program, &PipelineConfig::new(OptMode::Full, 100));
        let mut row = ClientsRow {
            name: w.name,
            bounds_safe: 0,
            bounds_total: 0,
            stack_ok: 0,
            stack_total: 0,
        };
        for (_, m) in compiled.program.iter_methods() {
            let b = bounds::analyze_method(&compiled.program, m);
            row.bounds_safe += b.safe.len();
            row.bounds_total += b.total_sites;
            let s = stackalloc::analyze_method(&compiled.program, m);
            row.stack_ok += s.stack_allocatable.len();
            row.stack_total += s.total_sites;
        }
        rows.push(row);
    }
    ClientsReport { rows }
}

impl fmt::Display for ClientsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>22} {:>22}",
            "benchmark", "bounds checks removed", "stack-allocatable"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>15}/{:<6} {:>15}/{:<6}",
                r.name, r.bounds_safe, r.bounds_total, r.stack_ok, r.stack_total
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clients_find_work_on_the_suite() {
        let rep = run();
        assert_eq!(rep.rows.len(), 6);
        let total_bounds: usize = rep.rows.iter().map(|r| r.bounds_safe).sum();
        let total_stack: usize = rep.rows.iter().map(|r| r.stack_ok).sum();
        // javac's fresh children array and mtrt's triangle fills have
        // literal in-range indices.
        assert!(total_bounds > 0, "{rep}");
        // Most workload allocations escape by design (they feed the
        // barrier mix), but at least the un-published scratch objects
        // qualify somewhere; this mainly guards against the analysis
        // claiming everything.
        for r in &rep.rows {
            assert!(r.stack_ok <= r.stack_total);
            assert!(r.bounds_safe <= r.bounds_total);
        }
        let _ = total_stack;
    }
}
