//! Combined-techniques experiment: how much of the SATB logging traffic
//! disappears when everything in the paper (implemented and proposed)
//! is applied together — pre-null elision (§2+§3), null-or-same (§4.3),
//! and the array-rearrangement protocol (§4.3).
//!
//! The metric is the fraction of barrier executions that perform no
//! logging work: statically elided executions plus protocol member
//! stores. This is the paper's trajectory — each §4.3 technique was
//! motivated by the largest remaining store sites after the previous
//! one.

use std::fmt;

use wbe_heap::gc::MarkStyle;
use wbe_interp::{
    BarrierConfig, BarrierMode, GcPolicy, Interp, RearrangeRole, RearrangeSites, Value,
};
use wbe_opt::{compile, plan_program, OptMode, PipelineConfig, ShiftRole};
use wbe_workloads::standard_suite;

/// One workload's stacked results.
#[derive(Clone, Debug)]
pub struct CombinedRow {
    /// Benchmark name.
    pub name: &'static str,
    /// % removed by pre-null elision alone.
    pub pre_null: f64,
    /// % removed with null-or-same added.
    pub with_nos: f64,
    /// % of barrier executions doing no logging with the rearrangement
    /// protocol also active.
    pub with_rearrange: f64,
}

/// The experiment result.
#[derive(Clone, Debug, Default)]
pub struct CombinedReport {
    /// Rows in suite order.
    pub rows: Vec<CombinedRow>,
}

/// Runs the stacked experiment at `scale`.
pub fn run(scale: f64) -> CombinedReport {
    let mut rows = Vec::new();
    for w in standard_suite() {
        let iters = ((w.default_iters as f64 * scale) as i64).max(64);
        let cfg = PipelineConfig::new(OptMode::Full, 100).with_null_or_same();
        let compiled = compile(&w.program, &cfg);
        let plan = plan_program(&compiled.program);

        // Elision sets.
        let mut pre_only = wbe_interp::ElidedBarriers::new();
        for (m, a) in compiled.elided_sites() {
            pre_only.insert(m, a);
        }
        let mut with_nos = pre_only.clone();
        for (m, a) in compiled.null_or_same_sites() {
            with_nos.insert_kind(m, a, wbe_interp::ElisionKind::NullOrSame);
        }
        let mut rearrange = RearrangeSites::new();
        for (m, a, role) in plan.iter() {
            // A site already elided statically needs no protocol.
            if with_nos.contains(m, a) {
                continue;
            }
            let r = match role {
                ShiftRole::First => RearrangeRole::First,
                ShiftRole::Member => RearrangeRole::Member,
            };
            rearrange.insert(m, a, r);
        }

        let run_pct = |elided: &wbe_interp::ElidedBarriers, with_protocol: bool| -> f64 {
            let mut bc = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
            if with_protocol {
                bc = bc.with_rearrange(rearrange.clone());
            }
            let mut interp = Interp::with_style(&compiled.program, bc, MarkStyle::Satb);
            interp.set_gc_policy(GcPolicy {
                alloc_trigger: 500,
                step_interval: 32,
                step_budget: 8,
            });
            interp
                .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
                .unwrap_or_else(|t| panic!("{}: {t}", w.name));
            let total = interp
                .stats
                .barrier
                .summarize(&wbe_interp::ElidedBarriers::new())
                .total();
            let quiet = interp.stats.elided_executions + interp.stats.rearrange_skipped;
            100.0 * quiet as f64 / total.max(1) as f64
        };

        rows.push(CombinedRow {
            name: w.name,
            pre_null: run_pct(&pre_only, false),
            with_nos: run_pct(&with_nos, false),
            with_rearrange: run_pct(&with_nos, true),
        });
    }
    CombinedReport { rows }
}

impl fmt::Display for CombinedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<9} {:>10} {:>14} {:>18}",
            "benchmark", "pre-null%", "+null-or-same%", "+rearrange proto%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<9} {:>10.1} {:>14.1} {:>18.1}",
                r.name, r.pre_null, r.with_nos, r.with_rearrange
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn techniques_stack_monotonically() {
        let rep = run(0.1);
        let by: std::collections::HashMap<_, _> =
            rep.rows.iter().map(|r| (r.name, r.clone())).collect();
        for r in &rep.rows {
            assert!(r.with_nos >= r.pre_null - 1e-9, "{r:?}");
            assert!(r.with_rearrange >= r.with_nos - 1e-9, "{r:?}");
        }
        // db is transformed by the swap protocol (§4.3: >70% of its
        // stores), far beyond what pre-null could do.
        assert!(by["db"].with_rearrange > 60.0, "{:?}", by["db"]);
        assert!(by["db"].pre_null < 20.0);
        // jbb gains from all three.
        assert!(by["jbb"].with_rearrange > by["jbb"].with_nos + 5.0);
    }
}
