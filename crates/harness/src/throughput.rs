//! Multi-mutator throughput bench: `wbe_tool throughput`.
//!
//! Measures mutator throughput (interpreted instructions per second)
//! for either execution engine at 1/4/16 mutators, plus the paper's
//! Table 2 barrier-overhead deltas re-measured in *wall-clock* terms:
//! the same workload run barrier-free (`BarrierMode::None`), with the
//! always-log barrier at every site (kept), and with always-log plus
//! the analysis' elisions applied.
//!
//! Two kinds of output:
//!
//! * the **text report** carries the timing facts (ops/sec, allocation
//!   rate, overhead percentages) — inherently machine-dependent;
//! * the **NDJSON report** carries only engine-independent facts
//!   (instruction counts, allocation counts, barrier cycles, world
//!   digests). Byte-identical between `--engine classic` and
//!   `--engine compiled` for equal options — CI diffs the two.
//!
//! Every mutator is an independent engine over an independent heap
//! executing the identical deterministic instruction stream (the
//! workload entry, run in fixed chunks until the per-mutator
//! instruction budget is met), so per-mutator digests must agree and
//! aggregate counts are `mutators ×` the single-mutator counts.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, Engine, EngineKind, GcPolicy, Value};
use wbe_opt::OptMode;
use wbe_workloads::Workload;

use crate::runner::compile_workload;

/// Options for the throughput bench.
#[derive(Clone, Debug)]
pub struct ThroughputOptions {
    /// Which engine to measure.
    pub engine: EngineKind,
    /// Concurrent mutator threads (each with its own engine + heap).
    pub mutators: usize,
    /// Per-mutator instruction budget: each mutator re-runs the
    /// workload entry in fixed chunks until it has executed at least
    /// this many instructions.
    pub duration_ops: u64,
    /// Workload names (empty = `jess` and `jbb`; `all` = the suite).
    pub workloads: Vec<String>,
    /// Emit the deterministic NDJSON report instead of text.
    pub ndjson: bool,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions {
            engine: EngineKind::Classic,
            mutators: 1,
            duration_ops: 200_000,
            workloads: Vec::new(),
            ndjson: false,
        }
    }
}

/// The deterministic GC policy throughput runs drive (same as
/// `wbe_tool report` and the baselines).
pub const GC_POLICY: GcPolicy = GcPolicy {
    alloc_trigger: 400,
    step_interval: 32,
    step_budget: 4,
};

/// Deterministic per-run facts for one mutator (every mutator of a row
/// reproduces these exactly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MutatorFacts {
    /// Instructions executed.
    pub insns: u64,
    /// Abstract cycles charged.
    pub cycles: u64,
    /// Cycles charged to barriers.
    pub barrier_cycles: u64,
    /// Executions of elided stores.
    pub elided: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Completed GC cycles.
    pub gc_cycles: u64,
    /// FNV-1a digest of the final heap.
    pub digest: u64,
}

/// One workload × mutator-count measurement.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Workload name.
    pub workload: String,
    /// Mutator thread count.
    pub mutators: usize,
    /// Per-mutator deterministic facts (identical for every mutator).
    pub per_mutator: MutatorFacts,
    /// Wall-clock for the whole multi-mutator phase.
    pub wall: Duration,
    /// Wall-clock of the barrier-free (`BarrierMode::None`) build.
    pub wall_none: Duration,
    /// Wall-clock of the kept (always-log, no elision) build.
    pub wall_kept: Duration,
    /// Wall-clock of the always-log + elision build.
    pub wall_elided: Duration,
}

impl ThroughputRow {
    /// Aggregate instructions per second across all mutators.
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let total = self.per_mutator.insns * self.mutators as u64;
        total as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Aggregate allocations per second across all mutators.
    #[must_use]
    pub fn allocs_per_sec(&self) -> f64 {
        let total = self.per_mutator.allocs * self.mutators as u64;
        total as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Wall-clock overhead of the kept (always-log everywhere) build
    /// over the barrier-free build, in percent.
    #[must_use]
    pub fn overhead_kept_pct(&self) -> f64 {
        overhead_pct(self.wall_none, self.wall_kept)
    }

    /// Wall-clock overhead of the always-log + elision build over the
    /// barrier-free build, in percent.
    #[must_use]
    pub fn overhead_elided_pct(&self) -> f64 {
        overhead_pct(self.wall_none, self.wall_elided)
    }
}

fn overhead_pct(base: Duration, cfg: Duration) -> f64 {
    let b = base.as_secs_f64().max(1e-9);
    (cfg.as_secs_f64() - b) / b * 100.0
}

/// Runs one mutator to its instruction budget and returns its
/// deterministic facts. The workload entry is re-run in fixed chunks
/// (a pure function of the workload) until `duration_ops` instructions
/// have executed, so equal options execute identical streams.
fn run_mutator(
    engine: &mut dyn Engine,
    w: &Workload,
    duration_ops: u64,
) -> Result<MutatorFacts, wbe_interp::Trap> {
    let chunk = (w.default_iters / 10).max(8);
    while engine.stats().insns < duration_ops {
        engine.run(w.entry, &[Value::Int(chunk)], w.fuel_for(chunk))?;
    }
    let s = engine.stats();
    Ok(MutatorFacts {
        insns: s.insns,
        cycles: s.cycles,
        barrier_cycles: s.barrier_cycles,
        elided: s.elided_executions,
        allocs: engine.heap().stats.allocations,
        gc_cycles: engine.heap().gc.stats.cycles,
        digest: wbe_heap::debug::world_digest(engine.heap()),
    })
}

/// Measures one workload under `opts`: the multi-mutator throughput
/// phase (checked barriers + elision + GC policy — the realistic
/// configuration) and the single-mutator barrier-overhead trio
/// (GC policy off; the paper's Table 2 configurations).
///
/// # Panics
///
/// Panics if the workload traps or two mutators disagree on the final
/// heap digest — both indicate engine bugs.
pub fn measure_workload(w: &Workload, opts: &ThroughputOptions) -> ThroughputRow {
    let (compiled, elided) = compile_workload(w, OptMode::Full, 100);
    let program = &compiled.program;
    let realistic = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());

    // Multi-mutator phase: N independent engines over independent
    // heaps, identical instruction streams.
    let start = Instant::now();
    let facts: Vec<MutatorFacts> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..opts.mutators)
            .map(|_| {
                let config = realistic.clone();
                s.spawn(move || {
                    let mut engine = opts.engine.build(program, config, MarkStyle::Satb);
                    engine.set_gc_policy(GC_POLICY);
                    run_mutator(engine.as_mut(), w, opts.duration_ops)
                        .unwrap_or_else(|t| panic!("workload {} trapped: {t}", w.name))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    for f in &facts[1..] {
        assert_eq!(
            f, &facts[0],
            "{}: mutators diverged under engine {}",
            w.name, opts.engine
        );
    }

    // Barrier-overhead trio: single mutator, GC policy off (the
    // always-log barrier still pays its cost; with the collector idle
    // the log entries are dropped, mirroring the paper's throughput
    // configuration where marking is not concurrently active).
    let trio = |config: BarrierConfig| -> Duration {
        let start = Instant::now();
        let mut engine = opts.engine.build(program, config, MarkStyle::Satb);
        run_mutator(engine.as_mut(), w, opts.duration_ops)
            .unwrap_or_else(|t| panic!("workload {} trapped: {t}", w.name));
        start.elapsed()
    };
    let wall_none = trio(BarrierConfig::new(BarrierMode::None));
    let wall_kept = trio(BarrierConfig::new(BarrierMode::AlwaysLog));
    let wall_elided = trio(BarrierConfig::with_elision(
        BarrierMode::AlwaysLog,
        elided.clone(),
    ));

    ThroughputRow {
        workload: w.name.to_string(),
        mutators: opts.mutators,
        per_mutator: facts[0],
        wall,
        wall_none,
        wall_kept,
        wall_elided,
    }
}

/// Resolves `opts.workloads` into workload structs (empty = jess +
/// jbb; the literal `all` = the standard suite).
///
/// # Errors
///
/// Returns the first unknown workload name.
pub fn resolve_workloads(names: &[String]) -> Result<Vec<Workload>, String> {
    if names.is_empty() {
        return Ok(vec![
            wbe_workloads::by_name("jess").expect("jess exists"),
            wbe_workloads::by_name("jbb").expect("jbb exists"),
        ]);
    }
    if names.len() == 1 && names[0] == "all" {
        return Ok(wbe_workloads::standard_suite());
    }
    names
        .iter()
        .map(|n| wbe_workloads::by_name(n).ok_or_else(|| format!("unknown workload '{n}'")))
        .collect()
}

/// Runs the bench over the resolved workloads.
///
/// # Errors
///
/// Returns the first unknown workload name.
pub fn run_throughput(opts: &ThroughputOptions) -> Result<Vec<ThroughputRow>, String> {
    Ok(resolve_workloads(&opts.workloads)?
        .iter()
        .map(|w| measure_workload(w, opts))
        .collect())
}

/// Renders the machine-dependent text report (timings included).
#[must_use]
pub fn render_text(rows: &[ThroughputRow], opts: &ThroughputOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "throughput: engine {} / {} mutator(s) / {} ops per mutator",
        opts.engine, opts.mutators, opts.duration_ops
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>12.0} ops/s  {:>10.0} allocs/s  ({} insns, {} allocs, {} gc cycles per mutator)",
            r.workload,
            r.ops_per_sec(),
            r.allocs_per_sec(),
            r.per_mutator.insns,
            r.per_mutator.allocs,
            r.per_mutator.gc_cycles,
        );
        let _ = writeln!(
            out,
            "{:<8} barrier overhead vs barrier-free: kept {:+.1}%, elided {:+.1}%  \
             (elided barriers skipped: {})",
            "",
            r.overhead_kept_pct(),
            r.overhead_elided_pct(),
            r.per_mutator.elided,
        );
    }
    out
}

/// Renders the deterministic NDJSON report: one line per workload,
/// engine-independent facts only (no engine name, no wall-clock), so
/// classic and compiled runs with equal options produce byte-identical
/// output.
#[must_use]
pub fn render_ndjson(rows: &[ThroughputRow], opts: &ThroughputOptions) -> String {
    let mut out = String::new();
    for r in rows {
        let mut w = wbe_telemetry::json::ObjWriter::new(&mut out);
        w.field_str("workload", &r.workload)
            .field_u64("mutators", r.mutators as u64)
            .field_u64("duration_ops", opts.duration_ops)
            .field_u64("insns", r.per_mutator.insns)
            .field_u64("cycles", r.per_mutator.cycles)
            .field_u64("barrier_cycles", r.per_mutator.barrier_cycles)
            .field_u64("elided", r.per_mutator.elided)
            .field_u64("allocs", r.per_mutator.allocs)
            .field_u64("gc_cycles", r.per_mutator.gc_cycles)
            .field_str("digest", &format!("{:#018x}", r.per_mutator.digest));
        w.finish();
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts(engine: EngineKind, mutators: usize) -> ThroughputOptions {
        ThroughputOptions {
            engine,
            mutators,
            duration_ops: 20_000,
            workloads: vec!["jess".into()],
            ndjson: false,
        }
    }

    #[test]
    fn classic_and_compiled_ndjson_reports_are_identical() {
        let classic = run_throughput(&small_opts(EngineKind::Classic, 2)).unwrap();
        let compiled = run_throughput(&small_opts(EngineKind::Compiled, 2)).unwrap();
        let a = render_ndjson(&classic, &small_opts(EngineKind::Classic, 2));
        let b = render_ndjson(&compiled, &small_opts(EngineKind::Compiled, 2));
        assert_eq!(a, b, "deterministic facts must not depend on the engine");
        assert!(a.lines().count() == 1);
        assert!(a.contains("\"digest\":\"0x"));
    }

    #[test]
    fn mutator_counts_scale_aggregates_not_facts() {
        let one = run_throughput(&small_opts(EngineKind::Compiled, 1)).unwrap();
        let four = run_throughput(&small_opts(EngineKind::Compiled, 4)).unwrap();
        // Per-mutator facts are invariant in the mutator count; only
        // the aggregate scales.
        assert_eq!(one[0].per_mutator, four[0].per_mutator);
        assert_eq!(four[0].mutators, 4);
    }

    #[test]
    fn unknown_workload_is_reported() {
        let opts = ThroughputOptions {
            workloads: vec!["nope".into()],
            ..ThroughputOptions::default()
        };
        assert!(run_throughput(&opts).is_err());
    }
}
