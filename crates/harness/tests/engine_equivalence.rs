//! Differential-equivalence suite: the classic switch interpreter and
//! the direct-threaded compiled engine must be observably identical.
//!
//! Every workload in the standard suite runs under both engines with
//! the realistic configuration (checked barriers + elision + the
//! deterministic GC policy), then again with a seeded fault plan,
//! invariant verification, and the self-healing recovery layer armed.
//! Everything the run computes is compared: the run result (value or
//! trap), every scalar in `RunStats`, the pause reports, the full
//! per-site `BarrierStats` map, the ledger keep-code cycle join, the
//! final world digest, and the recovery counters.

use std::collections::BTreeMap;

use wbe_harness::runner::compile_workload_with;
use wbe_heap::gc::MarkStyle;
use wbe_heap::{FaultConfig, FaultPlan, RecoveryPolicy};
use wbe_interp::{
    BarrierConfig, BarrierMode, ElidedBarriers, EngineKind, GcPolicy, SiteStats, Trap, Value,
};
use wbe_opt::{Compiled, OptMode, PipelineConfig};
use wbe_workloads::Workload;

/// Iteration scale (fraction of each workload's default count).
const SCALE: f64 = 0.05;

/// Deterministic marking schedule shared by every run in this file.
const GC: GcPolicy = GcPolicy {
    alloc_trigger: 400,
    step_interval: 32,
    step_budget: 4,
};

/// Seeds for the fault-plan leg. The first is the baselines' pinned
/// recovery seed; the second is an arbitrary different stream.
const FAULT_SEEDS: [u64; 2] = [0x00C0_FFEE, 0xDEAD_BEEF];
/// Post-remark mark-corruption rate (per mille) for the fault leg.
const CORRUPT_PM: u16 = 400;

/// Everything one engine run computes, in comparable form.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Result<Option<Value>, Trap>,
    insns: u64,
    cycles: u64,
    barrier_cycles: u64,
    elided_executions: u64,
    rearrange_skipped: u64,
    retraces_scheduled: u64,
    stack_allocated: u64,
    stack_freed: u64,
    gc_cycles: u64,
    emergency_pauses: u64,
    alloc_retries: u64,
    /// Pause reports, rendered (PauseReport has no `PartialEq`; the
    /// Debug form captures every field).
    pauses: String,
    /// Sorted full per-site barrier map.
    barrier_map: Vec<((usize, usize, usize, String), SiteStats)>,
    /// Barrier cycles joined to ledger keep-codes (the profiler join).
    ledger_join: BTreeMap<String, u64>,
    digest: u64,
    recovery: Option<(u64, u64)>,
}

/// Runs `w` once under `kind` and snapshots every observable.
fn observe(
    kind: EngineKind,
    compiled: &Compiled,
    elided: &ElidedBarriers,
    w: &Workload,
    fault_seed: Option<u64>,
) -> Observed {
    let config = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
    let mut engine = kind.build(&compiled.program, config, MarkStyle::Satb);
    engine.set_gc_policy(GC);
    if let Some(seed) = fault_seed {
        engine.set_fault_plan(FaultPlan::new(FaultConfig {
            corrupt_mark_pm: CORRUPT_PM,
            ..FaultConfig::from_seed(seed)
        }));
        engine.set_verify_invariants(true);
        engine.set_recovery(RecoveryPolicy { max_attempts: 5 });
    }
    let iters = ((w.default_iters as f64 * SCALE) as i64).max(8);
    let result = engine.run(w.entry, &[Value::Int(iters)], w.fuel_for(iters));

    let s = engine.stats();
    let mut barrier_map: Vec<_> = s
        .barrier
        .iter()
        .map(|(&(m, a, k), st)| ((m.index(), a.block.index(), a.index, format!("{k:?}")), *st))
        .collect();
    barrier_map.sort_by(|a, b| a.0.cmp(&b.0));

    // The profiler's keep-code join: barrier cycles at kept sites
    // attributed to the ledger's keep reason.
    let mut ledger_join = BTreeMap::new();
    if let Some(ledger) = compiled.ledger.as_ref() {
        let index = ledger.index();
        for (&(mid, addr, _), stats) in s.barrier.iter() {
            if elided.contains(mid, addr) {
                continue;
            }
            let method = compiled.program.method(mid).name.as_str();
            let code = index
                .get(&(method, addr.block.index(), addr.index))
                .filter(|rec| !rec.keep_code.is_empty())
                .map_or_else(|| "unattributed".to_string(), |rec| rec.keep_code.clone());
            *ledger_join.entry(code).or_insert(0) += stats.cycles;
        }
    }

    Observed {
        result,
        insns: s.insns,
        cycles: s.cycles,
        barrier_cycles: s.barrier_cycles,
        elided_executions: s.elided_executions,
        rearrange_skipped: s.rearrange_skipped,
        retraces_scheduled: s.retraces_scheduled,
        stack_allocated: s.stack_allocated,
        stack_freed: s.stack_freed,
        gc_cycles: s.gc_cycles,
        emergency_pauses: s.emergency_pauses,
        alloc_retries: s.alloc_retries,
        pauses: format!("{:?}", s.pauses),
        barrier_map,
        ledger_join,
        digest: wbe_heap::debug::world_digest(engine.heap()),
        recovery: engine
            .recovery()
            .map(|rc| (rc.stats.attempted, rc.stats.succeeded)),
    }
}

fn assert_equivalent(w: &Workload, fault_seed: Option<u64>) {
    let cfg = PipelineConfig::new(OptMode::Full, 100).with_ledger();
    let (compiled, elided) = compile_workload_with(w, &cfg);
    let classic = observe(EngineKind::Classic, &compiled, &elided, w, fault_seed);
    let compiled_obs = observe(EngineKind::Compiled, &compiled, &elided, w, fault_seed);
    assert_eq!(
        classic, compiled_obs,
        "{} (fault_seed {fault_seed:?}): engines diverged",
        w.name
    );
    // The runs must have actually exercised the machinery being
    // compared, or the equivalence is vacuous.
    assert!(classic.insns > 0, "{}: ran no instructions", w.name);
    assert!(
        !classic.barrier_map.is_empty(),
        "{}: no barrier sites executed",
        w.name
    );
}

#[test]
fn six_workloads_equivalent() {
    let suite = wbe_workloads::standard_suite();
    assert_eq!(
        suite.len(),
        6,
        "the standard suite is the six Table 1 mimics"
    );
    for w in &suite {
        assert_equivalent(w, None);
    }
}

#[test]
fn six_workloads_equivalent_under_seeded_faults() {
    for w in &wbe_workloads::standard_suite() {
        for seed in FAULT_SEEDS {
            assert_equivalent(w, Some(seed));
        }
    }
}

/// Fuel exhaustion is part of the observable contract: both engines
/// must trap `OutOfFuel` after executing exactly the same number of
/// instructions, with identical partial statistics.
#[test]
fn fuel_exhaustion_traps_identically() {
    for w in &wbe_workloads::standard_suite() {
        let cfg = PipelineConfig::new(OptMode::Full, 100).with_ledger();
        let (compiled, elided) = compile_workload_with(w, &cfg);
        for fuel in [1u64, 97, 1000] {
            let run = |kind: EngineKind| {
                let config = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
                let mut engine = kind.build(&compiled.program, config, MarkStyle::Satb);
                engine.set_gc_policy(GC);
                let r = engine.run(w.entry, &[Value::Int(1 << 20)], fuel);
                (r, engine.stats().insns, engine.stats().cycles)
            };
            let (cr, ci, cc) = run(EngineKind::Classic);
            let (pr, pi, pc) = run(EngineKind::Compiled);
            assert_eq!(cr, Err(Trap::OutOfFuel), "{} fuel {fuel}", w.name);
            assert_eq!((cr, ci, cc), (pr, pi, pc), "{} fuel {fuel}", w.name);
        }
    }
}
