//! End-to-end contracts for the provenance-ledger commands:
//! `explain` names the first failing condition at every kept site of
//! the paper's example programs, `ledger-diff` catches a flipped
//! ledger with exit 1, and `mcheck --trace-out` writes valid Chrome
//! trace-event JSON.

use std::path::PathBuf;
use std::process::Command;

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wbe_tool"))
}

/// The paper's example programs (Fig. 2 expand, Fig. 3 hashtable, the
/// §2.4 w1/w2 motivating example), shipped in `testdata/`.
fn testdata(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../testdata")
        .join(name);
    path.to_str().unwrap().to_string()
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("wbe_ledger_cli_{}_{name}", std::process::id()));
    p.to_str().unwrap().to_string()
}

#[test]
fn explain_names_a_condition_for_every_kept_site_in_the_paper_examples() {
    let mut total_keeps = 0;
    let mut total_elides = 0;
    for file in ["expand.wbe", "hashtable.wbe", "w1w2.wbe"] {
        // Machine view: every keep record carries a nonempty keep_code.
        let out = tool()
            .args(["ledger", &testdata(file)])
            .output()
            .expect("spawn wbe_tool");
        assert!(out.status.success(), "{file}");
        let ndjson = String::from_utf8_lossy(&out.stdout);
        let mut keeps = 0;
        for line in ndjson.lines() {
            let v = wbe_telemetry::json::parse(line).unwrap_or_else(|e| panic!("{file}: {e}"));
            match v.get("verdict").unwrap().as_str().unwrap() {
                "elide" => total_elides += 1,
                "keep" => {
                    keeps += 1;
                    let code = v.get("keep_code").unwrap().as_str().unwrap();
                    assert!(!code.is_empty(), "{file}: keep site without a condition");
                    let detail = v.get("keep_detail").unwrap().as_str().unwrap();
                    assert!(!detail.is_empty(), "{file}: keep site without detail");
                }
                other => panic!("{file}: unexpected verdict {other}"),
            }
        }
        total_keeps += keeps;

        // Human view agrees: a KEEP stanza with its failing condition
        // wherever the ledger has one.
        let out = tool()
            .args(["explain", &testdata(file)])
            .output()
            .expect("spawn wbe_tool");
        assert!(out.status.success(), "{file}");
        let text = String::from_utf8_lossy(&out.stdout);
        if keeps > 0 {
            assert!(text.contains("KEEP — "), "{file}:\n{text}");
            assert!(text.contains("first failing condition:"), "{file}:\n{text}");
        }
    }
    // The examples exercise both verdicts: expand elides its aastore,
    // hashtable keeps its escaping store, w1w2 has one of each.
    assert!(total_keeps >= 2, "expected kept barriers in the examples");
    assert!(
        total_elides >= 2,
        "expected elided barriers in the examples"
    );
}

#[test]
fn ledger_diff_exit_contract() {
    let a = tmp("a.ndjson");
    let b = tmp("b.ndjson");
    let src = testdata("expand.wbe");
    assert!(tool()
        .args(["ledger", &src, "--out", &a])
        .status()
        .unwrap()
        .success());
    assert!(tool()
        .args(["ledger", &src, "--demo-flip", "--out", &b])
        .status()
        .unwrap()
        .success());

    // Identical ledgers: exit 0.
    let same = tool().args(["ledger-diff", &a, &a]).output().unwrap();
    assert_eq!(same.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&same.stdout).contains("identical"));

    // Flipped ledger: regressions, exit 1, each flip named.
    let out = tool().args(["ledger-diff", &a, &b]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "flip must be a regression");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSION newly-kept"), "{text}");

    // The reverse direction is an improvement: exit 0.
    let rev = tool().args(["ledger-diff", &b, &a]).output().unwrap();
    assert_eq!(rev.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&rev.stdout).contains("newly-elided"));

    // Missing or malformed input: exit 2.
    let missing = tool()
        .args(["ledger-diff", "/nonexistent.ndjson", &a])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn ledger_is_byte_identical_across_processes() {
    let src = testdata("hashtable.wbe");
    let run = || {
        let out = tool().args(["ledger", &src]).output().unwrap();
        assert!(out.status.success());
        out.stdout
    };
    assert_eq!(run(), run(), "ledger must be deterministic");
}

#[test]
fn mcheck_trace_out_is_valid_chrome_trace_json() {
    let path = tmp("mcheck_trace.json");
    let out = tool()
        .args([
            "mcheck",
            "--threads",
            "2",
            "--schedules",
            "6",
            "--ops",
            "12",
            "--seed",
            "1",
            "--trace-out",
            &path,
        ])
        .output()
        .expect("spawn wbe_tool");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let body = std::fs::read_to_string(&path).expect("trace file written");
    let v = wbe_telemetry::json::parse(&body).expect("valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must contain events");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
        .collect();
    assert!(
        names.iter().any(|n| n.starts_with("sched.")),
        "GC timeline instants present: {names:?}"
    );
    for e in events {
        assert!(e.get("ph").is_some() && e.get("ts").is_some() && e.get("pid").is_some());
    }
    std::fs::remove_file(&path).ok();
}
