//! `wbe_tool` exit-code contract: 0 on success, nonzero when a run
//! traps or verification fails, 2 on usage errors.

use std::process::Command;

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wbe_tool"))
}

#[test]
fn fault_verification_passes_with_zero_exit() {
    let out = tool()
        .args([
            "verify", "jess", "--faults", "2", "--seed", "42", "--scale", "0.02",
        ])
        .output()
        .expect("spawn wbe_tool");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout:\n{stdout}");
    assert!(stdout.contains("jess"), "{stdout}");
    assert!(stdout.contains("verification passed"), "{stdout}");
}

#[test]
fn demo_unsound_is_detected_and_reported() {
    let out = tool()
        .args([
            "verify",
            "db",
            "--faults",
            "2",
            "--scale",
            "0.02",
            "--demo-unsound",
        ])
        .output()
        .expect("spawn wbe_tool");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Detection of the deliberately-unsound elision is a PASS for the
    // harness (the machinery caught it), so the exit code stays 0.
    assert!(out.status.success(), "stdout:\n{stdout}");
    assert!(stdout.contains("demo     PASS"), "{stdout}");
    assert!(stdout.contains("UNSOUND"), "{stdout}");
}

#[test]
fn trapping_run_exits_nonzero() {
    // The jess entry takes one int argument; passing none traps with
    // BadArgCount, which must surface as exit code 1.
    let w = wbe_workloads::by_name("jess").unwrap();
    let entry_name = w.program.method(w.entry).name.clone();
    let out = tool()
        .args(["run", "jess", &entry_name])
        .output()
        .expect("spawn wbe_tool");
    assert_eq!(out.status.code(), Some(1), "trap must exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trap"), "{stderr}");
}

#[test]
fn missing_file_exits_nonzero() {
    let out = tool()
        .args(["verify", "/nonexistent/path.wbe"])
        .output()
        .expect("spawn wbe_tool");
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn usage_error_exits_two() {
    let out = tool()
        .args(["frobnicate"])
        .output()
        .expect("spawn wbe_tool");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn mcheck_stock_workloads_exit_zero() {
    let out = tool()
        .args([
            "mcheck",
            "--threads",
            "2",
            "--schedules",
            "12",
            "--seed",
            "1",
            "--ops",
            "16",
        ])
        .output()
        .expect("spawn wbe_tool");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "stdout:\n{stdout}");
    assert!(stdout.contains("mcheck: sound"), "{stdout}");
    assert!(stdout.contains("schedules/sec"), "{stdout}");
}

#[test]
fn mcheck_demo_unsound_exits_one_with_replayable_seed() {
    let out = tool()
        .args([
            "mcheck",
            "--threads",
            "2",
            "--schedules",
            "200",
            "--seed",
            "1",
            "--ops",
            "16",
            "--scenario",
            "churn",
            "--demo-unsound",
        ])
        .output()
        .expect("spawn wbe_tool");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout:\n{stdout}");
    assert!(stdout.contains("mcheck: UNSOUND"), "{stdout}");
    // The report hands back a full replay command line; running it
    // must reproduce the violation with the same exit code.
    let replay_line = stdout
        .lines()
        .find(|l| l.contains("reproduce: wbe_tool mcheck"))
        .expect("replay handle printed");
    let replay_args: Vec<&str> = replay_line
        .split("wbe_tool mcheck")
        .nth(1)
        .unwrap()
        .split_whitespace()
        .collect();
    let out2 = tool().arg("mcheck").args(&replay_args).output().unwrap();
    let stdout2 = String::from_utf8_lossy(&out2.stdout);
    assert_eq!(out2.status.code(), Some(1), "stdout:\n{stdout2}");
    assert!(stdout2.contains("UNSOUND"), "{stdout2}");
}

#[test]
fn mcheck_bad_flag_exits_two() {
    let out = tool()
        .args(["mcheck", "--threads", "not-a-number"])
        .output()
        .expect("spawn wbe_tool");
    assert_eq!(out.status.code(), Some(2));
}
