//! Hot-loop telemetry audit: with telemetry disabled, a full run under
//! either engine must make *no* registry calls at all.
//!
//! The registry registers a metric lazily on first touch, so an empty
//! snapshot after a disabled run is a proof that the hot loop (and the
//! run-boundary publish) never reached `counter()`/`gauge()`/
//! `histogram()` — not merely that the values stayed zero. The per-insn
//! counters live in the engines' plain `RunStats`/`Counts` structs and
//! are folded into the registry only by an explicit, gated
//! `publish_metrics`; this test is the regression gate for that
//! contract.
//!
//! Lives in its own integration-test file so it owns the process: no
//! other test can touch the process-global registry first.

use wbe_harness::runner::compile_workload_with;
use wbe_heap::gc::MarkStyle;
use wbe_interp::{BarrierConfig, BarrierMode, EngineKind, GcPolicy, Value};
use wbe_opt::{OptMode, PipelineConfig};

#[test]
fn disabled_telemetry_makes_no_registry_calls() {
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig::off());

    let w = wbe_workloads::by_name("db").expect("db is a standard workload");
    let cfg = PipelineConfig::new(OptMode::Full, 100);
    let (compiled, elided) = compile_workload_with(&w, &cfg);
    let iters = ((w.default_iters as f64 * 0.05) as i64).max(8);

    for kind in [EngineKind::Classic, EngineKind::Compiled] {
        let config = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
        let mut engine = kind.build(&compiled.program, config, MarkStyle::Satb);
        engine.set_gc_policy(GcPolicy {
            alloc_trigger: 400,
            step_interval: 32,
            step_budget: 4,
        });
        engine
            .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
            .unwrap_or_else(|t| panic!("{}: trapped: {t}", kind.name()));
        // The run-boundary publish is the one place the engines talk to
        // the registry; it must bail out before resolving any metric.
        engine.publish_metrics();
        assert!(engine.stats().insns > 0, "{}: ran nothing", kind.name());
    }

    let snap = wbe_telemetry::registry::global().snapshot();
    assert!(
        snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty(),
        "disabled run touched the registry: counters {:?}, gauges {:?}, histograms {:?}",
        snap.counters.keys().collect::<Vec<_>>(),
        snap.gauges.keys().collect::<Vec<_>>(),
        snap.histograms.keys().collect::<Vec<_>>(),
    );

    // Sanity check on the proof technique: with metrics re-enabled the
    // very same publish path does register — the emptiness above can't
    // be explained by publish_metrics being a no-op in this build.
    wbe_telemetry::configure(wbe_telemetry::TelemetryConfig {
        metrics: true,
        tracing: false,
    });
    let config = BarrierConfig::with_elision(BarrierMode::Checked, elided.clone());
    let mut engine = EngineKind::Compiled.build(&compiled.program, config, MarkStyle::Satb);
    engine
        .run(w.entry, &[Value::Int(iters)], w.fuel_for(iters))
        .unwrap_or_else(|t| panic!("enabled run trapped: {t}"));
    let snap = wbe_telemetry::registry::global().snapshot();
    assert!(
        snap.counter("interp.insns").is_some_and(|v| v > 0),
        "enabled control run registered nothing — the proof above is vacuous"
    );
}
