//! Golden regression: Table 1 at a fixed scale is fully deterministic
//! (no wall-clock columns), so we pin the exact rendered output. If a
//! workload or analysis change shifts these numbers intentionally,
//! update the golden text and re-check the shape against the paper.

#[test]
fn table1_output_is_pinned() {
    let t = wbe_harness::table1::run(0.1);
    let rendered = t.to_string();
    let golden = "\
benchmark Total x10^3  % elim  % Pot.pre0 Field/Array  Fld%el  Arr%el
jess             0.8    50.0        75.0       50/50   100.0     0.0
db               3.1    11.9        34.7       12/88   100.0     0.0
javac            2.1    31.1        37.9       88/12    33.4    15.0
mtrt             0.3    60.0       100.0       40/60    75.0    50.0
jack             1.1    37.5        50.0       75/25    50.0     0.0
jbb             30.3    25.4        50.8       66/34    38.3     0.0
";
    assert_eq!(rendered, golden, "\nrendered:\n{rendered}");
}
