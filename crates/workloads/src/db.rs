//! `db`-like workload: an in-memory database dominated by sorting.
//!
//! SPECjvm98 `db` spends most of its stores in a sort routine that
//! swaps elements of an object array — §4.3 notes its top two store
//! sites (over 70% of stores) are the swap idiom and are *never*
//! pre-null. Table 1 profile: ~10/90 field/array split, 99.4% of the
//! few field stores eliminated, no array stores eliminated, 28%
//! potentially pre-null.
//!
//! Per iteration: 1 initializing constructor store, 3 element swaps
//! (6 never-pre-null `aastore`s) in an escaped table, and 2 append-only
//! `aastore`s (pre-null but escaped).

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::Ty;

use crate::helpers::{counted_loop, emit_library, lcg_step, Bound};
use crate::Workload;

/// Builds the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let entry = pb.class("Entry");
    let next = pb.field(entry, "next", Ty::Ref(entry));
    let _key = pb.field(entry, "key", Ty::Int);
    let pads: Vec<_> = (0..8)
        .map(|k| pb.field(entry, format!("pad{k}"), Ty::Int))
        .collect();
    let table = pb.static_field("table", Ty::RefArray(entry));
    let buf = pb.static_field("result_buf", Ty::RefArray(entry));
    let buf_idx = pb.static_field("result_idx", Ty::Int);

    // Entry::<init>(this, n) — ctor size ~30 (inlined at limit 50+).
    let ctor = pb.declare_constructor(entry, vec![Ty::Ref(entry)]);
    pb.define_method(ctor, 0, |mb| {
        let this = mb.local(0);
        let n = mb.local(1);
        mb.load(this).load(n).putfield(next);
        for (k, &pf) in pads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });

    let library = emit_library(&mut pb, "db", 2);

    // setup(iters): allocate and FILL the table so swaps never see null.
    let setup = pb.method("db_setup", vec![Ty::Int], None, 2, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let prev = mb.local(2);
        mb.load(iters).invoke(library).pop();
        mb.iconst(32).new_ref_array(entry).putstatic(table);
        mb.load(iters)
            .iconst(2)
            .mul()
            .iconst(4)
            .add()
            .new_ref_array(entry)
            .putstatic(buf);
        mb.iconst(0).putstatic(buf_idx);
        mb.const_null().store(prev);
        counted_loop(mb, i, Bound::Const(32), |mb| {
            mb.new_object(entry)
                .dup()
                .load(prev)
                .invoke(ctor)
                .store(prev);
            mb.getstatic(table).load(i).load(prev).aastore();
        });
        mb.return_();
    });

    let main = pb.method("db_main", vec![Ty::Int], None, 5, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let prev = mb.local(2);
        let seed = mb.local(3);
        let j = mb.local(4);
        let t = mb.local(5);
        mb.load(iters).invoke(setup);
        mb.const_null().store(prev);
        mb.iconst(0xBEEF).store(seed);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            // e = new Entry(prev); prev = e;
            mb.new_object(entry)
                .dup()
                .load(prev)
                .invoke(ctor)
                .store(prev);
            // Three swaps at pseudo-random positions: the sort idiom.
            for shift in [0i64, 5, 10] {
                lcg_step(mb, seed);
                // j = (seed >> shift) & 31; k = j ^ 17 (stays in range)
                mb.load(seed).iconst(shift).shr().iconst(31).and().store(j);
                // t = table[j];
                mb.getstatic(table).load(j).aaload().store(t);
                // table[j] = table[j ^ 17];
                mb.getstatic(table)
                    .load(j)
                    .getstatic(table)
                    .load(j)
                    .iconst(17)
                    .xor()
                    .aaload()
                    .aastore();
                // table[j ^ 17] = t;
                mb.getstatic(table)
                    .load(j)
                    .iconst(17)
                    .xor()
                    .load(t)
                    .aastore();
            }
            // Two result appends.
            for _ in 0..2 {
                mb.getstatic(buf).getstatic(buf_idx).load(prev).aastore();
                mb.getstatic(buf_idx).iconst(1).add().putstatic(buf_idx);
            }
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: "db",
        program,
        entry: main,
        default_iters: 3_350,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_and_is_array_dominated() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(200)], w.fuel_for(200))
            .expect("db runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        // Setup: 32 ctor stores + 32 fills. Main: per iter 1 field,
        // 6 swaps + 2 appends.
        assert_eq!(s.field_total, 232);
        assert_eq!(s.array_total, 32 + 200 * 8);
        // Array share ≈ 87%: matches the paper's 90/10 profile.
        assert!(s.pct_field() < 15.0, "{}", s.pct_field());
        // Swap stores are never pre-null once warmed up; appends are.
        assert_eq!(s.array_potential_pre_null, 32 + 400);
        assert_eq!(s.field_potential_pre_null, s.field_total);
    }
}
