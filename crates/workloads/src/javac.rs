//! `javac`-like workload: AST construction plus symbol-table mutation.
//!
//! A compiler allocates tree nodes (initializing stores) but also
//! updates an escaped symbol table and tree heavily. Table 1 profile:
//! ~92/8 field/array split, 33.9% of field stores eliminated, 20.5% of
//! array stores eliminated, 38.5% potentially pre-null.
//!
//! Per iteration: 2 initializing field stores on a fresh `Node`
//! (constructor + post-constructor), 4 overwriting field stores on
//! escaped objects (tree root rewiring + 3 symbol redefinitions).
//! Every 8th iteration runs the array kernel: 1 fill of a fresh
//! children array (eliminated), 2 append-only stores, 2 ring stores.

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::{CmpOp, Ty};

use crate::helpers::{counted_loop, emit_library, lcg_step, Bound};
use crate::Workload;

/// Builds the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let node = pb.class("Node");
    let left = pb.field(node, "left", Ty::Ref(node));
    let right = pb.field(node, "right", Ty::Ref(node));
    let npads: Vec<_> = (0..12)
        .map(|k| pb.field(node, format!("pad{k}"), Ty::Int))
        .collect();
    let sym = pb.class("Sym");
    let def = pb.field(sym, "def", Ty::Ref(node));
    let root_s = pb.static_field("root", Ty::Ref(node));
    let symtab = pb.static_field("symtab", Ty::RefArray(sym));
    let pool = pb.static_field("node_pool", Ty::RefArray(node));
    let kidlog = pb.static_field("kid_log", Ty::RefArray(node));
    let kidx = pb.static_field("kid_idx", Ty::Int);

    // Node::<init>(this, l) — ctor size ~45 (inlined at limit 50+).
    let nctor = pb.declare_constructor(node, vec![Ty::Ref(node)]);
    pb.define_method(nctor, 0, |mb| {
        let this = mb.local(0);
        let l = mb.local(1);
        mb.load(this).load(l).putfield(left);
        for (k, &pf) in npads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });

    let library = emit_library(&mut pb, "javac", 3);

    let setup = pb.method("javac_setup", vec![Ty::Int], None, 1, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        mb.load(iters).invoke(library).pop();
        mb.new_object(node)
            .dup()
            .const_null()
            .invoke(nctor)
            .putstatic(root_s);
        mb.iconst(64).new_ref_array(sym).putstatic(symtab);
        mb.iconst(128).new_ref_array(node).putstatic(pool);
        mb.load(iters)
            .iconst(4)
            .add()
            .new_ref_array(node)
            .putstatic(kidlog);
        mb.iconst(0).putstatic(kidx);
        counted_loop(mb, i, Bound::Const(64), |mb| {
            mb.getstatic(symtab).load(i).new_object(sym).aastore();
        });
        mb.return_();
    });

    let main = pb.method("javac_main", vec![Ty::Int], None, 7, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let prev = mb.local(2);
        let n = mb.local(3);
        let seed = mb.local(4);
        let arr = mb.local(5);
        let sl = mb.local(6);
        let dl = mb.local(7);
        mb.load(iters).invoke(setup);
        mb.const_null().store(prev);
        mb.iconst(0xACE).store(seed);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            // n = new Node(prev); n.right = prev;   (2 initializing)
            mb.new_object(node).dup().load(prev).invoke(nctor).store(n);
            mb.load(n).load(prev).putfield(right);
            // root.left = n;                        (escaped overwrite)
            mb.getstatic(root_s).load(n).putfield(left);
            // 2 plain symbol redefinitions...
            for shift in [0i64, 6] {
                lcg_step(mb, seed);
                mb.getstatic(symtab)
                    .load(seed)
                    .iconst(shift)
                    .shr()
                    .iconst(63)
                    .and()
                    .aaload()
                    .load(n)
                    .putfield(def);
            }
            // ...and one Hashtable-style null-or-same redefinition
            // (§4.3): d = s.def; if (d == null) d = n; s.def = d;
            lcg_step(mb, seed);
            mb.getstatic(symtab)
                .load(seed)
                .iconst(12)
                .shr()
                .iconst(63)
                .and()
                .aaload()
                .store(sl);
            mb.load(sl).getfield(def).store(dl);
            let set_b = mb.new_block();
            let join_b = mb.new_block();
            mb.load(dl).if_null(set_b, join_b);
            mb.switch_to(set_b).load(n).store(dl).goto_(join_b);
            mb.switch_to(join_b).load(sl).load(dl).putfield(def);
            // Array kernel every 8th iteration.
            let arrblock = mb.new_block();
            let cont = mb.new_block();
            mb.load(i)
                .iconst(7)
                .and()
                .if_zero(CmpOp::Eq, arrblock, cont);
            mb.switch_to(arrblock);
            // Fresh children array: one eliminated store.
            mb.iconst(4).new_ref_array(node).store(arr);
            mb.load(arr).iconst(0).load(n).aastore();
            // Two appends.
            for _ in 0..2 {
                mb.getstatic(kidlog).getstatic(kidx).load(n).aastore();
                mb.getstatic(kidx).iconst(1).add().putstatic(kidx);
            }
            // Two ring overwrites.
            mb.getstatic(pool)
                .load(i)
                .iconst(127)
                .and()
                .load(n)
                .aastore();
            mb.getstatic(pool)
                .load(i)
                .iconst(19)
                .add()
                .iconst(127)
                .and()
                .load(n)
                .aastore();
            mb.goto_(cont);
            mb.switch_to(cont);
            // prev = n;
            mb.load(n).store(prev);
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: "javac",
        program,
        entry: main,
        default_iters: 3_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_and_is_field_dominated() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(256)], w.fuel_for(256))
            .expect("javac runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        // 6 field stores per iter (+1 from the root ctor in setup);
        // 5 array stores per 8 iters (+64 symtab fills in setup).
        assert_eq!(s.field_total, 6 * 256 + 1);
        assert_eq!(s.array_total, 64 + 5 * 32);
        assert!(s.pct_field() > 85.0, "{}", s.pct_field());
    }
}
