//! Server workload family: session store + request handlers.
//!
//! ROADMAP item 4 asks for a multi-tenant request workload; this is its
//! single-machine IR form (the multi-connection scheduled form lives in
//! `wbe_heap::overload`). Each iteration simulates one request against
//! a session-store server:
//!
//! * **session puts** — a per-request allocation burst head-inserted
//!   into a tenant's session chain: the `new.next = old_head` store is
//!   the paper's elidable initializing store, while the chain-head slot
//!   overwrite is never pre-null once warm;
//! * **cache publishes** — shared-LRU slot overwrites whose evicted
//!   entries become garbage;
//! * **connection churn** — connection-table entries replaced and
//!   cross-linked to their predecessors.
//!
//! The family is parameterized by [`ServerParams`] — tenants,
//! connections, and request mix — so the same program shape sweeps from
//! laptop scale upward; table sizes are rounded to powers of two so
//! tenant/slot selection stays a mask. Two members are registered with
//! the suite tooling: `server` (session-heavy) and `server-churn`
//! (turnover-heavy). Neither joins [`crate::standard_suite`] — the six
//! Table 1 mimics and their elision-rate baseline stay untouched.

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::Ty;

use crate::helpers::{counted_loop, emit_library, lcg_step, Bound};
use crate::Workload;

/// Request-mix shape: ops per simulated request, `[session_puts,
/// cache_publishes, conn_churns]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServerMix {
    /// Session-store dominated (allocation bursts into tenant chains).
    #[default]
    Session,
    /// Shared-LRU dominated.
    Cache,
    /// Connection-turnover dominated.
    Churn,
}

impl ServerMix {
    fn ops(self) -> [usize; 3] {
        match self {
            ServerMix::Session => [2, 1, 1],
            ServerMix::Cache => [1, 3, 1],
            ServerMix::Churn => [1, 1, 3],
        }
    }
}

/// Parameters of one family member.
#[derive(Clone, Copy, Debug)]
pub struct ServerParams {
    /// Tenant count (session-chain slots; rounded up to a power of
    /// two, minimum 2).
    pub tenants: i64,
    /// Connection-table size (rounded up likewise).
    pub connections: i64,
    /// Shared-LRU cache slots (rounded up likewise).
    pub lru_slots: i64,
    /// Request mix.
    pub mix: ServerMix,
}

impl Default for ServerParams {
    fn default() -> Self {
        ServerParams {
            tenants: 16,
            connections: 8,
            lru_slots: 16,
            mix: ServerMix::Session,
        }
    }
}

fn pow2(n: i64) -> i64 {
    (n.max(2) as u64).next_power_of_two() as i64
}

/// Builds a family member from explicit parameters.
pub fn build_with(params: ServerParams) -> Workload {
    let tenants = pow2(params.tenants);
    let connections = pow2(params.connections);
    let lru = pow2(params.lru_slots);
    let [n_put, n_pub, n_churn] = params.mix.ops();

    let mut pb = ProgramBuilder::new();
    let session = pb.class("Session");
    let s_next = pb.field(session, "next", Ty::Ref(session));
    let s_pads: Vec<_> = (0..4)
        .map(|k| pb.field(session, format!("pad{k}"), Ty::Int))
        .collect();
    let payload = pb.class("Payload");
    let p_link = pb.field(payload, "link", Ty::Ref(payload));
    let _p_data = pb.field(payload, "data", Ty::Int);
    let conn = pb.class("Conn");
    let c_peer = pb.field(conn, "peer", Ty::Ref(conn));

    let sessions = pb.static_field("sessions", Ty::RefArray(session));
    let cache = pb.static_field("cache", Ty::RefArray(payload));
    let conns = pb.static_field("conns", Ty::RefArray(conn));

    // Session::<init>(this, prev): the head-insert link plus padding —
    // all initializing stores; the ref store is the paper's elidable
    // pre-null case.
    let s_ctor = pb.declare_constructor(session, vec![Ty::Ref(session)]);
    pb.define_method(s_ctor, 0, |mb| {
        let this = mb.local(0);
        let prev = mb.local(1);
        mb.load(this).load(prev).putfield(s_next);
        for (k, &pf) in s_pads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });
    // Payload::<init>(this, evicted): keeps a back-link to the entry it
    // replaces (initializing ref store).
    let p_ctor = pb.declare_constructor(payload, vec![Ty::Ref(payload)]);
    pb.define_method(p_ctor, 0, |mb| {
        let this = mb.local(0);
        let old = mb.local(1);
        mb.load(this).load(old).putfield(p_link);
        mb.return_();
    });
    // Conn::<init>(this, peer): cross-link to the replaced entry.
    let c_ctor = pb.declare_constructor(conn, vec![Ty::Ref(conn)]);
    pb.define_method(c_ctor, 0, |mb| {
        let this = mb.local(0);
        let peer = mb.local(1);
        mb.load(this).load(peer).putfield(c_peer);
        mb.return_();
    });

    let library = emit_library(&mut pb, "server", 2);

    // setup(iters): size the tables; pre-fill the connection table so
    // churn always overwrites live (never-pre-null) slots.
    let setup = pb.method("server_setup", vec![Ty::Int], None, 1, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        mb.load(iters).invoke(library).pop();
        mb.iconst(tenants)
            .new_ref_array(session)
            .putstatic(sessions);
        mb.iconst(lru).new_ref_array(payload).putstatic(cache);
        mb.iconst(connections).new_ref_array(conn).putstatic(conns);
        counted_loop(mb, i, Bound::Const(connections), |mb| {
            mb.getstatic(conns).load(i);
            mb.new_object(conn).dup().const_null().invoke(c_ctor);
            mb.aastore();
        });
        mb.return_();
    });

    let main = pb.method("server_main", vec![Ty::Int], None, 3, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let seed = mb.local(2);
        let slot = mb.local(3);
        mb.load(iters).invoke(setup);
        mb.iconst(0x5e12).store(seed);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            lcg_step(mb, seed);
            // Session puts: head-insert an allocation burst into the
            // tenant chain picked by the request.
            for put in 0..n_put {
                mb.load(seed)
                    .iconst(3 + 2 * put as i64)
                    .shr()
                    .iconst(tenants - 1)
                    .and()
                    .store(slot);
                mb.getstatic(sessions).load(slot);
                mb.new_object(session)
                    .dup()
                    .getstatic(sessions)
                    .load(slot)
                    .aaload()
                    .invoke(s_ctor);
                mb.aastore();
            }
            // Cache publishes: overwrite an LRU slot, keeping a link to
            // the evicted entry.
            for publish in 0..n_pub {
                mb.load(seed)
                    .iconst(5 + 2 * publish as i64)
                    .shr()
                    .iconst(lru - 1)
                    .and()
                    .store(slot);
                mb.getstatic(cache).load(slot);
                mb.new_object(payload)
                    .dup()
                    .getstatic(cache)
                    .load(slot)
                    .aaload()
                    .invoke(p_ctor);
                mb.aastore();
            }
            // Connection churn: replace a table entry, cross-linked to
            // its predecessor.
            for churn in 0..n_churn {
                mb.load(seed)
                    .iconst(7 + 2 * churn as i64)
                    .shr()
                    .iconst(connections - 1)
                    .and()
                    .store(slot);
                mb.getstatic(conns).load(slot);
                mb.new_object(conn)
                    .dup()
                    .getstatic(conns)
                    .load(slot)
                    .aaload()
                    .invoke(c_ctor);
                mb.aastore();
            }
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: match params.mix {
            ServerMix::Session => "server",
            ServerMix::Cache => "server-cache",
            ServerMix::Churn => "server-churn",
        },
        program,
        entry: main,
        default_iters: 2_400,
    }
}

/// The default family member: session-heavy mix.
pub fn build() -> Workload {
    build_with(ServerParams::default())
}

/// The turnover-heavy family member.
pub fn build_churn() -> Workload {
    build_with(ServerParams {
        mix: ServerMix::Churn,
        ..ServerParams::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_and_matches_store_census() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(200)], w.fuel_for(200))
            .expect("server runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        // Setup: 8 conn ctor ref stores + 8 table fills. Per iteration
        // (mix [2,1,1]): 4 ctor ref stores, 4 slot aastores.
        assert_eq!(s.field_total, 8 + 200 * 4);
        assert_eq!(s.array_total, 8 + 200 * 4);
        // Every ctor store is an initializing first write.
        assert_eq!(s.field_potential_pre_null, s.field_total);
    }

    #[test]
    fn family_members_differ_by_mix() {
        let heavy = build_churn();
        let mut interp = Interp::new(&heavy.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(heavy.entry, &[Value::Int(100)], heavy.fuel_for(100))
            .expect("server-churn runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        // Churn mix [1,1,3]: 5 ref field stores + 5 aastores per iter.
        assert_eq!(s.field_total, 8 + 100 * 5);
        assert_eq!(s.array_total, 8 + 100 * 5);
    }

    #[test]
    fn params_round_to_powers_of_two() {
        let w = build_with(ServerParams {
            tenants: 5,
            connections: 3,
            lru_slots: 9,
            mix: ServerMix::Cache,
        });
        w.program.validate().expect("rounded params validate");
        assert_eq!(w.name, "server-cache");
    }
}
