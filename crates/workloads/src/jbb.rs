//! `jbb`-like workload: warehouse transactions (SPECjbb2000).
//!
//! The largest benchmark by far: order objects are created and
//! initialized, district/warehouse records are rewired, and order
//! arrays are compacted by shift-down deletion loops (§4.3's
//! "move all higher elements down by one index" idiom). Table 1
//! profile: ~69/31 field/array split, 37% field elimination, no array
//! elimination, 53.4% potentially pre-null.
//!
//! Per iteration: 3 initializing stores on a fresh `Order` (big
//! constructor — only inlined at limit 100), 3 overwriting stores on
//! escaped district/warehouse records, 2 pre-null stores on a freshly
//! published `OrderLine`, 3 shift-down `aastore`s, and 1 append.

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::Ty;

use crate::helpers::{counted_loop, emit_compute_kernel, emit_library, lcg_step, Bound};
use crate::Workload;

/// Builds the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let order = pb.class("Order");
    let oc = pb.field(order, "customer", Ty::Ref(order));
    let op = pb.field(order, "prev", Ty::Ref(order));
    let on = pb.field(order, "next", Ty::Ref(order));
    let opads: Vec<_> = (0..24)
        .map(|k| pb.field(order, format!("pad{k}"), Ty::Int))
        .collect();
    let oline = pb.class("OrderLine");
    let lo = pb.field(oline, "ord", Ty::Ref(order));
    let li = pb.field(oline, "item", Ty::Ref(order));
    let district = pb.class("District");
    let dlast = pb.field(district, "last_order", Ty::Ref(order));
    let dnext = pb.field(district, "next_order", Ty::Ref(order));
    let wrecent = pb.field(district, "recent", Ty::Ref(order));
    let district_s = pb.static_field("district", Ty::Ref(district));
    let tmp_line = pb.static_field("tmp_line", Ty::Ref(oline));
    let orders_s = pb.static_field("orders", Ty::RefArray(order));
    let olog = pb.static_field("order_log", Ty::RefArray(order));
    let oidx = pb.static_field("order_log_idx", Ty::Int);

    // Order::<init>(this, c) — big ctor (size ~80: only inlined at
    // limit 100+, which is why jbb's field elimination needs the
    // paper's headline inlining level).
    let octor = pb.declare_constructor(order, vec![Ty::Ref(order)]);
    pb.define_method(octor, 0, |mb| {
        let this = mb.local(0);
        let c = mb.local(1);
        mb.load(this).load(c).putfield(oc);
        for (k, &pf) in opads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });

    let library = emit_library(&mut pb, "jbb", 6);
    // Per-transaction "business logic": a large pure-integer kernel so
    // barriers are a realistic fraction of total work (Table 2).
    let mix = emit_compute_kernel(&mut pb, "jbb_mix", 104);

    // setup(iters): publish district, pre-fill the order table so the
    // shift-down stores never see null.
    let setup = pb.method("jbb_setup", vec![Ty::Int], None, 2, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let prev = mb.local(2);
        mb.load(iters).invoke(library).pop();
        mb.new_object(district).putstatic(district_s);
        mb.iconst(256).new_ref_array(order).putstatic(orders_s);
        mb.load(iters)
            .iconst(4)
            .add()
            .new_ref_array(order)
            .putstatic(olog);
        mb.iconst(0).putstatic(oidx);
        mb.const_null().store(prev);
        counted_loop(mb, i, Bound::Const(256), |mb| {
            mb.new_object(order)
                .dup()
                .load(prev)
                .invoke(octor)
                .store(prev);
            mb.getstatic(orders_s).load(i).load(prev).aastore();
        });
        mb.return_();
    });

    let main = pb.method("jbb_main", vec![Ty::Int], None, 6, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let prev = mb.local(2);
        let o = mb.local(3);
        let seed = mb.local(4);
        let j = mb.local(5);
        let r = mb.local(6);
        mb.load(iters).invoke(setup);
        mb.const_null().store(prev);
        mb.iconst(0x5EED).store(seed);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            // o = new Order(prev); o.prev = prev; o.next = prev;
            mb.new_object(order).dup().load(prev).invoke(octor).store(o);
            mb.load(o).load(prev).putfield(op);
            mb.load(o).load(prev).putfield(on);
            // district rewiring (escaped overwrites).
            mb.getstatic(district_s).load(o).putfield(dlast);
            mb.getstatic(district_s).load(o).putfield(dnext);
            // nl = new OrderLine; publish; nl.ord = o; nl.item = prev;
            mb.new_object(oline).putstatic(tmp_line);
            mb.getstatic(tmp_line).load(o).putfield(lo);
            mb.getstatic(tmp_line).load(prev).putfield(li);
            // Business logic between stores.
            mb.load(seed).invoke(mix).store(seed);
            // Shift-down deletion: orders[j..j+2] = orders[j+1..j+3].
            lcg_step(mb, seed);
            mb.load(seed).iconst(248).and().store(j); // j in 0,8,..,248: j+3 < 256
            for k in 0..3i64 {
                mb.getstatic(orders_s)
                    .load(j)
                    .iconst(k)
                    .add()
                    .getstatic(orders_s)
                    .load(j)
                    .iconst(k + 1)
                    .add()
                    .aaload()
                    .aastore();
            }
            // Append to the order log.
            mb.getstatic(olog).getstatic(oidx).load(o).aastore();
            mb.getstatic(oidx).iconst(1).add().putstatic(oidx);
            // Null-or-same recent-order refresh (§4.3):
            // r = district.recent; if (r == null) r = o; district.recent = r;
            mb.getstatic(district_s).getfield(wrecent).store(r);
            let set_b = mb.new_block();
            let join_b = mb.new_block();
            mb.load(r).if_null(set_b, join_b);
            mb.switch_to(set_b).load(o).store(r).goto_(join_b);
            mb.switch_to(join_b)
                .getstatic(district_s)
                .load(r)
                .putfield(wrecent);
            // prev = o;
            mb.load(o).store(prev);
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: "jbb",
        program,
        entry: main,
        default_iters: 24_800,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_with_expected_mix() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(128)], w.fuel_for(128))
            .expect("jbb runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        // setup: 256 ctor stores + 256 fills; main: 8 field + 4 array per iter.
        assert_eq!(s.field_total, 256 + 8 * 128);
        assert_eq!(s.array_total, 256 + 4 * 128);
        // Shift-down sites never see null (table pre-filled): of main's
        // array stores only the appends are potential.
        assert_eq!(s.array_potential_pre_null, 256 + 128);
    }

    #[test]
    fn shift_down_preserves_liveness() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(16)], w.fuel_for(16))
            .unwrap();
        // orders table still fully populated (shift-down copies within).
        let orders = interp.heap.static_roots();
        assert!(!orders.is_empty());
    }
}
