//! `jack`-like workload: a parser generator's token stream.
//!
//! Token objects are allocated and initialized at a high rate while a
//! shared parser state is rewired and token ring buffers are reused.
//! Table 1 profile: ~74/26 field/array split, 55.5% field elimination,
//! no array elimination, 54% potentially pre-null.
//!
//! Per iteration: 3 initializing stores on a fresh `Token`
//! (constructor + two post-constructor), 2 overwriting stores on the
//! escaped parser state, 1 pre-null store on a freshly published
//! scratch object, and 2 ring-buffer `aastore`s.

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::Ty;

use crate::helpers::{counted_loop, emit_library, Bound};
use crate::Workload;

/// Builds the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let tok = pb.class("Token");
    let ta = pb.field(tok, "text", Ty::Ref(tok));
    let tb = pb.field(tok, "follow", Ty::Ref(tok));
    let tc = pb.field(tok, "alt", Ty::Ref(tok));
    let tpads: Vec<_> = (0..7)
        .map(|k| pb.field(tok, format!("pad{k}"), Ty::Int))
        .collect();
    let state = pb.class("ParserState");
    let cur = pb.field(state, "cur", Ty::Ref(tok));
    let ahead = pb.field(state, "ahead", Ty::Ref(tok));
    let scratch = pb.class("Scratch");
    let sval = pb.field(scratch, "val", Ty::Ref(tok));
    let state_s = pb.static_field("parser_state", Ty::Ref(state));
    let tmp_s = pb.static_field("tmp_scratch", Ty::Ref(scratch));
    let ring = pb.static_field("token_ring", Ty::RefArray(tok));
    let ring2 = pb.static_field("lookahead_ring", Ty::RefArray(tok));

    // Token::<init>(this, t) — ctor size ~25 (inlined at limit 50+).
    let tctor = pb.declare_constructor(tok, vec![Ty::Ref(tok)]);
    pb.define_method(tctor, 0, |mb| {
        let this = mb.local(0);
        let t = mb.local(1);
        mb.load(this).load(t).putfield(ta);
        for (k, &pf) in tpads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });

    let library = emit_library(&mut pb, "jack", 4);

    let setup = pb.method("jack_setup", vec![], None, 0, |mb| {
        mb.iconst(7).invoke(library).pop();
        mb.new_object(state).putstatic(state_s);
        mb.iconst(64).new_ref_array(tok).putstatic(ring);
        mb.iconst(64).new_ref_array(tok).putstatic(ring2);
        mb.return_();
    });

    let main = pb.method("jack_main", vec![Ty::Int], None, 4, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let prev = mb.local(2);
        let t = mb.local(3);
        let a = mb.local(4);
        mb.invoke(setup);
        mb.const_null().store(prev);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            // t = new Token(prev); t.follow = prev; t.alt = prev;
            mb.new_object(tok).dup().load(prev).invoke(tctor).store(t);
            mb.load(t).load(prev).putfield(tb);
            mb.load(t).load(prev).putfield(tc);
            // parser_state.cur = t;                         (overwrite)
            mb.getstatic(state_s).load(t).putfield(cur);
            // Null-or-same lookahead refresh (§4.3's hashtable idiom):
            // a = state.ahead; if (a == null) a = t; state.ahead = a;
            mb.getstatic(state_s).getfield(ahead).store(a);
            let set_b = mb.new_block();
            let join_b = mb.new_block();
            mb.load(a).if_null(set_b, join_b);
            mb.switch_to(set_b).load(t).store(a).goto_(join_b);
            mb.switch_to(join_b)
                .getstatic(state_s)
                .load(a)
                .putfield(ahead);
            // s = new Scratch; publish; s.val = t;  (pre-null, escaped)
            mb.new_object(scratch).putstatic(tmp_s);
            mb.getstatic(tmp_s).load(t).putfield(sval);
            // Two ring overwrites.
            mb.getstatic(ring)
                .load(i)
                .iconst(63)
                .and()
                .load(t)
                .aastore();
            mb.getstatic(ring2)
                .load(i)
                .iconst(11)
                .add()
                .iconst(63)
                .and()
                .load(t)
                .aastore();
            // prev = t;
            mb.load(t).store(prev);
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: "jack",
        program,
        entry: main,
        default_iters: 1_340,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_with_expected_mix() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(200)], w.fuel_for(200))
            .expect("jack runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        assert_eq!(s.field_total, 6 * 200);
        assert_eq!(s.array_total, 2 * 200);
        // parser_state fields start null, so the overwrite sites see one
        // pre-null execution each: they are not "potentially pre-null".
        assert_eq!(s.field_potential_pre_null, 4 * 200);
    }
}
