//! `mtrt`-like workload: ray-tracer object and array churn.
//!
//! The ray tracer allocates rays, points, and small arrays at a huge
//! rate and initializes them immediately; §4.2 notes most of its
//! eliminated barriers are array stores. Table 1 profile: ~41/59
//! field/array split, 72% field / 54.7% array elimination, 91.6%
//! potentially pre-null (almost nothing overwrites).
//!
//! Per iteration: 3 initializing field stores on a fresh `Ray`
//! (constructor + two post-constructor), 1 pre-null-but-escaped store
//! on a freshly published `Isect`, 3 eliminated fills of a fresh
//! `Pt[3]` triangle, 2 append-only stores, 1 ring overwrite.

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::Ty;

use crate::helpers::{counted_loop, emit_library, Bound};
use crate::Workload;

/// Builds the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let pt = pb.class("Pt");
    let _px = pb.field(pt, "x", Ty::Int);
    let ray = pb.class("Ray");
    let orig = pb.field(ray, "orig", Ty::Ref(pt));
    let dir = pb.field(ray, "dir", Ty::Ref(pt));
    let med = pb.field(ray, "med", Ty::Ref(pt));
    let rpads: Vec<_> = (0..2)
        .map(|k| pb.field(ray, format!("pad{k}"), Ty::Int))
        .collect();
    let isect = pb.class("Isect");
    let ipt = pb.field(isect, "pt", Ty::Ref(pt));
    let cur_isect = pb.static_field("cur_isect", Ty::Ref(isect));
    let hitlog = pb.static_field("hit_log", Ty::RefArray(pt));
    let hidx = pb.static_field("hit_idx", Ty::Int);
    let scratch = pb.static_field("scratch", Ty::RefArray(pt));

    // Ray::<init>(this, o) — tiny ctor (size ~10: inlined at limit 25+).
    let rctor = pb.declare_constructor(ray, vec![Ty::Ref(pt)]);
    pb.define_method(rctor, 0, |mb| {
        let this = mb.local(0);
        let o = mb.local(1);
        mb.load(this).load(o).putfield(orig);
        for (k, &pf) in rpads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });

    let library = emit_library(&mut pb, "mtrt", 5);

    let setup = pb.method("mtrt_setup", vec![Ty::Int], None, 0, |mb| {
        let iters = mb.local(0);
        mb.load(iters).invoke(library).pop();
        mb.load(iters)
            .iconst(2)
            .mul()
            .iconst(4)
            .add()
            .new_ref_array(pt)
            .putstatic(hitlog);
        mb.iconst(0).putstatic(hidx);
        mb.iconst(32).new_ref_array(pt).putstatic(scratch);
        mb.return_();
    });

    let main = pb.method("mtrt_main", vec![Ty::Int], None, 4, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let p = mb.local(2);
        let r = mb.local(3);
        let tri = mb.local(4);
        mb.load(iters).invoke(setup);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            // p = new Pt();
            mb.new_object(pt).store(p);
            // r = new Ray(p); r.dir = p; r.med = p;  (3 initializing)
            mb.new_object(ray).dup().load(p).invoke(rctor).store(r);
            mb.load(r).load(p).putfield(dir);
            mb.load(r).load(p).putfield(med);
            // is = new Isect; publish; is.pt = p;  (pre-null, escaped)
            mb.new_object(isect).putstatic(cur_isect);
            mb.getstatic(cur_isect).load(p).putfield(ipt);
            // tri = new Pt[3]; tri[0..2] = p;      (3 eliminated fills)
            mb.iconst(3).new_ref_array(pt).store(tri);
            for k in 0..3 {
                mb.load(tri).iconst(k).load(p).aastore();
            }
            // Two appends + one ring overwrite.
            for _ in 0..2 {
                mb.getstatic(hitlog).getstatic(hidx).load(p).aastore();
                mb.getstatic(hidx).iconst(1).add().putstatic(hidx);
            }
            mb.getstatic(scratch)
                .load(i)
                .iconst(31)
                .and()
                .load(p)
                .aastore();
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: "mtrt",
        program,
        entry: main,
        default_iters: 300,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_and_is_mostly_pre_null() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(200)], w.fuel_for(200))
            .expect("mtrt runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        assert_eq!(s.field_total, 4 * 200);
        assert_eq!(s.array_total, 6 * 200);
        // Everything but the scratch ring (after its first lap) is
        // dynamically pre-null.
        assert!(
            s.pct_potential_pre_null() > 85.0,
            "{}",
            s.pct_potential_pre_null()
        );
    }
}
