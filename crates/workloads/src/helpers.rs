//! Shared IR-building helpers for the synthetic workloads.

use wbe_ir::builder::{MethodBuilder, ProgramBuilder};
use wbe_ir::{CmpOp, LocalId, MethodId, Ty};

/// Loop bound for [`counted_loop`].
#[derive(Clone, Copy, Debug)]
pub enum Bound {
    /// Literal constant bound.
    Const(i64),
    /// Bound read from a local.
    Local(LocalId),
}

/// Emits `for (i = 0; i < bound; i++) { body }` into the current block.
/// `body` must leave its block unterminated (the helper appends the
/// back edge). On return the builder sits in the loop's exit block.
pub fn counted_loop(
    mb: &mut MethodBuilder<'_>,
    i: LocalId,
    bound: Bound,
    body: impl FnOnce(&mut MethodBuilder<'_>),
) {
    let head = mb.new_block();
    let body_b = mb.new_block();
    let exit = mb.new_block();
    mb.iconst(0).store(i).goto_(head);
    mb.switch_to(head).load(i);
    match bound {
        Bound::Const(n) => mb.iconst(n),
        Bound::Local(l) => mb.load(l),
    };
    mb.if_icmp(CmpOp::Lt, body_b, exit);
    mb.switch_to(body_b);
    body(mb);
    mb.iinc(i, 1).goto_(head);
    mb.switch_to(exit);
}

/// Emits a linear-congruential step on an integer local:
/// `x = (x * 1103515245 + 12345) & 0x7fffffff`. Used for deterministic
/// pseudo-random workload data computed inside the IR itself.
pub fn lcg_step(mb: &mut MethodBuilder<'_>, x: LocalId) {
    mb.load(x)
        .iconst(1103515245)
        .mul()
        .iconst(12345)
        .add()
        .iconst(0x7fff_ffff)
        .and()
        .store(x);
}

/// Emits an integer-compute kernel `name(x: int) -> int` of roughly
/// `4 * rounds` instructions (mixing, shifting, masking). Kernels with
/// `rounds >= 52` exceed every swept inline limit (size > 200), so they
/// model "library" code: real static footprint, no inlining, no
/// reference stores.
pub fn emit_compute_kernel(
    pb: &mut ProgramBuilder,
    name: impl Into<String>,
    rounds: usize,
) -> MethodId {
    pb.method(name, vec![Ty::Int], Some(Ty::Int), 0, |mb| {
        let x = mb.local(0);
        for k in 0..rounds {
            match k % 4 {
                0 => mb.load(x).iconst(0x9E37_79B9).mul().store(x),
                1 => mb.load(x).iconst(13).shr().load(x).xor().store(x),
                2 => mb
                    .load(x)
                    .iconst((k as i64).wrapping_mul(0x85EB_CA6B))
                    .add()
                    .store(x),
                _ => mb.load(x).iconst(0x7fff_ffff).and().store(x),
            };
        }
        mb.load(x).return_value();
    })
}

/// Emits `count` never-inlined compute kernels plus a driver that calls
/// each once, returning the driver. Workload setups invoke the driver a
/// single time: the kernels contribute realistic *static* code size
/// (Figure 3 measures bytes compiled, and most compiled code in real
/// benchmarks is not hot store loops) at negligible dynamic cost.
pub fn emit_library(pb: &mut ProgramBuilder, prefix: &str, count: usize) -> MethodId {
    let kernels: Vec<MethodId> = (0..count)
        .map(|k| emit_compute_kernel(pb, format!("{prefix}_lib{k}"), 52))
        .collect();
    pb.method(
        format!("{prefix}_lib_driver"),
        vec![Ty::Int],
        Some(Ty::Int),
        0,
        |mb| {
            let x = mb.local(0);
            for &k in &kernels {
                mb.load(x).invoke(k).store(x);
            }
            mb.load(x).return_value();
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_ir::builder::ProgramBuilder;
    use wbe_ir::Ty;

    #[test]
    fn counted_loop_runs_expected_iterations() {
        let mut pb = ProgramBuilder::new();
        let m = pb.method("sum", vec![Ty::Int], Some(Ty::Int), 2, |mb| {
            let n = mb.local(0);
            let i = mb.local(1);
            let acc = mb.local(2);
            mb.iconst(0).store(acc);
            counted_loop(mb, i, Bound::Local(n), |mb| {
                mb.load(acc).load(i).add().store(acc);
            });
            mb.load(acc).return_value();
        });
        let p = pb.finish();
        p.validate().unwrap();
        // quick interpretation through wbe-interp is exercised in the
        // workload tests; here just validate the structure.
        assert_eq!(p.method(m).blocks.len(), 4);
    }

    #[test]
    fn lcg_step_is_well_formed() {
        let mut pb = ProgramBuilder::new();
        pb.method("rng", vec![Ty::Int], Some(Ty::Int), 0, |mb| {
            let x = mb.local(0);
            lcg_step(mb, x);
            mb.load(x).return_value();
        });
        let p = pb.finish();
        p.validate().unwrap();
    }

    #[test]
    fn compute_kernel_is_big_and_pure() {
        let mut pb = ProgramBuilder::new();
        let k = emit_compute_kernel(&mut pb, "mix", 52);
        let lib = emit_library(&mut pb, "t", 3);
        let p = pb.finish();
        p.validate().unwrap();
        assert!(p.method(k).size > 200, "{}", p.method(k).size);
        assert_eq!(p.method(lib).sig.params.len(), 1);
        // No reference stores anywhere in the library.
        for (_, m) in p.iter_methods() {
            for (_, _, i) in m.iter_insns() {
                assert!(!i.is_potential_barrier_site());
            }
        }
    }

    #[test]
    fn nested_counted_loops() {
        let mut pb = ProgramBuilder::new();
        pb.method("nest", vec![Ty::Int], None, 2, |mb| {
            let n = mb.local(0);
            let i = mb.local(1);
            let j = mb.local(2);
            counted_loop(mb, i, Bound::Local(n), |mb| {
                counted_loop(mb, j, Bound::Const(3), |_mb| {});
            });
            mb.return_();
        });
        let p = pb.finish();
        p.validate().unwrap();
    }
}
