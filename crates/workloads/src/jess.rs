//! `jess`-like workload: an expert-system shell's fact churn.
//!
//! SPECjvm98 `jess` allocates many small fact objects, links them, and
//! stores them into its working memory. Table 1 profile: ~51/49
//! field/array split, nearly all field stores initializing (99.7%
//! eliminated), no array stores eliminated, 75% of all stores
//! potentially pre-null.
//!
//! Per iteration this program executes:
//! * 1 constructor field store (`Fact.lhs`) — initializing,
//! * 1 post-constructor field store (`Fact.rhs`) — initializing once
//!   the constructor is inlined,
//! * 1 ring-buffer `aastore` into escaped working memory — overwrites,
//! * 1 append-only `aastore` into an escaped log — dynamically pre-null
//!   but unprovable (the array escaped).

use wbe_ir::builder::ProgramBuilder;
use wbe_ir::Ty;

use crate::helpers::{counted_loop, emit_library, Bound};
use crate::Workload;

/// Builds the workload.
pub fn build() -> Workload {
    let mut pb = ProgramBuilder::new();
    let fact = pb.class("Fact");
    let lhs = pb.field(fact, "lhs", Ty::Ref(fact));
    let rhs = pb.field(fact, "rhs", Ty::Ref(fact));
    let score = pb.field(fact, "score", Ty::Int);
    let pads: Vec<_> = (0..5)
        .map(|k| pb.field(fact, format!("pad{k}"), Ty::Int))
        .collect();
    let wm = pb.static_field("working_memory", Ty::RefArray(fact));
    let log = pb.static_field("fact_log", Ty::RefArray(fact));
    let log_idx = pb.static_field("fact_log_idx", Ty::Int);

    // Fact::<init>(this, l) — one initializing reference store plus
    // integer padding (ctor size ~20: inlined at limit 25+).
    let ctor = pb.declare_constructor(fact, vec![Ty::Ref(fact)]);
    pb.define_method(ctor, 0, |mb| {
        let this = mb.local(0);
        let l = mb.local(1);
        mb.load(this).load(l).putfield(lhs);
        for (k, &pf) in pads.iter().enumerate() {
            mb.load(this).iconst(k as i64).putfield(pf);
        }
        mb.return_();
    });

    let library = emit_library(&mut pb, "jess", 3);

    let setup = pb.method("setup", vec![Ty::Int], None, 0, |mb| {
        let iters = mb.local(0);
        mb.load(iters).invoke(library).pop();
        mb.iconst(64).new_ref_array(fact).putstatic(wm);
        mb.load(iters)
            .iconst(2)
            .add()
            .new_ref_array(fact)
            .putstatic(log);
        mb.iconst(0).putstatic(log_idx);
        mb.return_();
    });

    let main = pb.method("jess_main", vec![Ty::Int], None, 3, |mb| {
        let iters = mb.local(0);
        let i = mb.local(1);
        let p1 = mb.local(2);
        let f = mb.local(3);
        mb.load(iters).invoke(setup);
        mb.const_null().store(p1);
        counted_loop(mb, i, Bound::Local(iters), |mb| {
            // f = new Fact(p1);
            mb.new_object(fact).dup().load(p1).invoke(ctor).store(f);
            // f.rhs = p1; f.score = i;
            mb.load(f).load(p1).putfield(rhs);
            mb.load(f).load(i).putfield(score);
            // working_memory[i & 63] = f;     (ring overwrite)
            mb.getstatic(wm).load(i).iconst(63).and().load(f).aastore();
            // fact_log[fact_log_idx++] = f;   (append-only)
            mb.getstatic(log).getstatic(log_idx).load(f).aastore();
            mb.getstatic(log_idx).iconst(1).add().putstatic(log_idx);
            // p1 = f;
            mb.load(f).store(p1);
        });
        mb.return_();
    });

    let program = pb.finish();
    debug_assert!(program.validate().is_ok());
    Workload {
        name: "jess",
        program,
        entry: main,
        default_iters: 2_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wbe_interp::{BarrierConfig, BarrierMode, ElidedBarriers, Interp, Value};

    #[test]
    fn runs_and_matches_store_profile() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(256)], w.fuel_for(256))
            .expect("jess runs clean");
        let s = interp.stats.barrier.summarize(&ElidedBarriers::new());
        // 2 field + 2 array stores per iteration.
        assert_eq!(s.field_total, 512);
        assert_eq!(s.array_total, 512);
        // Field stores are all dynamically pre-null; the ring buffer is
        // only pre-null during its first lap, so it is not potential.
        assert_eq!(s.field_potential_pre_null, 512);
        assert_eq!(s.array_potential_pre_null, 256, "append log only");
    }

    #[test]
    fn working_memory_suvives_in_heap() {
        let w = build();
        let mut interp = Interp::new(&w.program, BarrierConfig::new(BarrierMode::Checked));
        interp
            .run(w.entry, &[Value::Int(64)], w.fuel_for(64))
            .unwrap();
        // Statics hold the two arrays.
        assert_eq!(interp.heap.static_roots().len(), 2);
    }
}
