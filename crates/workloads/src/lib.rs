#![warn(missing_docs)]

//! Synthetic workloads mimicking the paper's benchmark suite.
//!
//! The paper evaluates on SPECjvm98 (**jess**, **db**, **javac**,
//! **mtrt**, **jack**) and SPECjbb2000 (**jbb**). Those suites are
//! proprietary and run on a JVM; per the reproduction's substitution
//! rule we instead provide six programs *written in the `wbe-ir`
//! bytecode* whose reference-store populations reproduce each
//! benchmark's Table 1 profile:
//!
//! * the **field/array split** of barrier executions,
//! * the fraction of **initializing** stores (provable pre-null:
//!   constructor stores, post-constructor initialization, fresh-array
//!   fill loops),
//! * the fraction of **potentially pre-null but unprovable** stores
//!   (first writes to already-escaped objects/arrays), and
//! * the **never-pre-null** stores (ring-buffer overwrites, the `db`
//!   sort-swap idiom, the `jbb` shift-down deletion loops of §4.3).
//!
//! Store mixes are built from a small set of kernels; elision rates are
//! *not* hard-coded anywhere — they emerge from running the actual
//! analyses on this code, which is the point of the reproduction.
//!
//! Each workload's constructors carry benchmark-specific amounts of
//! integer-field padding so the Figure 2 inline-limit sweep is
//! meaningful: small ctors inline at low limits, `jbb`'s big ones only
//! at 100+.

pub mod db;
pub mod helpers;
pub mod jack;
pub mod javac;
pub mod jbb;
pub mod jess;
pub mod mtrt;
pub mod server;

use wbe_ir::{MethodId, Program};

/// A runnable workload: a program, its entry method (taking one int
/// `iters` argument), and default scaling.
#[derive(Debug)]
pub struct Workload {
    /// Benchmark name (matches the paper's Table 1 rows).
    pub name: &'static str,
    /// The program (pre-inlining; feed it to `wbe_opt::compile`).
    pub program: Program,
    /// Entry method; call with `[Value::Int(iters)]`.
    pub entry: MethodId,
    /// Default iteration count, chosen so the six workloads' total
    /// barrier executions keep the paper's relative magnitudes
    /// (Table 1's "Total x10^6" column, scaled down x1000).
    pub default_iters: i64,
}

impl Workload {
    /// A generous fuel budget for running `iters` iterations.
    pub fn fuel_for(&self, iters: i64) -> u64 {
        (iters as u64) * 4_000 + 1_000_000
    }
}

/// The six workloads in the paper's Table 1 order.
pub fn standard_suite() -> Vec<Workload> {
    vec![
        jess::build(),
        db::build(),
        javac::build(),
        mtrt::build(),
        jack::build(),
        jbb::build(),
    ]
}

/// Looks up one workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    match name {
        "jess" => Some(jess::build()),
        "db" => Some(db::build()),
        "javac" => Some(javac::build()),
        "mtrt" => Some(mtrt::build()),
        "jack" => Some(jack::build()),
        "jbb" => Some(jbb::build()),
        // The server family (not part of the six-workload paper suite).
        "server" => Some(server::build()),
        "server-churn" => Some(server::build_churn()),
        _ => None,
    }
}

/// The server workload family members measured alongside (but not part
/// of) the standard suite.
pub fn server_family() -> Vec<Workload> {
    vec![server::build(), server::build_churn()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_and_validates() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 6);
        for w in &suite {
            w.program
                .validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", w.name));
            assert!(w.default_iters > 0);
        }
    }

    #[test]
    fn names_round_trip() {
        for name in ["jess", "db", "javac", "mtrt", "jack", "jbb"] {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        for name in ["server", "server-churn"] {
            assert_eq!(by_name(name).unwrap().name, name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn default_iters_keep_relative_magnitudes() {
        let suite = standard_suite();
        let iters: std::collections::HashMap<_, _> =
            suite.iter().map(|w| (w.name, w.default_iters)).collect();
        // jbb dominates; mtrt is the smallest — as in Table 1.
        assert!(iters["jbb"] > 5 * iters["db"]);
        assert!(iters["mtrt"] < iters["jess"]);
    }
}
