//! The compiled direct-threaded execution engine.
//!
//! [`CompiledEngine`] executes the flat superinstruction code produced
//! by [`crate::translate`] over the same heap, GC driving, recovery,
//! and statistics substrate as the classic [`Interp`] — it *contains*
//! an `Interp` and reuses its slow paths (allocation recovery, barrier
//! panic mode, emergency pauses), so the two engines are observably
//! identical: same traps, same `BarrierStats`, same GC cycle and pause
//! schedule, same world digests. What changes is the per-instruction
//! work: one flat `Vec` index per op, pre-resolved offsets, and fused
//! store+barrier superinstructions instead of per-execution
//! configuration dispatch.
//!
//! **Frame-state localization**: the dispatch loop keeps the active
//! frame's program counter, operand stack, and locals in loop locals
//! (the vectors are `mem::swap`ped out of the `Frame`), so the hot path
//! never re-borrows the frame vector per instruction. The state is
//! swapped back in (`stash`) before every operation that can scan
//! frames for GC roots — allocation (recovery retries and the post-
//! allocation trigger), the deterministic GC poll, and the recovery
//! slow paths of the fused stores — and on calls/returns, preserving
//! the exact root sets and safepoint frame contents of the classic
//! engine.
//!
//! **Hot-loop telemetry discipline**: the dispatch loop below performs
//! no telemetry-registry calls at all — counters accumulate in plain
//! fields and flat per-site arrays, and the single `metrics_enabled()`
//! check lives in `publish_metrics` at run boundaries (the hoisted
//! "enabled" check). With telemetry disabled, a run leaves the registry
//! completely untouched; `tests/` pins that.
//!
//! **Safepoint/GC equivalence**: the loop counts `stats.insns` and
//! polls the deterministic GC policy at exactly the classic engine's
//! points (after every op, with the same `insns % step_interval`
//! schedule, plus the post-allocation trigger), so policy-driven
//! marking, pauses, and digests are bit-identical across engines.
//!
//! **Revocation generations**: elided fast paths are compiled against
//! revocation generation 0. `wbe_heap::recover` bumps its generation
//! counter on panic entry and on every per-site revocation; the fused
//! elided op checks the counter and, once it moves, permanently routes
//! through the classic guarded dispatch (`Interp::apply_barrier`),
//! which consults the controller per site. PR 7's self-healing
//! semantics therefore survive compilation unchanged.

use std::rc::Rc;

use wbe_heap::gc::MarkStyle;
use wbe_heap::{
    FaultPlan, GcRef, Heap, HeapError, ObjKind, PressureConfig, PressureController,
    RecoveryController, RecoveryPolicy, Value,
};
use wbe_ir::{Cond, InsnAddr, MethodId, Program};

use crate::barrier::{BarrierConfig, ElisionKind, StoreKind};
use crate::cost;
use crate::machine::{site_key, GcPolicy, Interp, RunStats, Trap};
use crate::translate::{translate, Cell, CompiledMethod, Fuse, Op};

/// Pop two ints, apply `f`, push the result — expanded in place so each
/// arithmetic opcode is a single dispatch-table jump.
macro_rules! binop {
    ($counts:expr, $cost:literal, $stack:expr, $mid:expr, $at:expr, $f:expr) => {{
        $counts.cycles += $cost;
        let at = $at;
        let b = pop_int($stack, $mid, at)?;
        let a = pop_int($stack, $mid, at)?;
        $stack.push(Value::Int($f(a, b)));
    }};
}

/// The active frame's execution state, held in loop locals. The `Frame`
/// at the top of `Interp::frames` holds placeholder vectors while this
/// is live; [`stash`] swaps the real state back before any slow path
/// that scans frames.
struct ActiveFrame {
    stack: Vec<Value>,
    locals: Vec<Value>,
}

/// The instruction and cycle counters, held in loop locals (registers)
/// instead of `RunStats` fields. [`flush_counts`] publishes them before
/// any slow path that reads or charges the shared counters (the GC-step
/// schedule consults `stats.insns`; pauses and pressure stalls add to
/// `stats.cycles`); [`reload_counts`] re-syncs after.
struct Counts {
    insns: u64,
    cycles: u64,
}

/// Publishes the localized counters into `RunStats`.
#[inline(always)]
fn flush_counts(interp: &mut Interp, c: &Counts) {
    interp.stats.insns = c.insns;
    interp.stats.cycles = c.cycles;
}

/// Re-reads the shared counters after a slow path may have charged
/// cycles (pauses, pressure stalls, recovery barriers).
#[inline(always)]
fn reload_counts(interp: &Interp, c: &mut Counts) {
    c.insns = interp.stats.insns;
    c.cycles = interp.stats.cycles;
}

/// Writes the active frame state back into the top `Frame` (stack,
/// locals, and the advanced instruction pointer), so root scans and
/// safepoint pauses see exactly what the classic engine would.
#[inline(always)]
fn stash(interp: &mut Interp, af: &mut ActiveFrame, pc: usize) {
    let top = interp.frames.last_mut().expect("frame stack non-empty");
    std::mem::swap(&mut top.stack, &mut af.stack);
    std::mem::swap(&mut top.locals, &mut af.locals);
    top.ip = pc;
}

/// Takes the top `Frame`'s state into the loop locals, returning its
/// instruction pointer. Inverse of [`stash`].
#[inline(always)]
fn unstash(interp: &mut Interp, af: &mut ActiveFrame) -> usize {
    let top = interp.frames.last_mut().expect("frame stack non-empty");
    std::mem::swap(&mut top.stack, &mut af.stack);
    std::mem::swap(&mut top.locals, &mut af.locals);
    top.ip
}

/// Flat per-site counters, reconciled into the shared
/// [`crate::BarrierStats`] map at run boundaries. Indexed by the `site`
/// slot baked into fused store ops — a `Vec` index in the hot loop
/// where the classic engine pays a `HashMap` probe per store.
#[derive(Clone, Copy, Debug, Default)]
struct SiteAcc {
    executions: u64,
    pre_null: u64,
    cycles: u64,
}

/// The closure-compiled / direct-threaded engine. Construct with
/// [`CompiledEngine::new`]/[`CompiledEngine::with_style`] (same
/// signatures as [`Interp`]), configure identically, then [`run`].
///
/// Methods are translated lazily, once each, on first activation;
/// configuration setters that change translation-relevant state (the
/// stack-allocation site set) drop the code cache.
///
/// [`run`]: CompiledEngine::run
pub struct CompiledEngine<'p> {
    interp: Interp<'p>,
    code: Vec<Option<Rc<CompiledMethod>>>,
    site_acc: Vec<Vec<SiteAcc>>,
}

impl<'p> CompiledEngine<'p> {
    /// Creates a compiled engine with an SATB-style heap.
    pub fn new(program: &'p Program, config: BarrierConfig) -> Self {
        Self::with_style(program, config, MarkStyle::Satb)
    }

    /// Creates a compiled engine with the given marker style.
    pub fn with_style(program: &'p Program, config: BarrierConfig, style: MarkStyle) -> Self {
        let n = program.methods.len();
        CompiledEngine {
            interp: Interp::with_style(program, config, style),
            code: vec![None; n],
            site_acc: vec![Vec::new(); n],
        }
    }

    /// The underlying interpreter state (heap, stats, controllers).
    pub fn interp(&self) -> &Interp<'p> {
        &self.interp
    }

    /// Mutable access to the underlying interpreter state.
    pub fn interp_mut(&mut self) -> &mut Interp<'p> {
        &mut self.interp
    }

    /// The managed heap.
    pub fn heap(&self) -> &Heap {
        &self.interp.heap
    }

    /// Mutable access to the managed heap.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.interp.heap
    }

    /// Accumulated statistics (site counters are reconciled at the end
    /// of every [`run`](CompiledEngine::run), so between runs this is
    /// exactly what the classic engine would report).
    pub fn stats(&self) -> &RunStats {
        &self.interp.stats
    }

    /// Enables policy-driven concurrent marking during execution.
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.interp.set_gc_policy(policy);
    }

    /// Installs a deterministic fault schedule (see [`wbe_heap::fault`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.interp.set_fault_plan(plan);
    }

    /// Enables heap-invariant verification at GC cycle boundaries.
    pub fn set_verify_invariants(&mut self, on: bool) {
        self.interp.set_verify_invariants(on);
    }

    /// Installs the self-healing recovery layer.
    pub fn set_recovery(&mut self, policy: RecoveryPolicy) {
        self.interp.set_recovery(policy);
    }

    /// The recovery controller, if installed.
    pub fn recovery(&self) -> Option<&RecoveryController> {
        self.interp.recovery()
    }

    /// Installs the heap-pressure controller.
    pub fn set_pressure(&mut self, cfg: PressureConfig) {
        self.interp.set_pressure(cfg);
    }

    /// The pressure controller, if installed.
    pub fn pressure(&self) -> Option<&PressureController> {
        self.interp.pressure()
    }

    /// Enables (or disables) the barrier-necessity oracle.
    pub fn set_oracle(&mut self, on: bool) {
        self.interp.set_oracle(on);
    }

    /// The oracle state, if enabled. No accumulator flush is needed:
    /// oracle verdicts are recorded directly on the shared interpreter
    /// at every hook, never batched like the site cycle counters.
    pub fn oracle(&self) -> Option<&crate::oracle::OracleState> {
        self.interp.oracle()
    }

    /// Declares frame-arena allocation sites. Invalidates any already-
    /// translated code: the verdict is baked into `New` ops.
    pub fn set_stack_sites(&mut self, sites: impl IntoIterator<Item = wbe_ir::SiteId>) {
        self.interp.set_stack_sites(sites);
        for slot in &mut self.code {
            *slot = None;
        }
        for acc in &mut self.site_acc {
            acc.clear();
        }
    }

    /// The barrier configuration in force.
    pub fn config(&self) -> &BarrierConfig {
        self.interp.config()
    }

    /// Publishes statistics deltas to the telemetry registry (the only
    /// place the engine consults `metrics_enabled()`).
    pub fn publish_metrics(&mut self) {
        self.interp.publish_metrics();
    }

    fn ensure_translated(&mut self, mid: MethodId) {
        let i = mid.index();
        if self.code[i].is_none() {
            let cm = translate(
                self.interp.program,
                mid,
                &self.interp.config,
                self.interp.heap.gc.style(),
                &self.interp.stack_sites,
            );
            self.site_acc[i] = vec![SiteAcc::default(); cm.sites.len()];
            self.code[i] = Some(Rc::new(cm));
        }
    }

    /// Reconciles the flat per-site accumulators into the shared
    /// `BarrierStats` map so totals, Table 1 summaries, and ledger
    /// joins see exactly what the classic engine would have recorded.
    fn flush_site_stats(&mut self) {
        for (i, accs) in self.site_acc.iter_mut().enumerate() {
            let Some(cm) = &self.code[i] else { continue };
            let mid = MethodId(i as u32);
            for (s, acc) in accs.iter_mut().enumerate() {
                if acc.executions == 0 && acc.cycles == 0 {
                    continue;
                }
                let info = cm.sites[s];
                self.interp.stats.barrier.add_site(
                    mid,
                    info.addr,
                    info.kind,
                    acc.executions,
                    acc.pre_null,
                    acc.cycles,
                );
                *acc = SiteAcc::default();
            }
        }
    }

    #[inline(always)]
    fn bump_site(&mut self, mid: MethodId, site: u32, pre_null: bool, cycles: u64) {
        let a = &mut self.site_acc[mid.index()][site as usize];
        a.executions += 1;
        if pre_null {
            a.pre_null += 1;
        }
        a.cycles += cycles;
    }

    /// The fused store+barrier tail: every reference store funnels here
    /// with its translation-time [`Fuse`] verdict. Mirrors the classic
    /// `apply_barrier`/rearrange dispatch outcome for outcome. The
    /// recovery slow paths (stale-generation rerouting, unsound-elision
    /// healing) can reach a full pause, so they [`stash`] the active
    /// frame state first.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn exec_ref_store(
        &mut self,
        mid: MethodId,
        at: InsnAddr,
        kind: StoreKind,
        receiver: GcRef,
        old: Option<GcRef>,
        new: Option<GcRef>,
        site: u32,
        fuse: Fuse,
        af: &mut ActiveFrame,
        pc: usize,
        counts: &mut Counts,
    ) -> Result<(), Trap> {
        let pre_null = old.is_none();
        match fuse {
            Fuse::Elided(ekind) => {
                // Revocation-generation guard: generation 0 means no
                // panic entry and no per-site revocation has ever
                // happened, so the baked fast path is still valid. Once
                // the counter moves, route through the classic guarded
                // dispatch, which consults the controller per site and
                // lazily records revocations — and can pause for a
                // heal, so the frame state and counters go back first.
                let stale = self
                    .interp
                    .recovery
                    .as_ref()
                    .is_some_and(|rc| rc.generation() != 0);
                if stale {
                    stash(&mut self.interp, af, pc);
                    flush_counts(&mut self.interp, counts);
                    let r = self.interp.apply_barrier(mid, at, kind, receiver, old, new);
                    reload_counts(&self.interp, counts);
                    r?;
                    unstash(&mut self.interp, af);
                    return Ok(());
                }
                self.bump_site(mid, site, pre_null, 0);
                // Soundness oracle, baked per proof kind — the one
                // dynamic check the fast path keeps.
                let ok = match ekind {
                    ElisionKind::PreNull => pre_null,
                    ElisionKind::NullOrSame => pre_null || old == new,
                };
                if !ok {
                    stash(&mut self.interp, af, pc);
                    flush_counts(&mut self.interp, counts);
                    let r = self
                        .interp
                        .unsound_elision(mid, at, kind, site_key(mid, at), old);
                    reload_counts(&self.interp, counts);
                    r?;
                    unstash(&mut self.interp, af);
                    return Ok(());
                }
                self.interp.stats.elided_executions += 1;
                Ok(())
            }
            Fuse::KeptChecked => {
                let marking = self.interp.heap.gc.is_marking();
                let c = cost::checked_barrier_cost(marking, pre_null);
                self.interp.stats.barrier_cycles += c;
                counts.cycles += c;
                self.bump_site(mid, site, pre_null, c);
                self.interp
                    .oracle_note_kept(mid, at, kind, Some(receiver), old);
                if marking {
                    if let Some(o) = old {
                        self.interp.heap.gc.satb_log(o);
                    }
                }
                Ok(())
            }
            Fuse::KeptAlways => {
                let c = cost::always_log_barrier_cost(pre_null);
                self.interp.stats.barrier_cycles += c;
                counts.cycles += c;
                self.bump_site(mid, site, pre_null, c);
                self.interp
                    .oracle_note_kept(mid, at, kind, Some(receiver), old);
                if let Some(o) = old {
                    self.interp.heap.gc.satb_log(o);
                }
                Ok(())
            }
            Fuse::KeptNone => {
                self.bump_site(mid, site, pre_null, 0);
                Ok(())
            }
            Fuse::IuDirty { mark } => {
                self.interp.stats.barrier_cycles += 2;
                counts.cycles += 2;
                self.bump_site(mid, site, pre_null, 2);
                if mark {
                    self.interp.heap.gc.dirty(receiver);
                }
                Ok(())
            }
            Fuse::RearrangeMember => {
                self.bump_site(mid, site, pre_null, 2);
                self.interp.stats.rearrange_skipped += 1;
                self.interp.stats.barrier_cycles += 2;
                counts.cycles += 2;
                if self.interp.heap.gc.is_marking()
                    && self
                        .interp
                        .heap
                        .gc
                        .trace_state(&self.interp.heap.store, receiver)
                        != wbe_heap::TraceState::Untraced
                {
                    self.interp.heap.gc.push_retrace(receiver);
                    self.interp.stats.retraces_scheduled += 1;
                }
                Ok(())
            }
        }
    }

    /// Runs `method` with `args`, bounded by `fuel` instructions —
    /// the compiled counterpart of [`Interp::run`], with identical
    /// trap, fuel, statistics, and GC-driving semantics.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on runtime failure, exactly as the classic
    /// engine would for the same program and configuration.
    pub fn run(
        &mut self,
        method: MethodId,
        args: &[Value],
        fuel: u64,
    ) -> Result<Option<Value>, Trap> {
        let m = self.interp.program.method(method);
        if args.len() != m.sig.params.len() {
            return Err(Trap::BadArgCount {
                method,
                expected: m.sig.params.len(),
                got: args.len(),
            });
        }
        let span = wbe_telemetry::span!("interp.run", "{}", m.name);
        let result = self.run_inner(method, args, fuel);
        if result.is_err() {
            self.interp.frames.clear();
        }
        drop(span);
        self.flush_site_stats();
        self.interp.publish_metrics();
        result
    }

    fn run_inner(
        &mut self,
        method: MethodId,
        args: &[Value],
        fuel: u64,
    ) -> Result<Option<Value>, Trap> {
        let base_depth = self.interp.frames.len();
        self.ensure_translated(method);
        self.interp.push_frame(method, args);
        // The instruction/cycle counters live in registers for the
        // duration of the dispatch loop; every exit path (including
        // traps) funnels through this writeback, and the loop flushes
        // them before any slow path that consults the shared fields.
        let mut counts = Counts {
            insns: self.interp.stats.insns,
            cycles: self.interp.stats.cycles,
        };
        let result = self.dispatch(method, base_depth, fuel, &mut counts);
        flush_counts(&mut self.interp, &counts);
        result
    }

    fn dispatch(
        &mut self,
        method: MethodId,
        base_depth: usize,
        mut fuel: u64,
        counts: &mut Counts,
    ) -> Result<Option<Value>, Trap> {
        let mut mid = method;
        let mut code: Rc<CompiledMethod> = self.code[method.index()].clone().expect("translated");
        // Take the entry frame's state into loop locals; the hot path
        // below never touches `frames` again except at calls, returns,
        // and stash points.
        let mut af = ActiveFrame {
            stack: Vec::new(),
            locals: Vec::new(),
        };
        let mut pc = unstash(&mut self.interp, &mut af);
        // Call-argument staging buffer, reused across every `Invoke`.
        let mut argbuf: Vec<Value> = Vec::new();
        // GC polling by countdown instead of a per-instruction policy
        // load + modulo: `until_poll` reaches 0 exactly at instruction
        // counts that are multiples of `step_interval` (the classic
        // engine's schedule). With no policy the counter just never
        // reaches 0 in any feasible run.
        let interval = self.interp.gc_policy.map_or(0, |p| p.step_interval);
        let mut until_poll: u64 = if interval == 0 {
            u64::MAX
        } else {
            interval - (counts.insns % interval)
        };
        loop {
            if fuel == 0 {
                return Err(Trap::OutOfFuel);
            }
            // Batch: the number of instructions executable before the
            // next fuel trap or GC-poll boundary. Both budgets are
            // consumed up front and the instruction counter doubles as
            // the batch countdown, so the inner loop pays one counter
            // bump per instruction instead of a fuel check plus a poll
            // check. Early returns (traps, base-depth returns) simply
            // abandon the unused budget, which is unobservable. Slow
            // paths never advance `stats.insns`, so the reloaded
            // counter stays on course for `target`.
            let batch = fuel.min(until_poll);
            fuel -= batch;
            until_poll -= batch;
            let target = counts.insns + batch;
            while counts.insns < target {
                counts.insns += 1;

                let cur = pc;
                // SAFETY: every pc is in bounds by construction.
                // Translation emits one cell per instruction plus one
                // terminator per block; `Goto`/`If` targets are block
                // starts; fall-through (`cur + 1`) from a non-terminator
                // stays inside its block because every block ends with a
                // terminator (which never falls through); frame `ip`s
                // are stashed return addresses of `Invoke` cells (also
                // non-terminators) or 0, and retranslation after
                // `set_stack_sites` preserves code length.
                let Cell { op, addr: at } = unsafe { *code.cells.get_unchecked(cur) };
                pc = cur + 1;

                // Each arm charges its cycle cost as an immediate
                // constant — the same per-variant value
                // `cost::insn_cost`/`term_cost` would produce (the
                // differential-equivalence suite pins `cycles` equality
                // against the classic engine).
                match op {
                    Op::Const(v) => {
                        counts.cycles += 1;
                        af.stack.push(Value::Int(v));
                    }
                    Op::ConstNull => {
                        counts.cycles += 1;
                        af.stack.push(Value::NULL);
                    }
                    Op::Load(l) => {
                        counts.cycles += 1;
                        let v = af.locals[l as usize];
                        af.stack.push(v);
                    }
                    Op::StoreLocal(l) => {
                        counts.cycles += 1;
                        let v = pop_any(&mut af.stack, mid, at)?;
                        af.locals[l as usize] = v;
                    }
                    Op::IInc(l, d) => {
                        counts.cycles += 1;
                        match &mut af.locals[l as usize] {
                            Value::Int(i) => *i = i.wrapping_add(d),
                            Value::Ref(_) => {
                                return Err(Trap::TypeMismatch {
                                    method: mid,
                                    at,
                                    expected: "int local",
                                })
                            }
                        }
                    }
                    Op::Dup => {
                        counts.cycles += 1;
                        let v = *af.stack.last().ok_or(Trap::TypeMismatch {
                            method: mid,
                            at,
                            expected: "non-empty stack",
                        })?;
                        af.stack.push(v);
                    }
                    Op::DupX1 => {
                        counts.cycles += 1;
                        let b = pop_any(&mut af.stack, mid, at)?;
                        let a = pop_any(&mut af.stack, mid, at)?;
                        af.stack.push(b);
                        af.stack.push(a);
                        af.stack.push(b);
                    }
                    Op::Discard => {
                        counts.cycles += 1;
                        pop_any(&mut af.stack, mid, at)?;
                    }
                    Op::Swap => {
                        counts.cycles += 1;
                        let b = pop_any(&mut af.stack, mid, at)?;
                        let a = pop_any(&mut af.stack, mid, at)?;
                        af.stack.push(b);
                        af.stack.push(a);
                    }
                    // Binary integer ops get one arm each so dispatch stays
                    // a single jump (no secondary match on the opcode).
                    Op::Add => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a
                        .wrapping_add(b)),
                    Op::Sub => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a
                        .wrapping_sub(b)),
                    Op::Mul => binop!(counts, 3, &mut af.stack, mid, at, |a: i64, b: i64| a
                        .wrapping_mul(b)),
                    Op::And => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a & b),
                    Op::Or => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a | b),
                    Op::Xor => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a ^ b),
                    Op::Shl => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a
                        .wrapping_shl(b as u32 & 63)),
                    Op::Shr => binop!(counts, 1, &mut af.stack, mid, at, |a: i64, b: i64| a
                        .wrapping_shr(b as u32 & 63)),
                    Op::Div => {
                        counts.cycles += 10;
                        let b = pop_int(&mut af.stack, mid, at)?;
                        let a = pop_int(&mut af.stack, mid, at)?;
                        if b == 0 {
                            return Err(Trap::DivisionByZero { method: mid, at });
                        }
                        af.stack.push(Value::Int(a.wrapping_div(b)));
                    }
                    Op::Rem => {
                        counts.cycles += 10;
                        let b = pop_int(&mut af.stack, mid, at)?;
                        let a = pop_int(&mut af.stack, mid, at)?;
                        if b == 0 {
                            return Err(Trap::DivisionByZero { method: mid, at });
                        }
                        af.stack.push(Value::Int(a.wrapping_rem(b)));
                    }
                    Op::Neg => {
                        counts.cycles += 1;
                        let a = pop_int(&mut af.stack, mid, at)?;
                        af.stack.push(Value::Int(a.wrapping_neg()));
                    }
                    Op::GetField { tag, off } => {
                        counts.cycles += 2;
                        let obj = pop_nonnull(&mut af.stack, mid, at)?;
                        // Single store lookup: the tag guard and the
                        // field read share the same object borrow (trap
                        // order matches the two-lookup classic path).
                        let o = self.interp.heap.store.get(obj)?;
                        if o.class_tag != tag {
                            return Err(Trap::TypeMismatch {
                                method: mid,
                                at,
                                expected: "receiver of the field's declaring class",
                            });
                        }
                        let v = match &o.kind {
                            ObjKind::Object(fields) => fields.get(off as usize).copied().ok_or(
                                HeapError::FieldOutOfRange {
                                    obj,
                                    offset: off as usize,
                                },
                            )?,
                            _ => return Err(HeapError::WrongKind(obj).into()),
                        };
                        af.stack.push(v);
                    }
                    Op::PutFieldInt { tag, off } => {
                        counts.cycles += 2;
                        let val = pop_any(&mut af.stack, mid, at)?;
                        let obj = pop_nonnull(&mut af.stack, mid, at)?;
                        let o = self.interp.heap.store.get_mut(obj)?;
                        if o.class_tag != tag {
                            return Err(Trap::TypeMismatch {
                                method: mid,
                                at,
                                expected: "receiver of the field's declaring class",
                            });
                        }
                        let Value::Int(_) = val else {
                            return Err(Trap::TypeMismatch {
                                method: mid,
                                at,
                                expected: "int value for int field",
                            });
                        };
                        match &mut o.kind {
                            ObjKind::Object(fields) => {
                                let slot = fields.get_mut(off as usize).ok_or(
                                    HeapError::FieldOutOfRange {
                                        obj,
                                        offset: off as usize,
                                    },
                                )?;
                                *slot = val;
                            }
                            _ => return Err(HeapError::WrongKind(obj).into()),
                        }
                    }
                    Op::PutFieldRef {
                        tag,
                        off,
                        site,
                        fuse,
                    } => {
                        counts.cycles += 2;
                        let val = pop_any(&mut af.stack, mid, at)?;
                        let obj = pop_nonnull(&mut af.stack, mid, at)?;
                        // Tag guard and pre-value read share one lookup;
                        // the post-barrier write stays a checked
                        // `set_field` because the barrier slow paths can
                        // pause (and in principle sweep), exactly like
                        // the classic engine's ordering.
                        let o = self.interp.heap.store.get(obj)?;
                        if o.class_tag != tag {
                            return Err(Trap::TypeMismatch {
                                method: mid,
                                at,
                                expected: "receiver of the field's declaring class",
                            });
                        }
                        let Value::Ref(new) = val else {
                            return Err(Trap::TypeMismatch {
                                method: mid,
                                at,
                                expected: "reference value for reference field",
                            });
                        };
                        let old = match &o.kind {
                            ObjKind::Object(fields) => match fields
                                .get(off as usize)
                                .copied()
                                .ok_or(HeapError::FieldOutOfRange {
                                    obj,
                                    offset: off as usize,
                                })? {
                                Value::Ref(r) => r,
                                Value::Int(_) => None,
                            },
                            _ => return Err(HeapError::WrongKind(obj).into()),
                        };
                        self.exec_ref_store(
                            mid,
                            at,
                            StoreKind::Field,
                            obj,
                            old,
                            new,
                            site,
                            fuse,
                            &mut af,
                            pc,
                            counts,
                        )?;
                        self.interp.heap.set_field(obj, off as usize, val)?;
                    }
                    Op::GetStatic(s) => {
                        counts.cycles += 2;
                        let v = self.interp.heap.get_static(s as usize)?;
                        af.stack.push(v);
                    }
                    Op::PutStaticInt(s) => {
                        counts.cycles += 2;
                        let val = pop_any(&mut af.stack, mid, at)?;
                        self.interp.heap.set_static(s as usize, val)?;
                    }
                    Op::PutStaticRef(s) => {
                        counts.cycles += 2;
                        let val = pop_any(&mut af.stack, mid, at)?;
                        // Inline SATB enqueue of the overwritten static;
                        // never an elision candidate (see the classic
                        // engine's PutStatic note).
                        if let Ok(Value::Ref(Some(old))) = self.interp.heap.get_static(s as usize) {
                            if self.interp.heap.gc.is_marking() {
                                self.interp.heap.gc.satb_log(old);
                            }
                        }
                        self.interp.heap.set_static(s as usize, val)?;
                    }
                    Op::AaLoad => {
                        counts.cycles += 3;
                        let idx = pop_int(&mut af.stack, mid, at)?;
                        let arr = pop_nonnull(&mut af.stack, mid, at)?;
                        let v = self.interp.heap.get_elem(arr, idx)?;
                        af.stack.push(Value::Ref(v));
                    }
                    Op::AaStore { site, fuse } => {
                        counts.cycles += 3;
                        let val = pop_ref(&mut af.stack, mid, at)?;
                        let idx = pop_int(&mut af.stack, mid, at)?;
                        let arr = pop_nonnull(&mut af.stack, mid, at)?;
                        // Bounds check before the barrier, like the classic
                        // engine (a trapping store logs nothing).
                        let old = self.interp.heap.get_elem(arr, idx)?;
                        self.exec_ref_store(
                            mid,
                            at,
                            StoreKind::Array,
                            arr,
                            old,
                            val,
                            site,
                            fuse,
                            &mut af,
                            pc,
                            counts,
                        )?;
                        self.interp.heap.set_elem(arr, idx, val)?;
                    }
                    Op::IaLoad => {
                        counts.cycles += 3;
                        let idx = pop_int(&mut af.stack, mid, at)?;
                        let arr = pop_nonnull(&mut af.stack, mid, at)?;
                        let v = self.interp.heap.get_int_elem(arr, idx)?;
                        af.stack.push(Value::Int(v));
                    }
                    Op::IaStore => {
                        counts.cycles += 3;
                        let val = pop_int(&mut af.stack, mid, at)?;
                        let idx = pop_int(&mut af.stack, mid, at)?;
                        let arr = pop_nonnull(&mut af.stack, mid, at)?;
                        self.interp.heap.set_int_elem(arr, idx, val)?;
                    }
                    Op::ArrayLength => {
                        counts.cycles += 1;
                        let arr = pop_nonnull(&mut af.stack, mid, at)?;
                        let len = self.interp.heap.array_len(arr)?;
                        af.stack.push(Value::Int(len));
                    }
                    Op::New { class, arena } => {
                        counts.cycles += 12;
                        let shapes = self.interp.class_shapes[class.index()].clone();
                        // Allocation can pause (recovery retries, the post-
                        // allocation trigger): run it against the synced
                        // frame and counters so the pause sees the classic
                        // root set and schedule, and push the new object
                        // before driving GC so it is a root for any marking
                        // that starts.
                        stash(&mut self.interp, &mut af, pc);
                        flush_counts(&mut self.interp, counts);
                        let r = self
                            .interp
                            .alloc_with_recovery(mid, at, |h| h.alloc_object(class.0, &shapes));
                        reload_counts(&self.interp, counts);
                        let r = r?;
                        let top = self
                            .interp
                            .frames
                            .last_mut()
                            .expect("frame stack non-empty");
                        if arena {
                            top.owned.push(r);
                            self.interp.stats.stack_allocated += 1;
                        }
                        let top = self
                            .interp
                            .frames
                            .last_mut()
                            .expect("frame stack non-empty");
                        top.stack.push(Value::from(r));
                        let g = self.interp.drive_gc_after_alloc();
                        reload_counts(&self.interp, counts);
                        g?;
                        pc = unstash(&mut self.interp, &mut af);
                    }
                    Op::NewRefArray { class } => {
                        counts.cycles += 12;
                        let len = pop_int(&mut af.stack, mid, at)?;
                        stash(&mut self.interp, &mut af, pc);
                        flush_counts(&mut self.interp, counts);
                        let r = self
                            .interp
                            .alloc_with_recovery(mid, at, |h| h.alloc_ref_array(class.0, len));
                        reload_counts(&self.interp, counts);
                        let r = r?;
                        self.interp
                            .frames
                            .last_mut()
                            .expect("frame stack non-empty")
                            .stack
                            .push(Value::from(r));
                        let g = self.interp.drive_gc_after_alloc();
                        reload_counts(&self.interp, counts);
                        g?;
                        pc = unstash(&mut self.interp, &mut af);
                    }
                    Op::NewIntArray => {
                        counts.cycles += 12;
                        let len = pop_int(&mut af.stack, mid, at)?;
                        stash(&mut self.interp, &mut af, pc);
                        flush_counts(&mut self.interp, counts);
                        let r = self
                            .interp
                            .alloc_with_recovery(mid, at, |h| h.alloc_int_array(len));
                        reload_counts(&self.interp, counts);
                        let r = r?;
                        self.interp
                            .frames
                            .last_mut()
                            .expect("frame stack non-empty")
                            .stack
                            .push(Value::from(r));
                        let g = self.interp.drive_gc_after_alloc();
                        reload_counts(&self.interp, counts);
                        g?;
                        pc = unstash(&mut self.interp, &mut af);
                    }
                    Op::Invoke { callee, nparams } => {
                        counts.cycles += 5;
                        let n = nparams as usize;
                        if af.stack.len() < n {
                            return Err(Trap::TypeMismatch {
                                method: mid,
                                at,
                                expected: "enough stack operands for call",
                            });
                        }
                        // Arguments go through a buffer reused across
                        // calls (`split_off` would allocate per call);
                        // it must be copied out before `stash` swaps the
                        // caller's stack away.
                        argbuf.clear();
                        argbuf.extend_from_slice(&af.stack[af.stack.len() - n..]);
                        af.stack.truncate(af.stack.len() - n);
                        self.ensure_translated(callee);
                        // Save the caller (return address = advanced pc),
                        // then take the callee frame's state.
                        stash(&mut self.interp, &mut af, pc);
                        self.interp.push_frame(callee, &argbuf);
                        mid = callee;
                        code = self.code[callee.index()].clone().expect("translated");
                        pc = unstash(&mut self.interp, &mut af);
                    }
                    Op::Goto { target } => {
                        counts.cycles += 1;
                        pc = target as usize;
                    }
                    Op::If { cond, then_, else_ } => {
                        counts.cycles += 1;
                        let taken = match cond {
                            Cond::ICmp(cmp) => {
                                let b = pop_int(&mut af.stack, mid, at)?;
                                let a = pop_int(&mut af.stack, mid, at)?;
                                cmp.eval(a, b)
                            }
                            Cond::IZero(cmp) => {
                                let a = pop_int(&mut af.stack, mid, at)?;
                                cmp.eval(a, 0)
                            }
                            Cond::IsNull => pop_ref(&mut af.stack, mid, at)?.is_none(),
                            Cond::NonNull => pop_ref(&mut af.stack, mid, at)?.is_some(),
                            Cond::RefEq | Cond::RefNe => {
                                let b = pop_ref(&mut af.stack, mid, at)?;
                                let a = pop_ref(&mut af.stack, mid, at)?;
                                if matches!(cond, Cond::RefEq) {
                                    a == b
                                } else {
                                    a != b
                                }
                            }
                        };
                        pc = if taken {
                            then_ as usize
                        } else {
                            else_ as usize
                        };
                    }
                    Op::Return => {
                        counts.cycles += 1;
                        // The popped frame's real stack/locals live in `af`
                        // (the Frame holds placeholders); its arena is
                        // freed exactly as in the classic engine.
                        let frame = self.interp.frames.pop().expect("frame stack non-empty");
                        self.interp.free_frame_arena(frame);
                        if self.interp.frames.len() == base_depth {
                            return Ok(None);
                        }
                        pc = unstash(&mut self.interp, &mut af);
                        mid = self.interp.frames.last().expect("caller frame").method;
                        code = self.code[mid.index()].clone().expect("translated");
                    }
                    Op::ReturnValue => {
                        counts.cycles += 1;
                        let v = pop_any(&mut af.stack, mid, at)?;
                        let frame = self.interp.frames.pop().expect("frame stack non-empty");
                        self.interp.free_frame_arena(frame);
                        if self.interp.frames.len() == base_depth {
                            return Ok(Some(v));
                        }
                        pc = unstash(&mut self.interp, &mut af);
                        af.stack.push(v);
                        mid = self.interp.frames.last().expect("caller frame").method;
                        code = self.code[mid.index()].clone().expect("translated");
                    }
                }
            }

            // Deterministic GC poll, at exactly the classic engine's
            // cadence: the countdown fires exactly when `stats.insns`
            // is a multiple of the step interval.
            if until_poll == 0 {
                until_poll = if interval == 0 { u64::MAX } else { interval };
                if self.interp.heap.gc.is_marking() {
                    stash(&mut self.interp, &mut af, pc);
                    flush_counts(&mut self.interp, counts);
                    let g = self.interp.drive_gc_after_insn();
                    reload_counts(&self.interp, counts);
                    g?;
                    pc = unstash(&mut self.interp, &mut af);
                }
            }
        }
    }
}

impl std::fmt::Debug for CompiledEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledEngine")
            .field(
                "translated",
                &self.code.iter().filter(|c| c.is_some()).count(),
            )
            .field("stats.insns", &self.interp.stats.insns)
            .finish()
    }
}

#[inline(always)]
fn pop_any(stack: &mut Vec<Value>, mid: MethodId, at: InsnAddr) -> Result<Value, Trap> {
    stack.pop().ok_or(Trap::TypeMismatch {
        method: mid,
        at,
        expected: "non-empty stack",
    })
}

#[inline(always)]
fn pop_int(stack: &mut Vec<Value>, mid: MethodId, at: InsnAddr) -> Result<i64, Trap> {
    match pop_any(stack, mid, at)? {
        Value::Int(i) => Ok(i),
        Value::Ref(_) => Err(Trap::TypeMismatch {
            method: mid,
            at,
            expected: "int",
        }),
    }
}

#[inline(always)]
fn pop_ref(stack: &mut Vec<Value>, mid: MethodId, at: InsnAddr) -> Result<Option<GcRef>, Trap> {
    match pop_any(stack, mid, at)? {
        Value::Ref(r) => Ok(r),
        Value::Int(_) => Err(Trap::TypeMismatch {
            method: mid,
            at,
            expected: "reference",
        }),
    }
}

#[inline(always)]
fn pop_nonnull(stack: &mut Vec<Value>, mid: MethodId, at: InsnAddr) -> Result<GcRef, Trap> {
    pop_ref(stack, mid, at)?.ok_or(Trap::NullReceiver { method: mid, at })
}
