#![warn(missing_docs)]

//! Stack interpreter over [`wbe_ir`] programs and the [`wbe_heap`]
//! managed heap, with SATB write-barrier modes, per-site barrier
//! statistics, and a cycle cost model.
//!
//! This crate plays the role of the paper's instrumented HotSpot client
//! JIT runtime: it executes programs, applies (or elides) SATB barriers
//! on every reference store, counts per-site barrier executions and
//! dynamic pre-null-ness (Table 1's "% Potential pre-null" column), and
//! charges abstract cycles so barrier modes can be compared end-to-end
//! (Table 2).
//!
//! Two safety oracles run during interpretation:
//!
//! * every *elided* barrier site asserts that the overwritten value is
//!   null — a dynamic validation that the static elision was sound
//!   ([`Trap::UnsoundElision`] otherwise);
//! * the optional GC policy interleaves real SATB marking with
//!   execution, so sweeps after marked cycles double-check that no
//!   reachable object is lost.
//!
//! # Example
//!
//! ```
//! use wbe_ir::builder::ProgramBuilder;
//! use wbe_ir::Ty;
//! use wbe_interp::{BarrierConfig, BarrierMode, Interp, Value};
//!
//! let mut pb = ProgramBuilder::new();
//! let c = pb.class("Box");
//! let val = pb.field(c, "val", Ty::Int);
//! let m = pb.method("boxed", vec![Ty::Int], Some(Ty::Ref(c)), 0, |mb| {
//!     let x = mb.local(0);
//!     mb.new_object(c).dup().load(x).putfield(val).return_value();
//! });
//! let program = pb.finish();
//! let mut interp = Interp::new(&program, BarrierConfig::new(BarrierMode::Checked));
//! let r = interp.run(m, &[Value::Int(7)], 1_000)?.unwrap();
//! # let _ = r;
//! # Ok::<(), wbe_interp::Trap>(())
//! ```

pub mod barrier;
pub mod compiled;
pub mod cost;
pub mod engine;
pub mod machine;
pub mod oracle;
pub mod translate;

pub use barrier::{
    BarrierConfig, BarrierMode, BarrierStats, BarrierSummary, ElidedBarriers, ElisionKind,
    RearrangeRole, RearrangeSites, SiteStats, StoreKind,
};
pub use compiled::CompiledEngine;
pub use engine::{Engine, EngineKind};
pub use machine::{GcPolicy, Interp, RunStats, Trap, PAUSE_EMERGENCY};
pub use oracle::{NecessityVerdict, OracleState, SiteNecessity};
pub use translate::{translate, CompiledMethod, Fuse, Op};
pub use wbe_heap::Value;
