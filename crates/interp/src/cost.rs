//! Abstract cycle cost model.
//!
//! Table 2 and Figure 2 need only *relative* costs, so the model is a
//! small table of per-instruction cycle charges plus the SATB barrier
//! sequence costs the paper reports: "these steps require between 9 and
//! 12 RISC instructions for each barrier", decomposed here as a
//! marking-check, a pre-value read with null test, and an out-of-line
//! log call.

use wbe_ir::Insn;

/// Cycles for the inline "is marking in progress" check.
pub const BARRIER_CHECK_COST: u64 = 2;

/// Cycles to read the pre-value and test it against null.
pub const BARRIER_PRE_READ_COST: u64 = 3;

/// Cycles for the out-of-line call that appends the pre-value to the
/// thread-local SATB buffer.
pub const BARRIER_LOG_COST: u64 = 7;

/// Cycle cost of one instruction, excluding any barrier.
pub fn insn_cost(insn: &Insn) -> u64 {
    match insn {
        Insn::Const(_) | Insn::ConstNull | Insn::Load(_) | Insn::Store(_) => 1,
        Insn::IInc(..) => 1,
        Insn::Dup | Insn::DupX1 | Insn::Pop | Insn::Swap => 1,
        Insn::Add | Insn::Sub | Insn::And | Insn::Or | Insn::Xor | Insn::Shl | Insn::Shr => 1,
        Insn::Neg => 1,
        Insn::Mul => 3,
        Insn::Div | Insn::Rem => 10,
        Insn::GetField(_) | Insn::PutField(_) => 2,
        Insn::GetStatic(_) | Insn::PutStatic(_) => 2,
        Insn::AaLoad | Insn::IaLoad | Insn::AaStore | Insn::IaStore => 3,
        Insn::ArrayLength => 1,
        Insn::New { .. } => 12,
        Insn::NewRefArray { .. } | Insn::NewIntArray { .. } => 12,
        Insn::Invoke(_) => 5,
    }
}

/// Cycle cost of one terminator.
pub fn term_cost() -> u64 {
    1
}

/// Barrier cost charged for one executed store under the `Checked` mode.
pub fn checked_barrier_cost(marking: bool, pre_value_null: bool) -> u64 {
    if !marking {
        BARRIER_CHECK_COST
    } else if pre_value_null {
        BARRIER_CHECK_COST + BARRIER_PRE_READ_COST
    } else {
        BARRIER_CHECK_COST + BARRIER_PRE_READ_COST + BARRIER_LOG_COST
    }
}

/// Barrier cost charged for one executed store under the `AlwaysLog`
/// mode (no marking check).
pub fn always_log_barrier_cost(pre_value_null: bool) -> u64 {
    if pre_value_null {
        BARRIER_PRE_READ_COST
    } else {
        BARRIER_PRE_READ_COST + BARRIER_LOG_COST
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_barrier_matches_paper_range() {
        // The most expensive path should land in the paper's 9–12
        // "RISC instructions" band.
        let full = checked_barrier_cost(true, false);
        assert!((9..=12).contains(&full), "{full}");
    }

    #[test]
    fn idle_barrier_is_cheap() {
        assert_eq!(checked_barrier_cost(false, true), BARRIER_CHECK_COST);
        assert_eq!(checked_barrier_cost(false, false), BARRIER_CHECK_COST);
    }

    #[test]
    fn always_log_skips_the_check() {
        assert_eq!(
            always_log_barrier_cost(false) + BARRIER_CHECK_COST,
            checked_barrier_cost(true, false)
        );
        assert!(always_log_barrier_cost(true) < always_log_barrier_cost(false));
    }

    #[test]
    fn allocation_dominates_simple_ops() {
        use wbe_ir::{ClassId, SiteId};
        let alloc = insn_cost(&Insn::New {
            class: ClassId(0),
            site: SiteId(0),
        });
        assert!(alloc > insn_cost(&Insn::Add));
        assert!(insn_cost(&Insn::Div) > insn_cost(&Insn::Mul));
    }
}
